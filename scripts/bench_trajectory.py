#!/usr/bin/env python
"""Consolidate the repo-root ``BENCH_*.json`` artifacts into one markdown page.

CI (and local bench runs) leave headline numbers in ``BENCH_*.json`` files
at the repository root — one JSON object per file, keyed by experiment,
written by :func:`repro.bench.record_bench_fig1`.  This script folds every
such file into a single committed document, ``docs/perf_trajectory.md``,
so the performance trajectory of the engine is reviewable in diffs: when a
PR moves a headline number, the regenerated page shows the delta.

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py
    PYTHONPATH=src python scripts/bench_trajectory.py --root . --out docs/perf_trajectory.md

The output is deterministic for a given set of inputs (files and
experiment keys are sorted; no timestamps), so regenerating without a
bench change is a no-op diff.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Dict, List, Tuple

#: Payload keys rendered in their own leading columns (most-telling first).
HEADLINE_KEYS = ("claim", "overhead_pct", "tuples", "seed")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def load_bench_files(root: str) -> List[Tuple[str, Dict[str, Any]]]:
    """Return ``(basename, records)`` for every readable BENCH_*.json."""
    found = []
    for path in sorted(glob.glob(os.path.join(root, "BENCH_*.json"))):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)
            continue
        if isinstance(data, dict):
            found.append((os.path.basename(path), data))
    return found


def render_markdown(files: List[Tuple[str, Dict[str, Any]]]) -> str:
    lines = [
        "# Performance trajectory",
        "",
        "Headline benchmark numbers consolidated from the repo-root",
        "`BENCH_*.json` artifacts (written by `repro.bench.record_bench_fig1`,",
        "uploaded by CI).  Regenerate with:",
        "",
        "```sh",
        "PYTHONPATH=src python scripts/bench_trajectory.py",
        "```",
        "",
        "Numbers are machine-dependent; what matters in review is the",
        "*relative* movement of a metric within one regeneration, not",
        "absolute throughput across machines.",
        "",
    ]
    if not files:
        lines.append("_No `BENCH_*.json` artifacts found at the repo root._")
        lines.append("")
        return "\n".join(lines)

    for basename, records in files:
        lines.append(f"## {basename}")
        lines.append("")
        lines.append("| Experiment | Claim | Metrics | Seed |")
        lines.append("|---|---|---|---|")
        for key in sorted(records):
            payload = records[key]
            if not isinstance(payload, dict):
                lines.append(f"| {key} | — | {_fmt(payload)} | — |")
                continue
            claim = str(payload.get("claim", "—"))
            seed = _fmt(payload.get("seed", "—"))
            metrics = [
                f"{name}={_fmt(value)}"
                for name, value in sorted(payload.items())
                if name not in ("claim", "seed")
                and isinstance(value, (int, float))
            ]
            lines.append(
                f"| {key} | {claim} | {', '.join(metrics) or '—'} | {seed} |"
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument(
        "--root",
        default=default_root,
        help="directory scanned for BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(default_root, "docs", "perf_trajectory.md"),
        help="markdown file to write (default: docs/perf_trajectory.md)",
    )
    args = parser.parse_args(argv)

    files = load_bench_files(args.root)
    doc = render_markdown(files)
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as handle:
        handle.write(doc + "\n")
    total = sum(len(records) for _, records in files)
    print(f"wrote {args.out}: {len(files)} file(s), {total} experiment(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
