"""Serve a live DataCell's telemetry endpoint for smoke testing.

Starts a cell with system streams enabled, drives a small continuous
query so every surface has data, then serves HTTP until the hold time
expires (or forever with ``--hold 0``).  CI backgrounds this script and
curls ``/metrics`` and ``/dashboard`` against it; developers can point a
browser at it.

Usage::

    python scripts/http_smoke.py --port 8787 --hold 30
"""

import argparse
import sys
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 binds any free port")
    parser.add_argument("--hold", type=float, default=30.0,
                        help="seconds to keep serving (0 = forever)")
    args = parser.parse_args(argv)

    from repro.core.engine import DataCell
    from repro.obs.sysstreams import SystemStreamsConfig

    cell = DataCell(
        system_streams=SystemStreamsConfig(interval=0.25, retention=256)
    )
    cell.execute("create basket sensors (sensor int, temp double)")
    cell.submit_continuous(
        "select s.sensor, s.temp from "
        "[select * from sensors where sensors.temp > 30.0] as s",
        name="hot",
    )
    cell.add_alert(
        "backlog",
        "select b.basket, b.depth from "
        "[select * from sys.baskets where depth > 10000] as b",
    )
    server = cell.serve_http(host=args.host, port=args.port)
    print(f"serving {server.url}", flush=True)

    deadline = time.monotonic() + args.hold if args.hold else None
    sensor = 0
    try:
        while deadline is None or time.monotonic() < deadline:
            # keep the telemetry moving so the endpoints show live data
            sensor += 1
            cell.insert(
                "sensors", [(sensor, 20.0 + (sensor % 30))]
            )
            cell.run_until_quiescent()
            time.sleep(0.05)
    except KeyboardInterrupt:
        pass
    finally:
        cell.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
