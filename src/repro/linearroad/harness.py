"""Linear Road driver: wires the query network into a DataCell and runs it.

The harness demonstrates the architecture exactly as the paper sketches
it: position reports flow into **one shared basket** read by three
factories (the shared-baskets strategy), intermediate results flow through
auxiliary baskets, and emitters deliver notifications to collecting
clients.  Response time is measured as the wall-clock cost of bringing the
network to quiescence after each 30-second tick's batch of reports — the
benchmark's requirement is that notifications leave within 5 seconds of
the triggering report, so the per-tick drain time must stay under that
bound for the run to be *sustainable* at the given scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.clock import LogicalClock
from ..core.emitter import CollectingClient, Emitter
from ..core.engine import DataCell
from ..core.factory import ConsumeMode, Factory, InputBinding
from .generator import LinearRoadConfig, LinearRoadGenerator
from .model import (
    BALANCE_REQUEST_COLUMNS,
    BALANCE_RESPONSE_COLUMNS,
    POSITION_REPORT_COLUMNS,
    REPORT_INTERVAL,
    SEGMENT_STATS_COLUMNS,
    TOLL_NOTIFICATION_COLUMNS,
    ACCIDENT_ALERT_COLUMNS,
    PositionReport,
)
from .queries import (
    AccidentDetectionPlan,
    AccountBalancePlan,
    SegmentStatisticsPlan,
    TollNotificationPlan,
    TollState,
)
from .validator import LinearRoadReference, validate_outputs

__all__ = ["LinearRoadResult", "LinearRoadHarness"]


@dataclass
class LinearRoadResult:
    """Outcome of one Linear Road run."""

    scale: float
    reports: int
    tolls: List[Tuple[int, int, float, int]]
    alerts: List[Tuple[int, int, int, int]]
    balances: List[Tuple[int, int, int]]
    tick_latencies: List[float]  # wall seconds to drain each tick
    wall_time: float
    validation_problems: List[str] = field(default_factory=list)

    @property
    def max_response_time(self) -> float:
        return max(self.tick_latencies, default=0.0)

    @property
    def avg_response_time(self) -> float:
        if not self.tick_latencies:
            return 0.0
        return sum(self.tick_latencies) / len(self.tick_latencies)

    @property
    def throughput(self) -> float:
        """Position reports processed per wall second."""
        return self.reports / self.wall_time if self.wall_time else 0.0

    @property
    def meets_deadline(self) -> bool:
        """LR requirement: every notification within 5 (wall) seconds."""
        return self.max_response_time <= 5.0

    @property
    def valid(self) -> bool:
        return not self.validation_problems


class LinearRoadHarness:
    """Builds the network, replays traffic, validates the outputs."""

    def __init__(self, config: Optional[LinearRoadConfig] = None):
        self.config = config or LinearRoadConfig()
        self.clock = LogicalClock()
        self.cell = DataCell(clock=self.clock)
        self.toll_state = TollState()
        self._build_network()

    def _build_network(self) -> None:
        cell = self.cell
        self.positions = cell.create_basket(
            "lr_position", POSITION_REPORT_COLUMNS
        )
        self.stats_basket = cell.create_basket(
            "lr_stats", SEGMENT_STATS_COLUMNS
        )
        self.accidents_basket = cell.create_basket(
            "lr_accidents", AccidentDetectionPlan.COLUMNS
        )
        self.tolls_basket = cell.create_basket(
            "lr_tolls", TOLL_NOTIFICATION_COLUMNS
        )
        self.alerts_basket = cell.create_basket(
            "lr_alerts", ACCIDENT_ALERT_COLUMNS
        )
        self.balance_req = cell.create_basket(
            "lr_balance_req", BALANCE_REQUEST_COLUMNS
        )
        self.balance_out = cell.create_basket(
            "lr_balance_out", BALANCE_RESPONSE_COLUMNS
        )

        self.stats_plan = SegmentStatisticsPlan()
        self.accident_plan = AccidentDetectionPlan()
        self.toll_plan = TollNotificationPlan(self.toll_state)
        self.balance_plan = AccountBalancePlan(self.toll_state)

        scheduler = cell.scheduler
        scheduler.register(
            Factory(
                "lr_stats_f",
                self.stats_plan,
                [InputBinding(self.positions, ConsumeMode.SHARED)],
                [self.stats_basket],
                priority=3,
            )
        )
        scheduler.register(
            Factory(
                "lr_accidents_f",
                self.accident_plan,
                [InputBinding(self.positions, ConsumeMode.SHARED)],
                [self.accidents_basket],
                priority=2,
            )
        )
        scheduler.register(
            Factory(
                "lr_tolls_f",
                self.toll_plan,
                [
                    InputBinding(self.positions, ConsumeMode.SHARED),
                    InputBinding(
                        self.stats_basket, ConsumeMode.ALL, optional=True
                    ),
                    InputBinding(
                        self.accidents_basket, ConsumeMode.ALL, optional=True
                    ),
                ],
                [self.tolls_basket, self.alerts_basket],
                priority=1,
            )
        )
        scheduler.register(
            Factory(
                "lr_balance_f",
                self.balance_plan,
                [InputBinding(self.balance_req, ConsumeMode.ALL)],
                [self.balance_out],
                priority=0,
            )
        )
        self.toll_client = CollectingClient()
        self.alert_client = CollectingClient()
        self.balance_client = CollectingClient()
        for name, basket, client in (
            ("lr_toll_e", self.tolls_basket, self.toll_client),
            ("lr_alert_e", self.alerts_basket, self.alert_client),
            ("lr_balance_e", self.balance_out, self.balance_client),
        ):
            emitter = Emitter(name, basket)
            emitter.subscribe(client)
            scheduler.register(emitter)

    # ------------------------------------------------------------------
    def run(
        self,
        reports: Optional[Sequence[PositionReport]] = None,
        balance_requests: Optional[Sequence[Tuple[int, int, int]]] = None,
        ticks_per_batch: int = 1,
        validate: bool = True,
    ) -> LinearRoadResult:
        """Replay a report log through the network tick by tick."""
        generator = LinearRoadGenerator(self.config)
        if reports is None:
            reports = generator.generate()
        if balance_requests is None:
            balance_requests = generator.balance_requests(list(reports))
        by_tick: Dict[int, List[PositionReport]] = {}
        for report in reports:
            by_tick.setdefault(report.t // REPORT_INTERVAL, []).append(report)
        req_by_tick: Dict[int, List[Tuple[int, int, int]]] = {}
        for req in balance_requests:
            req_by_tick.setdefault(req[0] // REPORT_INTERVAL, []).append(req)

        latencies: List[float] = []
        started = time.perf_counter()
        ticks = sorted(set(by_tick) | set(req_by_tick))
        for i in range(0, len(ticks), max(1, ticks_per_batch)):
            batch_ticks = ticks[i : i + max(1, ticks_per_batch)]
            tick_started = time.perf_counter()
            for tick in batch_ticks:
                stamp = float(tick * REPORT_INTERVAL)
                if stamp > self.clock.now():
                    self.clock.set(stamp)
                rows = [r.as_row() for r in by_tick.get(tick, [])]
                if rows:
                    self.positions.insert_rows(rows, timestamp=stamp)
                reqs = req_by_tick.get(tick, [])
                if reqs:
                    self.balance_req.insert_rows(reqs, timestamp=stamp)
            self.cell.run_until_quiescent()
            latencies.append(time.perf_counter() - tick_started)
        wall = time.perf_counter() - started

        problems: List[str] = []
        if validate:
            reference = LinearRoadReference(list(reports)).compute()
            problems = validate_outputs(
                reference,
                self.toll_client.rows,
                self.alert_client.rows,
                self.balance_client.rows,
                reference.expected_balances(list(balance_requests)),
            )
        return LinearRoadResult(
            scale=self.config.scale,
            reports=len(list(reports)),
            tolls=list(self.toll_client.rows),
            alerts=list(self.alert_client.rows),
            balances=list(self.balance_client.rows),
            tick_latencies=latencies,
            wall_time=wall,
            validation_problems=problems,
        )
