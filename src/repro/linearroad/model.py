"""Linear Road data model (Arasu et al., VLDB 2004).

The benchmark simulates ``L`` expressways, each 100 miles long, divided
into 100 one-mile segments, with two directions of travel.  Cars emit a
*position report* every 30 seconds; the system must maintain per-segment
statistics, detect accidents, and issue toll notifications with bounded
response time.

This module defines the schemas, constants and plain-python event records
shared by the generator, the DataCell query network, and the validator.

Scope note (documented substitution, see DESIGN.md): we implement the
continuous-query heart of Linear Road — position reports, segment
statistics (LAV / vehicle counts), accident detection and toll
notification, plus type-2 account-balance requests.  The historical-data
queries that need a 10-week pre-generated history (daily expenditure,
travel-time estimation) are out of scope, as they exercise a warehouse,
not the stream engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..kernel.types import AtomType

__all__ = [
    "NUM_SEGMENTS",
    "LANES",
    "REPORT_INTERVAL",
    "STOPPED_REPORTS_FOR_ACCIDENT",
    "LAV_WINDOW_MINUTES",
    "TOLL_SPEED_THRESHOLD",
    "TOLL_VEHICLE_THRESHOLD",
    "ACCIDENT_UPSTREAM_SEGMENTS",
    "POSITION_REPORT_COLUMNS",
    "TOLL_NOTIFICATION_COLUMNS",
    "ACCIDENT_ALERT_COLUMNS",
    "SEGMENT_STATS_COLUMNS",
    "BALANCE_REQUEST_COLUMNS",
    "BALANCE_RESPONSE_COLUMNS",
    "PositionReport",
    "toll_formula",
]

NUM_SEGMENTS = 100  # one-mile segments per expressway
LANES = 5  # 0 = entry ramp, 1..3 = travel, 4 = exit ramp
REPORT_INTERVAL = 30  # seconds between a car's position reports
STOPPED_REPORTS_FOR_ACCIDENT = 4  # consecutive identical reports = stopped
LAV_WINDOW_MINUTES = 5  # latest-average-velocity window
TOLL_SPEED_THRESHOLD = 40.0  # mph; tolls apply below this LAV
TOLL_VEHICLE_THRESHOLD = 50  # cars in the segment needed for a toll
ACCIDENT_UPSTREAM_SEGMENTS = 5  # alert cars within 5 segments upstream

# Basket schemas -------------------------------------------------------
POSITION_REPORT_COLUMNS: List[Tuple[str, AtomType]] = [
    ("t", AtomType.INT),  # report time, seconds since run start
    ("vid", AtomType.INT),  # vehicle id
    ("speed", AtomType.INT),  # mph, 0..100
    ("xway", AtomType.INT),  # expressway id
    ("lane", AtomType.INT),
    ("dir", AtomType.INT),  # 0 = east, 1 = west
    ("seg", AtomType.INT),  # 0..99
    ("pos", AtomType.INT),  # feet from the western end
]

TOLL_NOTIFICATION_COLUMNS: List[Tuple[str, AtomType]] = [
    ("vid", AtomType.INT),
    ("t", AtomType.INT),  # report time that triggered the toll
    ("lav", AtomType.DBL),
    ("toll", AtomType.INT),
]

ACCIDENT_ALERT_COLUMNS: List[Tuple[str, AtomType]] = [
    ("vid", AtomType.INT),
    ("t", AtomType.INT),
    ("xway", AtomType.INT),
    ("seg", AtomType.INT),  # accident segment
]

SEGMENT_STATS_COLUMNS: List[Tuple[str, AtomType]] = [
    ("minute", AtomType.INT),
    ("xway", AtomType.INT),
    ("dir", AtomType.INT),
    ("seg", AtomType.INT),
    ("lav", AtomType.DBL),  # average speed over the last 5 minutes
    ("cars", AtomType.INT),  # distinct vehicles in the previous minute
]

BALANCE_REQUEST_COLUMNS: List[Tuple[str, AtomType]] = [
    ("t", AtomType.INT),
    ("vid", AtomType.INT),
    ("qid", AtomType.INT),
]

BALANCE_RESPONSE_COLUMNS: List[Tuple[str, AtomType]] = [
    ("qid", AtomType.INT),
    ("t", AtomType.INT),
    ("balance", AtomType.INT),
]


@dataclass(frozen=True)
class PositionReport:
    """One type-0 input tuple."""

    t: int
    vid: int
    speed: int
    xway: int
    lane: int
    dir: int
    seg: int
    pos: int

    def as_row(self) -> Tuple[int, int, int, int, int, int, int, int]:
        return (
            self.t, self.vid, self.speed, self.xway,
            self.lane, self.dir, self.seg, self.pos,
        )


def toll_formula(cars_in_segment: int) -> int:
    """The Linear Road toll: ``2 * (cars - 50)^2``."""
    overflow = cars_in_segment - TOLL_VEHICLE_THRESHOLD
    return 2 * overflow * overflow if overflow > 0 else 0
