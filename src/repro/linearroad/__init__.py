"""Linear Road (Arasu et al., VLDB 2004) on the DataCell.

Traffic generator, the continuous-query network (segment statistics,
accident detection, toll notification, account balance), a driving
harness, and an independent reference validator.
"""

from .generator import LinearRoadConfig, LinearRoadGenerator
from .harness import LinearRoadHarness, LinearRoadResult
from .model import PositionReport, toll_formula
from .validator import LinearRoadReference, validate_outputs

__all__ = [
    "LinearRoadConfig",
    "LinearRoadGenerator",
    "LinearRoadHarness",
    "LinearRoadResult",
    "LinearRoadReference",
    "PositionReport",
    "toll_formula",
    "validate_outputs",
]
