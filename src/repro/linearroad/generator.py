"""Linear Road traffic simulator.

Generates the type-0 position-report stream (plus type-2 balance
requests) for ``L`` expressways.  The paper's authors replayed the
benchmark's official data files; lacking those, we simulate the same
traffic process (documented substitution, DESIGN.md): cars enter at a
random segment, travel at speeds responding to congestion, report every
30 seconds, occasionally stop and cause accidents, and exit.

The simulator is deterministic under a seed, and intentionally produces
the situations the queries must handle: congested segments (toll
conditions), multi-car pile-ups (accident detection), and re-entrant
vehicles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import LinearRoadError
from .model import NUM_SEGMENTS, REPORT_INTERVAL, PositionReport

__all__ = ["LinearRoadConfig", "LinearRoadGenerator"]

FEET_PER_SEGMENT = 5280


@dataclass(frozen=True)
class LinearRoadConfig:
    """Scale knobs for the simulator.

    ``scale`` is the benchmark's L (number of expressways); the remaining
    defaults produce a laptop-sized run that still triggers tolls and
    accidents.
    """

    scale: float = 0.5  # L; 0.5 = one expressway, one direction active
    duration: int = 600  # simulated seconds
    cars_per_minute: float = 40.0  # new cars entering per expressway
    accident_probability: float = 0.002  # per car per report
    accident_duration: int = 150  # seconds a crashed car stays stopped
    pileup_probability: float = 0.7  # a crash drags in a same-segment car
    congestion_segment_share: float = 0.03  # share of "hot" entry segments
    seed: int = 42

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.duration <= 0:
            raise LinearRoadError("scale and duration must be positive")

    @property
    def num_xways(self) -> int:
        return max(1, int(round(self.scale + 0.49)))


@dataclass
class _Car:
    vid: int
    xway: int
    direction: int
    seg: int
    pos: int
    speed: int
    lane: int = 1
    stopped_until: int = -1
    exit_seg: int = 0
    entered_at: int = 0


class LinearRoadGenerator:
    """Produces a time-ordered list of position reports."""

    def __init__(self, config: Optional[LinearRoadConfig] = None):
        self.config = config or LinearRoadConfig()
        self._rng = random.Random(self.config.seed)
        self._next_vid = 0
        self.accidents_caused = 0

    def generate(self) -> List[PositionReport]:
        """Run the simulation; returns reports sorted by time."""
        cfg = self.config
        cars: List[_Car] = []
        reports: List[PositionReport] = []
        # hot segments concentrate entries to force toll conditions
        hot_segments = {
            xway: self._rng.sample(
                range(NUM_SEGMENTS),
                max(1, int(NUM_SEGMENTS * cfg.congestion_segment_share)),
            )
            for xway in range(cfg.num_xways)
        }
        for tick in range(0, cfg.duration, REPORT_INTERVAL):
            self._admit_cars(cars, hot_segments, tick)
            # congestion: speed responds to segment density (previous tick)
            self._density = {}
            for car in cars:
                key = (car.xway, car.direction, car.seg)
                self._density[key] = self._density.get(key, 0) + 1
            crashes: List[_Car] = []
            still_driving: List[_Car] = []
            for car in cars:
                was_stopped = car.stopped_until >= 0
                report = self._step_car(car, tick)
                if report is not None:
                    reports.append(report)
                    if not self._exited(car):
                        still_driving.append(car)
                    if car.stopped_until >= 0 and not was_stopped:
                        crashes.append(car)
            # pile-ups: a fresh crash drags a same-segment car onto the
            # same position — that is what makes accidents *detectable*
            # (>= 2 cars stopped at one spot)
            for crash in crashes:
                if self._rng.random() >= cfg.pileup_probability:
                    continue
                for other in still_driving:
                    if (
                        other.vid != crash.vid
                        and other.stopped_until < 0
                        and other.xway == crash.xway
                        and other.direction == crash.direction
                        and other.seg == crash.seg
                    ):
                        other.pos = crash.pos
                        other.speed = 0
                        other.lane = crash.lane
                        other.stopped_until = (
                            tick + REPORT_INTERVAL + cfg.accident_duration
                        )
                        # rewrite this tick's report to the crash site
                        for i in range(len(reports) - 1, -1, -1):
                            if (
                                reports[i].vid == other.vid
                                and reports[i].t == tick
                            ):
                                reports[i] = self._report(
                                    other, tick, speed=0
                                )
                                break
                        break
            cars = still_driving
        reports.sort(key=lambda r: (r.t, r.vid))
        return reports

    # ------------------------------------------------------------------
    def _admit_cars(self, cars, hot_segments, tick) -> None:
        cfg = self.config
        # L scales total traffic: fractional L runs one expressway at a
        # fraction of the nominal arrival rate, integer L adds expressways
        per_tick = (
            cfg.cars_per_minute
            * (REPORT_INTERVAL / 60.0)
            * (cfg.scale / cfg.num_xways)
        )
        for xway in range(cfg.num_xways):
            count = self._poisson(per_tick)
            for _ in range(count):
                direction = self._rng.randint(0, 1)
                if self._rng.random() < 0.8:
                    seg = self._rng.choice(hot_segments[xway])
                else:
                    seg = self._rng.randrange(NUM_SEGMENTS)
                travel = self._rng.randint(5, 30)
                if direction == 0:
                    exit_seg = min(NUM_SEGMENTS - 1, seg + travel)
                else:
                    exit_seg = max(0, seg - travel)
                cars.append(
                    _Car(
                        vid=self._next_vid,
                        xway=xway,
                        direction=direction,
                        seg=seg,
                        pos=seg * FEET_PER_SEGMENT,
                        speed=self._rng.randint(40, 70),
                        lane=self._rng.randint(1, 3),
                        exit_seg=exit_seg,
                        entered_at=tick,
                    )
                )
                self._next_vid += 1

    def _step_car(self, car: _Car, tick: int) -> Optional[PositionReport]:
        cfg = self.config
        if tick < car.entered_at:
            return None
        if car.stopped_until >= 0:
            if tick < car.stopped_until:
                # stopped at the accident site: identical reports
                return self._report(car, tick, speed=0)
            car.stopped_until = -1
            car.speed = self._rng.randint(30, 50)
        elif self._rng.random() < cfg.accident_probability:
            car.stopped_until = tick + cfg.accident_duration
            car.speed = 0
            car.lane = self._rng.randint(1, 3)
            self.accidents_caused += 1
            return self._report(car, tick, speed=0)
        # drive: vary speed, advance position; dense segments slow down
        occupancy = self._density.get(
            (car.xway, car.direction, car.seg), 0
        )
        ceiling = 100 if occupancy <= 40 else max(15, 1600 // occupancy)
        car.speed = max(
            10, min(ceiling, car.speed + self._rng.randint(-10, 10))
        )
        feet = int(car.speed * 5280 / 3600 * REPORT_INTERVAL)
        car.pos += feet if car.direction == 0 else -feet
        car.pos = max(0, min(car.pos, NUM_SEGMENTS * FEET_PER_SEGMENT - 1))
        car.seg = car.pos // FEET_PER_SEGMENT
        if self._exited(car):
            car.lane = 4  # exit ramp
        return self._report(car, tick, speed=car.speed)

    def _report(self, car: _Car, tick: int, speed: int) -> PositionReport:
        return PositionReport(
            t=tick,
            vid=car.vid,
            speed=speed,
            xway=car.xway,
            lane=car.lane,
            dir=car.direction,
            seg=car.seg,
            pos=car.pos,
        )

    def _exited(self, car: _Car) -> bool:
        if car.direction == 0:
            return car.seg >= car.exit_seg
        return car.seg <= car.exit_seg

    def _poisson(self, lam: float) -> int:
        """Knuth's algorithm — small lambda only."""
        import math

        threshold = math.exp(-lam)
        k, p = 0, 1.0
        while True:
            p *= self._rng.random()
            if p <= threshold:
                return k
            k += 1

    # ------------------------------------------------------------------
    def balance_requests(
        self, reports: List[PositionReport], rate: float = 0.01
    ) -> List[Tuple[int, int, int]]:
        """Type-2 account-balance requests: (t, vid, qid) rows."""
        out = []
        qid = 0
        for report in reports:
            if self._rng.random() < rate:
                out.append((report.t, report.vid, qid))
                qid += 1
        return out
