"""The Linear Road continuous-query network, expressed as DataCell plans.

Topology (a showcase of the paper's architecture: one shared input basket
with multiple reader factories, chained through intermediate baskets)::

    lr_position ──(shared)──> SegmentStatisticsPlan ──> lr_stats
                ──(shared)──> AccidentDetectionPlan ──> lr_accidents
                ──(shared)──> TollNotificationPlan  ──> lr_tolls, lr_alerts
    lr_stats / lr_accidents ──(side inputs, consumed)──> TollNotificationPlan
    lr_balance_req ──> AccountBalancePlan ──> lr_balance_out

Determinism rule (shared with the validator): all effects are defined on
*event time*, never on batch boundaries —

* segment statistics for minute ``m`` are computed from minutes ``< m``
  (LAV over the last 5 complete minutes, car count from minute ``m-1``);
* an accident detected by a report at time ``td`` affects reports with
  ``t > td`` and stops affecting them after the clearing report time
  ``tc`` (active for ``td < t <= tc``);
* a balance request at time ``t`` reflects tolls from reports at time
  ``< t``.

Under these rules the outputs are identical for *any* batching of the
input — the property test in ``tests/test_linearroad.py`` replays the same
log at several batch sizes and asserts byte-equality, which is exactly the
out-of-order/batch flexibility argument of paper §2.2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.basket import BasketSnapshot
from ..core.factory import ContinuousPlan, PlanOutput
from ..kernel.bat import bat_from_values
from ..kernel.mal import ResultSet
from ..kernel.types import AtomType
from .model import (
    ACCIDENT_UPSTREAM_SEGMENTS,
    LAV_WINDOW_MINUTES,
    STOPPED_REPORTS_FOR_ACCIDENT,
    TOLL_SPEED_THRESHOLD,
    TOLL_VEHICLE_THRESHOLD,
    toll_formula,
)

__all__ = [
    "SegmentStatisticsPlan",
    "AccidentDetectionPlan",
    "TollNotificationPlan",
    "AccountBalancePlan",
    "TollState",
]

SegKey = Tuple[int, int, int]  # (xway, dir, seg)


def _rows_to_result(columns, rows) -> Optional[ResultSet]:
    if not rows:
        return None
    values = list(zip(*rows))
    bats = [
        bat_from_values(atom, list(col))
        for (name, atom), col in zip(columns, values)
    ]
    return ResultSet([name for name, _ in columns], bats)


def _reports_from(snapshot: BasketSnapshot) -> List[Tuple[int, ...]]:
    """Extract position-report rows (t, vid, speed, xway, lane, dir, seg,
    pos) from a snapshot, in arrival order."""
    cols = [
        snapshot.column(c).python_list()
        for c in ("t", "vid", "speed", "xway", "lane", "dir", "seg", "pos")
    ]
    return list(zip(*cols)) if snapshot.count else []


class SegmentStatisticsPlan(ContinuousPlan):
    """Maintains per-minute segment statistics; emits completed minutes.

    For every (xway, dir, seg) and minute ``m`` it accumulates speed sums
    and distinct vehicles.  Once the watermark (max report time seen)
    enters minute ``m+1``, minute ``m`` is complete and a stats row for
    minute ``m+1`` is emitted: LAV = mean speed over minutes
    ``[m+1-5, m]``, cars = distinct vehicles in minute ``m``.
    """

    def __init__(self, input_basket: str = "lr_position",
                 output_basket: str = "lr_stats"):
        self.input_basket = input_basket.lower()
        self.output_basket = output_basket.lower()
        from .model import SEGMENT_STATS_COLUMNS

        self._columns = SEGMENT_STATS_COLUMNS
        self._speed: Dict[Tuple[SegKey, int], Tuple[float, int]] = {}
        self._vehicles: Dict[Tuple[SegKey, int], Set[int]] = defaultdict(set)
        self._keys_per_minute: Dict[int, Set[SegKey]] = defaultdict(set)
        self._emitted_minute = -1
        self.rows_emitted = 0

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots.get(self.input_basket)
        watermark = None
        if snap is not None and snap.count:
            for t, vid, speed, xway, lane, direction, seg, pos in (
                _reports_from(snap)
            ):
                minute = t // 60
                key = ((xway, direction, seg), minute)
                total, count = self._speed.get(key, (0.0, 0))
                self._speed[key] = (total + speed, count + 1)
                self._vehicles[key].add(vid)
                self._keys_per_minute[minute].add((xway, direction, seg))
                watermark = t if watermark is None else max(watermark, t)
        rows: List[Tuple[Any, ...]] = []
        if watermark is not None:
            current_minute = watermark // 60
            while self._emitted_minute < current_minute - 1:
                self._emitted_minute += 1
                rows.extend(self._emit_minute(self._emitted_minute))
        result = _rows_to_result(self._columns, rows)
        self.rows_emitted += len(rows)
        return PlanOutput(
            results={self.output_basket: result} if result else {}
        )

    def _emit_minute(self, m: int) -> List[Tuple[Any, ...]]:
        """Stats valid *during* minute m+1, from data of minutes <= m."""
        target_minute = m + 1
        keys: Set[SegKey] = set()
        for minute in range(max(0, m - LAV_WINDOW_MINUTES + 1), m + 1):
            keys |= self._keys_per_minute.get(minute, set())
        rows = []
        for key in sorted(keys):
            total, count = 0.0, 0
            for minute in range(max(0, m - LAV_WINDOW_MINUTES + 1), m + 1):
                t, c = self._speed.get((key, minute), (0.0, 0))
                total += t
                count += c
            lav = total / count if count else 0.0
            cars = len(self._vehicles.get((key, m), set()))
            rows.append(
                (target_minute, key[0], key[1], key[2], lav, cars)
            )
        return rows

    def describe(self) -> str:
        return "linear-road segment statistics"


class AccidentDetectionPlan(ContinuousPlan):
    """Detects accidents: >=2 cars stopped at the same position.

    A car is *stopped* after ``STOPPED_REPORTS_FOR_ACCIDENT`` consecutive
    reports with speed 0 at the same position.  Emits status rows
    ``(t, xway, dir, seg, status)`` — 1 on detection, 0 on clear.
    """

    COLUMNS = [
        ("t", AtomType.INT),
        ("xway", AtomType.INT),
        ("dir", AtomType.INT),
        ("seg", AtomType.INT),
        ("status", AtomType.INT),
    ]

    def __init__(self, input_basket: str = "lr_position",
                 output_basket: str = "lr_accidents"):
        self.input_basket = input_basket.lower()
        self.output_basket = output_basket.lower()
        # vid -> (position key, consecutive stopped count)
        self._stopped_streak: Dict[int, Tuple[Tuple[int, int, int, int], int]] = {}
        # position key -> set of stopped vids
        self._stopped_at: Dict[Tuple[int, int, int, int], Set[int]] = (
            defaultdict(set)
        )
        # active accident: (xway, dir, seg) -> position key
        self._active: Dict[SegKey, Tuple[int, int, int, int]] = {}
        self.accidents_detected = 0

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots.get(self.input_basket)
        rows: List[Tuple[int, int, int, int, int]] = []
        if snap is not None and snap.count:
            for t, vid, speed, xway, lane, direction, seg, pos in (
                _reports_from(snap)
            ):
                rows.extend(
                    self._process(t, vid, speed, xway, direction, seg, pos)
                )
        result = _rows_to_result(self.COLUMNS, rows)
        return PlanOutput(
            results={self.output_basket: result} if result else {}
        )

    def _process(self, t, vid, speed, xway, direction, seg, pos):
        events = []
        place = (xway, direction, seg, pos)
        seg_key = (xway, direction, seg)
        if speed == 0:
            prev_place, streak = self._stopped_streak.get(vid, (None, 0))
            streak = streak + 1 if prev_place == place else 1
            self._stopped_streak[vid] = (place, streak)
            if streak >= STOPPED_REPORTS_FOR_ACCIDENT:
                self._stopped_at[place].add(vid)
                if (
                    len(self._stopped_at[place]) >= 2
                    and seg_key not in self._active
                ):
                    self._active[seg_key] = place
                    self.accidents_detected += 1
                    events.append((t, xway, direction, seg, 1))
        else:
            # car moved: clear its stopped state, maybe clear the accident
            prev_place, _ = self._stopped_streak.pop(vid, (None, 0))
            if prev_place is not None:
                stopped = self._stopped_at.get(prev_place)
                if stopped and vid in stopped:
                    stopped.discard(vid)
                    seg_prev = prev_place[:3]
                    if (
                        self._active.get(seg_prev) == prev_place
                        and len(stopped) < 2
                    ):
                        del self._active[seg_prev]
                        events.append(
                            (t, seg_prev[0], seg_prev[1], seg_prev[2], 0)
                        )
        return events

    def describe(self) -> str:
        return "linear-road accident detection"


@dataclass
class TollState:
    """Balances shared between toll assessment and balance queries."""

    balances: Dict[int, int] = field(default_factory=dict)
    # (vid, toll, assessed at report time)
    history: List[Tuple[int, int, int]] = field(default_factory=list)

    def assess(self, vid: int, toll: int, t: int) -> None:
        if toll > 0:
            self.balances[vid] = self.balances.get(vid, 0) + toll
            self.history.append((vid, toll, t))

    def balance_before(self, vid: int, t: int) -> int:
        """Balance from tolls assessed at report times strictly < t."""
        return sum(
            toll for v, toll, at in self.history if v == vid and at < t
        )


class TollNotificationPlan(ContinuousPlan):
    """Issues toll notifications and accident alerts on segment crossings.

    Side inputs: the stats and accident baskets (consumed into local
    lookup state).  Main input: position reports.  On a report where the
    vehicle enters a new segment (and is not on the exit lane):

    * if an accident is active (by event-time rule) within 5 downstream
      segments → accident alert, toll 0;
    * else if LAV < 40 and cars > 50 → toll ``2*(cars-50)^2``;
    * else toll 0.

    Every crossing produces a toll notification row; non-zero tolls are
    assessed to the vehicle's balance.
    """

    TOLL_COLUMNS = [
        ("vid", AtomType.INT),
        ("t", AtomType.INT),
        ("lav", AtomType.DBL),
        ("toll", AtomType.INT),
    ]
    ALERT_COLUMNS = [
        ("vid", AtomType.INT),
        ("t", AtomType.INT),
        ("xway", AtomType.INT),
        ("seg", AtomType.INT),
    ]

    def __init__(
        self,
        state: Optional[TollState] = None,
        position_basket: str = "lr_position",
        stats_basket: str = "lr_stats",
        accidents_basket: str = "lr_accidents",
        toll_output: str = "lr_tolls",
        alert_output: str = "lr_alerts",
    ):
        self.state = state or TollState()
        self.position_basket = position_basket.lower()
        self.stats_basket = stats_basket.lower()
        self.accidents_basket = accidents_basket.lower()
        self.toll_output = toll_output.lower()
        self.alert_output = alert_output.lower()
        # lookup state
        self._stats: Dict[Tuple[int, SegKey], Tuple[float, int]] = {}
        # (xway, dir, seg) -> list of (detect_t, clear_t or None)
        self._accidents: Dict[SegKey, List[List[Optional[int]]]] = (
            defaultdict(list)
        )
        self._last_seg: Dict[int, SegKey] = {}
        self.notifications = 0
        self.alerts = 0

    # ------------------------------------------------------------------
    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        self._ingest_stats(snapshots.get(self.stats_basket))
        self._ingest_accidents(snapshots.get(self.accidents_basket))
        tolls: List[Tuple[Any, ...]] = []
        alerts: List[Tuple[Any, ...]] = []
        snap = snapshots.get(self.position_basket)
        if snap is not None and snap.count:
            for t, vid, speed, xway, lane, direction, seg, pos in (
                _reports_from(snap)
            ):
                self._report(
                    t, vid, xway, lane, direction, seg, tolls, alerts
                )
        results = {}
        toll_result = _rows_to_result(self.TOLL_COLUMNS, tolls)
        if toll_result:
            results[self.toll_output] = toll_result
        alert_result = _rows_to_result(self.ALERT_COLUMNS, alerts)
        if alert_result:
            results[self.alert_output] = alert_result
        self.notifications += len(tolls)
        self.alerts += len(alerts)
        return PlanOutput(results=results)

    def _ingest_stats(self, snap: Optional[BasketSnapshot]) -> None:
        if snap is None or snap.count == 0:
            return
        cols = [
            snap.column(c).python_list()
            for c in ("minute", "xway", "dir", "seg", "lav", "cars")
        ]
        for minute, xway, direction, seg, lav, cars in zip(*cols):
            self._stats[(minute, (xway, direction, seg))] = (lav, cars)

    def _ingest_accidents(self, snap: Optional[BasketSnapshot]) -> None:
        if snap is None or snap.count == 0:
            return
        cols = [
            snap.column(c).python_list()
            for c in ("t", "xway", "dir", "seg", "status")
        ]
        for t, xway, direction, seg, status in zip(*cols):
            key = (xway, direction, seg)
            if status == 1:
                self._accidents[key].append([t, None])
            else:
                for span in reversed(self._accidents[key]):
                    if span[1] is None:
                        span[1] = t
                        break

    def _accident_downstream(self, t, xway, direction, seg) -> Optional[int]:
        """Segment of an active accident within 5 downstream segments."""
        step = 1 if direction == 0 else -1
        for offset in range(ACCIDENT_UPSTREAM_SEGMENTS + 1):
            probe = seg + step * offset
            for detect_t, clear_t in self._accidents.get(
                (xway, direction, probe), ()
            ):
                if detect_t < t and (clear_t is None or t <= clear_t):
                    return probe
        return None

    def _report(self, t, vid, xway, lane, direction, seg, tolls, alerts):
        seg_key = (xway, direction, seg)
        if self._last_seg.get(vid) == seg_key:
            return
        self._last_seg[vid] = seg_key
        if lane == 4:  # exit ramp: no toll on the way out
            return
        accident_seg = self._accident_downstream(t, xway, direction, seg)
        if accident_seg is not None:
            alerts.append((vid, t, xway, accident_seg))
            tolls.append((vid, t, 0.0, 0))
            return
        lav, cars = self._stats.get((t // 60, seg_key), (0.0, 0))
        if lav < TOLL_SPEED_THRESHOLD and cars > TOLL_VEHICLE_THRESHOLD:
            toll = toll_formula(cars)
        else:
            toll = 0
        tolls.append((vid, t, float(lav), toll))
        self.state.assess(vid, toll, t)

    def describe(self) -> str:
        return "linear-road toll notification"


class AccountBalancePlan(ContinuousPlan):
    """Type-2 queries: report a vehicle's accumulated tolls."""

    COLUMNS = [
        ("qid", AtomType.INT),
        ("t", AtomType.INT),
        ("balance", AtomType.INT),
    ]

    def __init__(
        self,
        state: TollState,
        input_basket: str = "lr_balance_req",
        output_basket: str = "lr_balance_out",
    ):
        self.state = state
        self.input_basket = input_basket.lower()
        self.output_basket = output_basket.lower()

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots.get(self.input_basket)
        rows = []
        if snap is not None and snap.count:
            cols = [
                snap.column(c).python_list() for c in ("t", "vid", "qid")
            ]
            for t, vid, qid in zip(*cols):
                rows.append((qid, t, self.state.balance_before(vid, t)))
        result = _rows_to_result(self.COLUMNS, rows)
        return PlanOutput(
            results={self.output_basket: result} if result else {}
        )

    def describe(self) -> str:
        return "linear-road account balance"
