"""Reference implementation and validator for Linear Road outputs.

A deliberately simple, sequential re-implementation of the benchmark
semantics (same event-time rules as :mod:`repro.linearroad.queries`, see
the determinism note there).  The harness compares the DataCell network's
outputs against this oracle — any divergence is a correctness bug in the
stream engine, not a tuning issue.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .model import (
    ACCIDENT_UPSTREAM_SEGMENTS,
    LAV_WINDOW_MINUTES,
    STOPPED_REPORTS_FOR_ACCIDENT,
    TOLL_SPEED_THRESHOLD,
    TOLL_VEHICLE_THRESHOLD,
    PositionReport,
    toll_formula,
)

__all__ = ["LinearRoadReference", "validate_outputs"]

SegKey = Tuple[int, int, int]


class LinearRoadReference:
    """Computes expected tolls, alerts and balances from a report log."""

    def __init__(self, reports: Sequence[PositionReport]):
        self.reports = sorted(reports, key=lambda r: (r.t, r.vid))
        self.tolls: List[Tuple[int, int, float, int]] = []
        self.alerts: List[Tuple[int, int, int, int]] = []
        self._toll_history: List[Tuple[int, int, int]] = []
        self._stats_speed: Dict[Tuple[SegKey, int], Tuple[float, int]] = {}
        self._stats_vehicles: Dict[Tuple[SegKey, int], Set[int]] = (
            defaultdict(set)
        )
        self._accident_spans: Dict[SegKey, List[List[Optional[int]]]] = (
            defaultdict(list)
        )
        self._computed = False

    # ------------------------------------------------------------------
    def compute(self) -> "LinearRoadReference":
        if self._computed:
            return self
        self._precompute_stats()
        self._precompute_accidents()
        self._assess_tolls()
        self._computed = True
        return self

    # -- minute statistics (pure event-time function of the log) --------
    def _precompute_stats(self) -> None:
        for r in self.reports:
            minute = r.t // 60
            key = ((r.xway, r.dir, r.seg), minute)
            total, count = self._stats_speed.get(key, (0.0, 0))
            self._stats_speed[key] = (total + r.speed, count + 1)
            self._stats_vehicles[key].add(r.vid)

    def _stats_for(self, minute: int, key: SegKey) -> Tuple[float, int]:
        """(LAV, cars) valid during ``minute`` — from minutes < minute."""
        total, count = 0.0, 0
        for m in range(max(0, minute - LAV_WINDOW_MINUTES), minute):
            t, c = self._stats_speed.get((key, m), (0.0, 0))
            total += t
            count += c
        lav = total / count if count else 0.0
        cars = len(self._stats_vehicles.get((key, minute - 1), set()))
        return lav, cars

    def _max_minute(self) -> int:
        return max((r.t // 60 for r in self.reports), default=-1)

    # -- accidents -------------------------------------------------------
    def _precompute_accidents(self) -> None:
        streak: Dict[int, Tuple[Tuple[int, int, int, int], int]] = {}
        stopped_at: Dict[Tuple[int, int, int, int], Set[int]] = defaultdict(set)
        active: Dict[SegKey, Tuple[int, int, int, int]] = {}
        for r in self.reports:
            place = (r.xway, r.dir, r.seg, r.pos)
            seg_key = (r.xway, r.dir, r.seg)
            if r.speed == 0:
                prev, n = streak.get(r.vid, (None, 0))
                n = n + 1 if prev == place else 1
                streak[r.vid] = (place, n)
                if n >= STOPPED_REPORTS_FOR_ACCIDENT:
                    stopped_at[place].add(r.vid)
                    if len(stopped_at[place]) >= 2 and seg_key not in active:
                        active[seg_key] = place
                        self._accident_spans[seg_key].append([r.t, None])
            else:
                prev, _ = streak.pop(r.vid, (None, 0))
                if prev is not None and r.vid in stopped_at.get(prev, set()):
                    stopped_at[prev].discard(r.vid)
                    prev_key = prev[:3]
                    if (
                        active.get(prev_key) == prev
                        and len(stopped_at[prev]) < 2
                    ):
                        del active[prev_key]
                        for span in reversed(
                            self._accident_spans[prev_key]
                        ):
                            if span[1] is None:
                                span[1] = r.t
                                break

    def _accident_downstream(self, t, xway, direction, seg) -> Optional[int]:
        step = 1 if direction == 0 else -1
        for offset in range(ACCIDENT_UPSTREAM_SEGMENTS + 1):
            probe = seg + step * offset
            for detect_t, clear_t in self._accident_spans.get(
                (xway, direction, probe), ()
            ):
                if detect_t < t and (clear_t is None or t <= clear_t):
                    return probe
        return None

    # -- toll assessment --------------------------------------------------
    def _assess_tolls(self) -> None:
        last_seg: Dict[int, SegKey] = {}
        for r in self.reports:
            seg_key = (r.xway, r.dir, r.seg)
            if last_seg.get(r.vid) == seg_key:
                continue
            last_seg[r.vid] = seg_key
            if r.lane == 4:
                continue
            accident_seg = self._accident_downstream(
                r.t, r.xway, r.dir, r.seg
            )
            if accident_seg is not None:
                self.alerts.append((r.vid, r.t, r.xway, accident_seg))
                self.tolls.append((r.vid, r.t, 0.0, 0))
                continue
            lav, cars = self._stats_for(r.t // 60, seg_key)
            if lav < TOLL_SPEED_THRESHOLD and cars > TOLL_VEHICLE_THRESHOLD:
                toll = toll_formula(cars)
            else:
                toll = 0
            self.tolls.append((r.vid, r.t, float(lav), toll))
            if toll > 0:
                self._toll_history.append((r.vid, toll, r.t))

    # ------------------------------------------------------------------
    def balance_before(self, vid: int, t: int) -> int:
        return sum(
            toll for v, toll, at in self._toll_history if v == vid and at < t
        )

    def expected_balances(
        self, requests: Sequence[Tuple[int, int, int]]
    ) -> List[Tuple[int, int, int]]:
        """(qid, t, balance) rows for (t, vid, qid) requests."""
        return [
            (qid, t, self.balance_before(vid, t)) for t, vid, qid in requests
        ]


def validate_outputs(
    reference: LinearRoadReference,
    got_tolls: Sequence[Tuple[int, int, float, int]],
    got_alerts: Sequence[Tuple[int, int, int, int]],
    got_balances: Sequence[Tuple[int, int, int]] = (),
    expected_balances: Sequence[Tuple[int, int, int]] = (),
) -> List[str]:
    """Compare engine outputs against the oracle; returns mismatch notes
    (empty list = pass)."""
    reference.compute()
    problems: List[str] = []
    if sorted(got_tolls) != sorted(reference.tolls):
        missing = set(map(tuple, reference.tolls)) - set(map(tuple, got_tolls))
        extra = set(map(tuple, got_tolls)) - set(map(tuple, reference.tolls))
        problems.append(
            f"toll mismatch: {len(missing)} missing, {len(extra)} extra "
            f"(e.g. missing={list(missing)[:3]}, extra={list(extra)[:3]})"
        )
    if sorted(got_alerts) != sorted(reference.alerts):
        problems.append(
            f"alert mismatch: expected {len(reference.alerts)}, "
            f"got {len(got_alerts)}"
        )
    if sorted(got_balances) != sorted(expected_balances):
        problems.append(
            f"balance mismatch: expected {len(expected_balances)}, "
            f"got {len(got_balances)}"
        )
    return problems
