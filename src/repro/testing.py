"""The one seeding path for every stochastic component.

Property tests, fuzzers, workload generators and benchmark runs all draw
their base seed from here, so a whole run is reproducible from a single
number: set ``DATACELL_SEED`` (default 42) and every hypothesis example,
generated workload and recorded benchmark replays identically.  The
pytest header echoes the active seed and :func:`repro.bench.reporting.
record_result` stamps it into ``benchmarks/results.json``, so any
failure or figure can name the seed that produced it.

The simulation harness (:mod:`repro.simtest`) keeps *per-episode* seeds
on top of this — an episode must be reproducible in isolation from its
own ``EpisodeSpec`` — but its CI entry point derives its base seed from
here too.
"""

from __future__ import annotations

import os
import random
from typing import Optional

__all__ = ["DEFAULT_SEED", "seed_all", "current_seed", "derive_rng"]

DEFAULT_SEED = 42

_current: Optional[int] = None


def seed_all(seed: Optional[int] = None) -> int:
    """Seed every process-global generator; returns the seed used.

    ``seed=None`` reads ``DATACELL_SEED`` from the environment, falling
    back to :data:`DEFAULT_SEED`.  Seeds python's global ``random`` and
    (when importable) numpy's legacy global generator; components that
    keep their own ``random.Random`` should construct it via
    :func:`derive_rng` instead of reaching for the globals.
    """
    global _current
    if seed is None:
        seed = int(os.environ.get("DATACELL_SEED", DEFAULT_SEED))
    _current = int(seed)
    random.seed(_current)
    try:
        import numpy as np

        np.random.seed(_current % (2**32))
    except ImportError:  # pragma: no cover - numpy is a core dependency
        pass
    return _current


def current_seed() -> int:
    """The active base seed, seeding everything on first use."""
    if _current is None:
        return seed_all()
    return _current


def derive_rng(name: str) -> random.Random:
    """A private generator derived from the base seed and a label.

    Distinct labels give decorrelated streams (two generators in one
    benchmark must not mirror each other), while everything still rolls
    up to the single base seed.  String seeding is stable across
    processes, unlike ``hash()``.
    """
    return random.Random(f"datacell:{current_seed()}:{name}")
