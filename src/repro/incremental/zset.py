"""Z-sets: weighted multisets, the value type of delta streams (DBSP).

A Z-set maps rows (hashable tuples) to integer weights.  A weight of
``+k`` means the row is present ``k`` times; ``-k`` means ``k``
retractions are pending.  Zero-weight entries are eliminated eagerly, so
``a + (-a) == ZSet()`` holds structurally — the cancellation law the
property suite pins.

Z-sets form an abelian group under :meth:`__add__`; streams of Z-sets
form a group pointwise, which is what makes the DBSP incremental
operators (:mod:`~repro.incremental.circuit`) compositional: a *linear*
operator is its own incremental version, and any operator can be
incrementalized as ``D ∘ lift(op) ∘ I``.

Rows with weight accumulation collapse duplicates: inserting the same
tuple twice yields one entry of weight 2.  :meth:`to_rows` expands
positive weights back into a plain multiset of rows (and refuses
negative ones — emitting a retraction as a plain row would corrupt a
non-weighted consumer).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import DataCellError

__all__ = ["ZSet", "WEIGHT_COLUMN", "integrate_weighted_rows"]

#: Name of the visible weight column carried by delta-mode output baskets
#: (rows are ``(*user_columns, weight)`` with weight ``+1``/``-1``).
WEIGHT_COLUMN = "dc_weight"

Row = Tuple[Any, ...]


class ZSet:
    """A weighted multiset of rows with eager zero elimination."""

    __slots__ = ("_weights",)

    def __init__(
        self, weights: Optional[Dict[Row, int]] = None
    ) -> None:
        self._weights: Dict[Row, int] = {}
        if weights:
            for row, weight in weights.items():
                self.add(row, weight)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Iterable[Row], weight: int = 1) -> "ZSet":
        """The Z-set of ``rows``, each carrying ``weight`` (default +1)."""
        out = cls()
        for row in rows:
            out.add(tuple(row), weight)
        return out

    def copy(self) -> "ZSet":
        out = ZSet()
        out._weights = dict(self._weights)
        return out

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, row: Row, weight: int = 1) -> None:
        """Fold ``(row, weight)`` in, eliminating the entry at zero."""
        if weight == 0:
            return
        new = self._weights.get(row, 0) + weight
        if new == 0:
            del self._weights[row]
        else:
            self._weights[row] = new

    def merge(self, other: "ZSet") -> None:
        """In-place ``self += other``."""
        for row, weight in other._weights.items():
            self.add(row, weight)

    # ------------------------------------------------------------------
    # group algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "ZSet") -> "ZSet":
        out = self.copy()
        out.merge(other)
        return out

    def __neg__(self) -> "ZSet":
        out = ZSet()
        out._weights = {row: -w for row, w in self._weights.items()}
        return out

    def __sub__(self, other: "ZSet") -> "ZSet":
        return self + (-other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZSet):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:  # pragma: no cover - ZSets are mutable
        raise TypeError("ZSet is unhashable")

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self._weights)

    def __len__(self) -> int:
        """Number of distinct rows (not total multiplicity)."""
        return len(self._weights)

    def __iter__(self) -> Iterator[Tuple[Row, int]]:
        return iter(self._weights.items())

    def weight(self, row: Row) -> int:
        return self._weights.get(tuple(row), 0)

    def items(self) -> Iterator[Tuple[Row, int]]:
        return iter(self._weights.items())

    def is_positive(self) -> bool:
        """True when every weight is ≥ 0 (the Z-set is a plain multiset)."""
        return all(w > 0 for w in self._weights.values())

    def total_weight(self) -> int:
        return sum(self._weights.values())

    def to_rows(self) -> List[Row]:
        """Expand positive weights into a row multiset.

        Raises on negative weights: a retraction has no representation as
        a plain row and must flow through a weighted consumer instead.
        """
        out: List[Row] = []
        for row, weight in self._weights.items():
            if weight < 0:
                raise DataCellError(
                    f"cannot expand negative weight {weight} for row {row!r}"
                )
            out.extend([row] * weight)
        return out

    def to_weighted_rows(self) -> List[Row]:
        """Rows with the weight appended as a last column (insertion order)."""
        return [(*row, weight) for row, weight in self._weights.items()]

    def nbytes(self) -> int:
        """Rough per-entry estimate for resource accounting."""
        # dict slot + tuple header + per-field pointers; precision is not
        # the contract here (see obs.resources.estimate_nbytes)
        per_row = 96
        return 56 + sum(
            per_row + 8 * len(row) for row in self._weights
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{row!r}: {w:+d}" for row, w in list(self._weights.items())[:8]
        )
        suffix = ", ..." if len(self._weights) > 8 else ""
        return f"ZSet({{{inner}{suffix}}})"


def integrate_weighted_rows(rows: Iterable[Row]) -> List[Row]:
    """Fold ``(*cols, weight)`` delta rows into the current multiset.

    This is how a client (or the differential oracle) turns the delta
    output of an incremental query back into ordinary rows: sum weights
    per distinct row prefix, then expand.  Raises if any row nets a
    negative weight — more retractions than insertions means the delta
    stream is corrupt.
    """
    acc = ZSet()
    for row in rows:
        acc.add(tuple(row[:-1]), int(row[-1]))
    return acc.to_rows()
