"""SQL → incremental circuit compiler (shape detection + fallback).

:func:`compile_incremental` inspects a parsed continuous ``SELECT`` and,
when its shape is in the supported matrix, lowers it to a
:class:`CircuitContinuousPlan` — a factory plan whose per-firing cost is
O(|delta|).  Unsupported shapes raise :class:`IncrementalUnsupported`
with a human-readable reason; the engine catches it and falls back to
the re-evaluation (MAL) path *per query*, recording the reason.

Supported shapes
----------------
``linear``
    select/project/filter over basket expressions, no aggregates and no
    DISTINCT/LIMIT.  Linear operators are their own incremental version
    (lifting commutes with integration), and basket consumption already
    makes each firing a pure delta — the compiled MAL program runs
    unchanged as the circuit's lift stage, and the output is row-for-row
    identical to re-evaluation.

``aggregate``
    ``SELECT [keys,] aggs FROM [select * from B ...] as x [WHERE ...]
    [GROUP BY keys]`` with COUNT/SUM/AVG/MIN/MAX over one value column.
    A synthesized lift stage (compiled MAL) produces ``(*keys, value)``
    delta rows, folded by
    :class:`~repro.incremental.circuit.IncrementalGroupAggregate`.  The
    output basket is *weighted*: each firing emits the retraction of a
    group's previous result row (``dc_weight = -1``) and the insertion
    of its new one (``+1``); integrating the output reproduces the
    one-shot GROUP BY at every point in time.

``join``
    ``SELECT cols FROM [..] as a, [..] as b WHERE a.k = b.k [AND
    side-local filters]``.  Per-side lift stages feed
    :class:`~repro.incremental.circuit.IncrementalJoin`'s delta-probe
    against integrated per-key state.  Output is weighted like the
    aggregate shape.

Everything else — HAVING, DISTINCT, LIMIT, ORDER BY on aggregates,
cross-side residual predicates, nested baskets in subqueries — falls
back with a reason (``DataCell.incremental_fallbacks``).
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import DataCellError
from ..kernel.catalog import Catalog
from ..kernel.interpreter import MalInterpreter
from ..kernel.mal import ResultSet
from ..kernel.types import AtomType
from ..sql.ast_nodes import (
    BasketExpr,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    Select,
    SelectItem,
    Star,
    walk_sources,
)
from ..sql.compiler import (
    AGGREGATES,
    CompiledQuery,
    _aggregate_atom,
    _contains_aggregate,
    _default_name,
    _join_and,
    _split_and,
    compile_continuous,
)
from .circuit import IncrementalGroupAggregate, IncrementalJoin
from .zset import WEIGHT_COLUMN, ZSet

__all__ = [
    "IncrementalUnsupported",
    "CircuitContinuousPlan",
    "compile_incremental",
]


class IncrementalUnsupported(DataCellError):
    """The query's shape has no incremental circuit; fall back to re-eval."""


# ======================================================================
# runtime plan
# ======================================================================
class CircuitContinuousPlan:
    """A factory plan executing an incremental circuit.

    ``stages`` are compiled MAL lift programs (one for linear/aggregate,
    two for join); the stateful circuit operator (aggregate/join) holds
    the integrated state that durability checkpoints and ``nbytes()``
    report.  ``weighted`` marks plans whose output rows carry a trailing
    ``dc_weight`` column.
    """

    def __init__(
        self,
        kind: str,
        stages: List[CompiledQuery],
        interpreter: MalInterpreter,
        output_basket: str,
        names: List[str],
        atoms: List[AtomType],
    ):
        self.kind = kind
        self.stages = stages
        self.interpreter = interpreter
        self.output_basket = output_basket.lower()
        self.names = names  # output column names (incl. weight if any)
        self.atoms = atoms
        self.agg: Optional[IncrementalGroupAggregate] = None
        self.join: Optional[IncrementalJoin] = None
        # aggregate shape: output item -> ("key", i) | ("agg", j)
        self.item_plan: List[Tuple[str, int]] = []
        self.n_group_keys = 0
        # join shape: output item -> position in the joined row
        self.out_positions: List[int] = []
        self.deltas_processed = 0  # delta rows folded through the circuit
        self.rows_emitted = 0

    @property
    def weighted(self) -> bool:
        return self.kind in ("aggregate", "join")

    @property
    def basket_inputs(self):
        return [b for stage in self.stages for b in stage.basket_inputs]

    def output_schema(self) -> List[Tuple[str, AtomType]]:
        return list(zip(self.names, self.atoms))

    # ------------------------------------------------------------------
    def _run_stage(
        self, stage: CompiledQuery, snapshots, consumed: Dict[str, np.ndarray]
    ) -> ResultSet:
        env: Dict[str, Any] = {}
        for binding in stage.basket_inputs:
            snap = snapshots[binding.basket]
            for name, bat in zip(snap.names, snap.bats):
                env[f"{binding.alias}.{name}"] = bat
        final = self.interpreter.execute(stage.program, env)
        for binding in stage.basket_inputs:
            consumed[binding.basket] = np.asarray(
                final[binding.consumed_var], dtype=np.int64
            )
        return final[stage.program.output]

    def run(self, snapshots):
        from ..core.factory import PlanOutput

        consumed: Dict[str, np.ndarray] = {}
        if self.kind == "lift":
            result = self._run_stage(self.stages[0], snapshots, consumed)
            self.deltas_processed += result.count
            self.rows_emitted += result.count
            output = PlanOutput(consumed=consumed)
            if result.count:
                output.results[self.output_basket] = result
            return output
        if self.kind == "aggregate":
            result = self._run_stage(self.stages[0], snapshots, consumed)
            delta = ZSet.from_rows(result.rows())
            self.deltas_processed += result.count
            out_delta = self.agg.step(delta)
            rows = self._aggregate_rows(out_delta)
        else:  # join
            dleft = self._stage_delta(0, snapshots, consumed)
            dright = self._stage_delta(1, snapshots, consumed)
            out_delta = self.join.step_both(dleft, dright)
            rows = self._join_rows(out_delta)
        self.rows_emitted += len(rows)
        output = PlanOutput(consumed=consumed)
        if rows:
            output.results[self.output_basket] = self._build_result(rows)
        return output

    def _stage_delta(self, index, snapshots, consumed) -> ZSet:
        result = self._run_stage(self.stages[index], snapshots, consumed)
        self.deltas_processed += result.count
        return ZSet.from_rows(result.rows())

    def _aggregate_rows(self, delta: ZSet) -> List[Tuple[Any, ...]]:
        """Map ``(*keys, *aggs)`` circuit rows to the select-item order,
        appending the weight column."""
        rows: List[Tuple[Any, ...]] = []
        for row, weight in delta.items():
            out: List[Any] = []
            for role, index in self.item_plan:
                if role == "key":
                    out.append(row[index])
                else:
                    out.append(row[self.n_group_keys + index])
            rows.append((*out, weight))
        return rows

    def _join_rows(self, delta: ZSet) -> List[Tuple[Any, ...]]:
        return [
            (*[row[p] for p in self.out_positions], weight)
            for row, weight in delta.items()
        ]

    def _build_result(self, rows: List[Tuple[Any, ...]]) -> ResultSet:
        from ..kernel.bat import bat_from_values

        columns = list(zip(*rows))
        bats = []
        for atom, col in zip(self.atoms, columns):
            values = [
                int(v) if atom.is_integral and isinstance(v, float) else v
                for v in col
            ]
            bats.append(bat_from_values(atom, values))
        return ResultSet(list(self.names), bats)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [f"incremental circuit [{self.kind}]"]
        for i, stage in enumerate(self.stages):
            label = "lift" if len(self.stages) == 1 else f"lift[{i}]"
            inputs = ", ".join(b.basket for b in stage.basket_inputs)
            lines.append(f"  {label}: MAL program over {inputs}")
        if self.agg is not None:
            lines.append(
                f"  aggregate: {self.agg.aggregates} "
                f"(grouped={self.agg.grouped}, "
                f"groups={len(self.agg.groups)})"
            )
        if self.join is not None:
            lines.append(
                f"  join: integrated state "
                f"{len(self.join.left_state)}x{len(self.join.right_state)} keys"
            )
        lines.append(
            f"  deltas in: {self.deltas_processed}, "
            f"rows out: {self.rows_emitted}"
        )
        return "\n".join(lines)

    def render_analyze(self) -> str:
        """EXPLAIN ANALYZE for circuit plans: per-stage MAL node timings
        plus the circuit operators' state footprint."""
        parts = [self.describe()]
        for stage in self.stages:
            parts.append(stage.program.render_analyze())
        parts.append(f"circuit state: {self.nbytes()} bytes")
        return "\n".join(parts)

    # -- resource accounting --------------------------------------------
    def nbytes(self) -> int:
        total = 0
        if self.agg is not None:
            total += self.agg.nbytes()
        if self.join is not None:
            total += self.join.nbytes()
        return total

    # -- durability -----------------------------------------------------
    def export_state(self) -> Optional[bytes]:
        if self.kind == "lift":
            return None  # pure lift is stateless, like MalContinuousPlan
        state: Dict[str, Any] = {
            "kind": self.kind,
            "deltas_processed": self.deltas_processed,
            "rows_emitted": self.rows_emitted,
        }
        if self.agg is not None:
            state["agg"] = self.agg.export_state()
        if self.join is not None:
            state["join"] = self.join.export_state()
        return pickle.dumps(state, protocol=4)

    def import_state(self, blob: Optional[bytes]) -> None:
        if self.kind == "lift":
            if blob is not None:
                raise DataCellError(
                    "lift circuit is stateless but a checkpoint carried "
                    "plan state"
                )
            return
        if blob is None:
            raise DataCellError(
                "incremental circuit expected saved state in the "
                "checkpoint but found none"
            )
        state = pickle.loads(blob)
        if state["kind"] != self.kind:
            raise DataCellError(
                f"checkpointed circuit kind {state['kind']!r} does not "
                f"match plan kind {self.kind!r}"
            )
        self.deltas_processed = state["deltas_processed"]
        self.rows_emitted = state["rows_emitted"]
        if self.agg is not None:
            self.agg.import_state(state["agg"])
        if self.join is not None:
            self.join.import_state(state["join"])


# ======================================================================
# shape detection
# ======================================================================
def compile_incremental(
    catalog: Catalog,
    stmt: Select,
    interpreter: MalInterpreter,
    output_basket: str,
) -> CircuitContinuousPlan:
    """Lower a continuous SELECT onto an incremental circuit.

    Raises :class:`IncrementalUnsupported` when the statement's shape is
    outside the supported matrix (see module docstring) — the caller
    falls back to the re-evaluation path for this query only.
    """
    if stmt.window is not None:
        raise IncrementalUnsupported(
            "WINDOW queries route through the window executor, not the "
            "circuit compiler"
        )
    sources = list(stmt.sources)
    leaves = [leaf for s in sources for leaf in walk_sources(s)]
    baskets = [s for s in leaves if isinstance(s, BasketExpr)]
    if not baskets:
        raise IncrementalUnsupported("not a continuous query")
    has_aggs = any(
        _contains_aggregate(i.expr) for i in stmt.items
    ) or (stmt.having is not None and _contains_aggregate(stmt.having))
    if has_aggs or stmt.group_by:
        return _compile_aggregate_shape(
            catalog, stmt, interpreter, output_basket
        )
    if len(baskets) == 2 and len(sources) == 2 and stmt.where is not None:
        plan = _try_join_shape(catalog, stmt, interpreter, output_basket)
        if plan is not None:
            return plan
    return _compile_linear_shape(catalog, stmt, interpreter, output_basket)


def _compile_linear_shape(
    catalog, stmt, interpreter, output_basket
) -> CircuitContinuousPlan:
    if stmt.distinct:
        raise IncrementalUnsupported(
            "DISTINCT is not linear over multisets (dedup needs "
            "integrated state)"
        )
    if stmt.limit is not None:
        raise IncrementalUnsupported(
            "outer LIMIT truncates per firing, not per stream"
        )
    compiled = compile_continuous(catalog, stmt)
    plan = CircuitContinuousPlan(
        "lift",
        [compiled],
        interpreter,
        output_basket,
        list(compiled.output_names),
        list(compiled.output_atoms),
    )
    return plan


def _single_basket(stmt: Select) -> BasketExpr:
    if len(stmt.sources) != 1 or not isinstance(stmt.sources[0], BasketExpr):
        raise IncrementalUnsupported(
            "aggregate circuits need exactly one basket expression source"
        )
    return stmt.sources[0]


def _compile_aggregate_shape(
    catalog, stmt, interpreter, output_basket
) -> CircuitContinuousPlan:
    if stmt.having is not None:
        raise IncrementalUnsupported(
            "HAVING over incremental aggregates is not supported yet"
        )
    if stmt.order_by or stmt.limit is not None or stmt.distinct:
        raise IncrementalUnsupported(
            "ORDER BY / LIMIT / DISTINCT do not compose with delta "
            "aggregate output"
        )
    source = _single_basket(stmt)
    alias = source.binding_name
    # group keys: plain column refs of the stream
    keys: List[str] = []
    for gexpr in stmt.group_by:
        if not isinstance(gexpr, ColumnRef):
            raise IncrementalUnsupported(
                "GROUP BY must name stream columns directly"
            )
        keys.append(gexpr.name.lower())
    # select items: keys and aggregates over one value column
    aggregates: List[str] = []
    value_column: Optional[str] = None
    item_plan: List[Tuple[str, int]] = []
    names: List[str] = []
    for item in stmt.items:
        expr = item.expr
        if isinstance(expr, ColumnRef):
            col = expr.name.lower()
            if col not in keys:
                raise IncrementalUnsupported(
                    f"column {col!r} must appear in GROUP BY or inside "
                    "an aggregate"
                )
            item_plan.append(("key", keys.index(col)))
            names.append((item.alias or col).lower())
            continue
        if not isinstance(expr, FuncCall) or expr.name not in AGGREGATES:
            raise IncrementalUnsupported(
                "select items must be group keys or aggregate calls"
            )
        if expr.distinct:
            raise IncrementalUnsupported(
                "DISTINCT aggregates have no retraction-capable state here"
            )
        if expr.star:
            agg_name = "count_star"
        else:
            if len(expr.args) != 1 or not isinstance(
                expr.args[0], ColumnRef
            ):
                raise IncrementalUnsupported(
                    "aggregate arguments must be plain stream columns"
                )
            column = expr.args[0].name.lower()
            if value_column is None:
                value_column = column
            elif column != value_column:
                raise IncrementalUnsupported(
                    "all aggregates must target the same stream column"
                )
            agg_name = expr.name
        item_plan.append(("agg", len(aggregates)))
        aggregates.append(agg_name)
        names.append((item.alias or _default_name(expr, len(names))).lower())
    if not aggregates:
        raise IncrementalUnsupported("no aggregates in the select list")
    # lift stage: (*keys, value) rows from the basket expression
    value_expr: Expr = (
        ColumnRef(value_column, alias)
        if value_column is not None
        else Literal(1)  # count(*)-only: the value is never read
    )
    lift_items = [
        SelectItem(ColumnRef(k, alias), alias=f"__k{i}")
        for i, k in enumerate(keys)
    ] + [SelectItem(value_expr, alias="__v")]
    lift_stmt = Select(
        items=lift_items, sources=[source], where=stmt.where
    )
    compiled = compile_continuous(catalog, lift_stmt)
    # atoms come from the compiled lift, so projections/renames inside
    # the basket expression are handled the same way re-eval handles them
    key_atoms = list(compiled.output_atoms[: len(keys)])
    value_atom = compiled.output_atoms[len(keys)]
    atoms: List[AtomType] = []
    agg_index = 0
    for role, index in item_plan:
        if role == "key":
            atoms.append(key_atoms[index])
        else:
            agg_name = aggregates[agg_index]
            agg_index += 1
            atoms.append(
                AtomType.LNG
                if agg_name == "count_star"
                else _aggregate_atom(agg_name, value_atom)
            )
    plan = CircuitContinuousPlan(
        "aggregate",
        [compiled],
        interpreter,
        output_basket,
        names + [WEIGHT_COLUMN],
        atoms + [AtomType.LNG],
    )
    plan.agg = IncrementalGroupAggregate(aggregates, grouped=bool(keys))
    plan.item_plan = item_plan
    plan.n_group_keys = len(keys)
    return plan


def _side_of(
    expr: Expr, aliases: Tuple[str, str]
) -> Optional[int]:
    """Which join side (0/1) an expression's columns belong to.

    ``None`` for constants; raises :class:`IncrementalUnsupported` on a
    cross-side or unqualified reference.
    """
    sides = set()

    def visit(e: Expr) -> None:
        if isinstance(e, ColumnRef):
            if e.table is None:
                raise IncrementalUnsupported(
                    f"join circuits need qualified column references "
                    f"(got bare {e.name!r})"
                )
            table = e.table.lower()
            if table not in aliases:
                raise IncrementalUnsupported(
                    f"unknown alias {e.table!r} in join predicate"
                )
            sides.add(aliases.index(table))
            return
        for attr in ("operand", "left", "right", "low", "high", "pattern"):
            child = getattr(e, attr, None)
            if isinstance(child, Expr):
                visit(child)
        for child in getattr(e, "args", []) or []:
            visit(child)
        for child in getattr(e, "items", []) or []:
            if isinstance(child, Expr):
                visit(child)

    visit(expr)
    if len(sides) > 1:
        raise IncrementalUnsupported(
            "predicates spanning both join sides (beyond the equi key) "
            "are not supported"
        )
    return sides.pop() if sides else None


def _try_join_shape(
    catalog, stmt, interpreter, output_basket
) -> Optional[CircuitContinuousPlan]:
    """Compile the two-basket equi-join shape; None when WHERE has no
    equi conjunct (the caller then treats the query as linear)."""
    if stmt.order_by or stmt.limit is not None or stmt.distinct:
        raise IncrementalUnsupported(
            "ORDER BY / LIMIT / DISTINCT do not compose with delta join "
            "output"
        )
    left_src, right_src = stmt.sources
    aliases = (left_src.binding_name, right_src.binding_name)
    conjuncts = _split_and(stmt.where)
    equi: Optional[Tuple[str, str]] = None  # (left col, right col)
    residual: List[Expr] = []
    for conj in conjuncts:
        if (
            equi is None
            and isinstance(conj, BinaryOp)
            and conj.op == "=="
            and isinstance(conj.left, ColumnRef)
            and isinstance(conj.right, ColumnRef)
            and conj.left.table is not None
            and conj.right.table is not None
        ):
            tables = (conj.left.table.lower(), conj.right.table.lower())
            if tables == aliases:
                equi = (conj.left.name.lower(), conj.right.name.lower())
                continue
            if tables == (aliases[1], aliases[0]):
                equi = (conj.right.name.lower(), conj.left.name.lower())
                continue
        residual.append(conj)
    if equi is None:
        return None
    side_filters: List[List[Expr]] = [[], []]
    for conj in residual:
        side = _side_of(conj, aliases)
        if side is None:
            raise IncrementalUnsupported(
                "constant predicates in join WHERE are not supported"
            )
        side_filters[side].append(conj)
    # output items: qualified column refs, mapped onto the joined row
    side_columns: List[List[str]] = [[equi[0]], [equi[1]]]
    out_specs: List[Tuple[int, str]] = []  # (side, column)
    names: List[str] = []
    for item in stmt.items:
        expr = item.expr
        if isinstance(expr, Star):
            raise IncrementalUnsupported(
                "join circuits need an explicit select list (no *)"
            )
        if not isinstance(expr, ColumnRef) or expr.table is None:
            raise IncrementalUnsupported(
                "join select items must be qualified column references"
            )
        table = expr.table.lower()
        if table not in aliases:
            raise IncrementalUnsupported(
                f"unknown alias {expr.table!r} in select list"
            )
        side = aliases.index(table)
        column = expr.name.lower()
        if column not in side_columns[side]:
            side_columns[side].append(column)
        out_specs.append((side, column))
        names.append((item.alias or column).lower())
    # per-side lift stages: (key, *extras) with side-local filters
    stages: List[CompiledQuery] = []
    for side, src in enumerate((left_src, right_src)):
        items = [
            SelectItem(ColumnRef(c, aliases[side]), alias=f"__c{i}")
            for i, c in enumerate(side_columns[side])
        ]
        lift_stmt = Select(
            items=items,
            sources=[src],
            where=_join_and(side_filters[side]),
        )
        stages.append(compile_continuous(catalog, lift_stmt))
    atoms = [
        stages[side].output_atoms[side_columns[side].index(column)]
        for side, column in out_specs
    ]
    # joined row layout: (*left_row, *right_row_without_key)
    left_width = len(side_columns[0])

    def position(side: int, column: str) -> int:
        index = side_columns[side].index(column)
        if side == 0:
            return index
        if index == 0:  # the key: identical on both sides, take left's
            return 0
        return left_width + index - 1

    plan = CircuitContinuousPlan(
        "join",
        stages,
        interpreter,
        output_basket,
        names + [WEIGHT_COLUMN],
        atoms + [AtomType.LNG],
    )
    plan.join = IncrementalJoin(left_key=0, right_key=0)
    plan.out_positions = [position(s, c) for s, c in out_specs]
    return plan
