"""Delta-stream (Z-set) incremental execution (DBSP model).

This package implements the incremental execution mode selected with
``DataCell(execution="incremental")``: streams are modelled as sequences
of *Z-sets* (weighted multisets where a weight of ``+1`` is an insert and
``-1`` a retraction), operators are *lifted* to work on deltas, and
stateful operators (aggregates, joins, windows) maintain integrated
state so the cost of each firing is ``O(|delta|)`` instead of
``O(|state|)``.

Layers:

* :mod:`~repro.incremental.zset` — the Z-set value type and its algebra;
* :mod:`~repro.incremental.circuit` — stream operators (lift, delay
  z⁻¹, integrate, differentiate, incremental group-aggregate,
  incremental equi-join) and the retraction-capable aggregate state;
* :mod:`~repro.incremental.windows` — window aggregates and the
  sliding-window join as delta producers (retraction on expiry);
* :mod:`~repro.incremental.compile` — the SQL shape detector that turns
  a continuous query into an incremental circuit, with per-query
  fallback to the re-evaluation (MAL) path.

Every operator here has a re-evaluation twin; ``repro.simtest.incremental``
is the differential harness proving the two produce identical output.
See ``docs/incremental.md``.
"""

from .circuit import (
    Delay,
    Differentiate,
    IncrementalGroupAggregate,
    IncrementalJoin,
    Integrate,
    Lift,
    RetractableAggState,
)
from .compile import (
    CircuitContinuousPlan,
    IncrementalUnsupported,
    compile_incremental,
)
from .windows import DeltaWindowAggregatePlan, DeltaWindowJoinPlan
from .zset import WEIGHT_COLUMN, ZSet, integrate_weighted_rows

__all__ = [
    "ZSet",
    "WEIGHT_COLUMN",
    "integrate_weighted_rows",
    "Lift",
    "Delay",
    "Integrate",
    "Differentiate",
    "IncrementalGroupAggregate",
    "IncrementalJoin",
    "RetractableAggState",
    "DeltaWindowAggregatePlan",
    "DeltaWindowJoinPlan",
    "CircuitContinuousPlan",
    "IncrementalUnsupported",
    "compile_incremental",
]
