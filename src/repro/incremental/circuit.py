"""DBSP stream operators over Z-set deltas.

A *circuit* is a composition of operators mapping streams of Z-sets to
streams of Z-sets, driven one *step* (factory firing) at a time.  The
primitives follow the DBSP calculus:

``Lift``
    apply a per-row function pointwise — weights pass through unchanged.
    Linear, hence already incremental: ``lift(f)`` of a delta stream *is*
    the delta of ``lift(f)`` of the integrated stream.

``Delay`` (z⁻¹)
    emit the previous step's input; the unit of all feedback loops.

``Integrate`` (I)
    running sum of the deltas — reconstructs the full relation.

``Differentiate`` (D)
    current minus previous integrated value; ``D ∘ I = id`` (the property
    suite pins this as ``differentiate(integrate(s)) == s``).

``IncrementalGroupAggregate``
    the incrementalized GROUP-BY aggregate: per-group
    :class:`RetractableAggState` is updated by the delta only, and the
    output delta retracts the group's previous result row and inserts the
    new one.  Cost per step is ``O(groups touched by the delta)``.

``IncrementalJoin``
    the bilinear equi-join incrementalized as
    ``d(L ⋈ R) = dL ⋈ z(I(R)) + I(L) ⋈ dR`` where ``I(L)`` already
    contains ``dL`` — the three classic delta-join terms folded into two
    probes against keyed integrated state.

MIN/MAX need real retraction support (removing the current extremum must
reveal the runner-up), which plain fold-only summaries cannot do;
:class:`RetractableAggState` keeps an exact value→weight counter plus
lazy-deletion heaps so retraction stays amortized O(log n).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..errors import DataCellError
from .zset import Row, ZSet

__all__ = [
    "Lift",
    "Delay",
    "Integrate",
    "Differentiate",
    "IncrementalGroupAggregate",
    "IncrementalJoin",
    "RetractableAggState",
]


class Operator:
    """A unary stream operator: one Z-set in, one Z-set out, per step."""

    def step(self, delta: ZSet) -> ZSet:  # pragma: no cover - interface
        raise NotImplementedError

    # state capture for durability (plans pickle operator __dict__s)
    def state(self) -> Dict[str, Any]:
        return self.__dict__

    def nbytes(self) -> int:
        from ..obs.resources import estimate_nbytes

        return estimate_nbytes(self.__dict__)


class Lift(Operator):
    """Pointwise application of a row function; weights pass through.

    ``fn(row) -> row | None | list[row]``: ``None`` filters the row out,
    a list fans it out (projection with duplication).  Because the weight
    is untouched, lifting commutes with integration — the linearity law
    the property tests assert.
    """

    def __init__(self, fn: Callable[[Row], Any]) -> None:
        self.fn = fn

    def step(self, delta: ZSet) -> ZSet:
        out = ZSet()
        for row, weight in delta.items():
            mapped = self.fn(row)
            if mapped is None:
                continue
            if isinstance(mapped, list):
                for m in mapped:
                    out.add(tuple(m), weight)
            else:
                out.add(tuple(mapped), weight)
        return out


class Delay(Operator):
    """z⁻¹: emits the previous step's input (initially the empty Z-set)."""

    def __init__(self) -> None:
        self.held = ZSet()

    def step(self, delta: ZSet) -> ZSet:
        out = self.held
        self.held = delta.copy()
        return out


class Integrate(Operator):
    """I: running sum of all deltas seen so far."""

    def __init__(self) -> None:
        self.current = ZSet()

    def step(self, delta: ZSet) -> ZSet:
        self.current.merge(delta)
        return self.current.copy()


class Differentiate(Operator):
    """D: current value minus the previous one (D ∘ I = identity)."""

    def __init__(self) -> None:
        self.previous = ZSet()

    def step(self, value: ZSet) -> ZSet:
        out = value - self.previous
        self.previous = value.copy()
        return out


class RetractableAggState:
    """A weighted aggregate summary supporting retraction.

    ``star`` counts tuples (COUNT(*)), ``count``/``total`` cover non-NULL
    values.  When ``track_minmax`` is set, an exact value→weight counter
    plus two lazy-deletion heaps answer MIN/MAX after arbitrary retraction
    sequences; without it MIN/MAX queries raise, keeping COUNT/SUM-only
    pipelines free of the counter overhead.
    """

    __slots__ = ("star", "count", "total", "track_minmax", "value_weights",
                 "min_heap", "max_heap")

    def __init__(self, track_minmax: bool = False) -> None:
        self.star = 0
        self.count = 0
        self.total = 0.0
        self.track_minmax = track_minmax
        self.value_weights: Dict[float, int] = {}
        self.min_heap: List[float] = []
        self.max_heap: List[float] = []  # negated values

    # ------------------------------------------------------------------
    def add(self, value: Optional[float], weight: int) -> None:
        """Fold ``weight`` copies of ``value`` (NULL allowed) in."""
        self.star += weight
        if value is None:
            return
        value = float(value)
        self.count += weight
        self.total += value * weight
        if not self.track_minmax:
            return
        prev = self.value_weights.get(value, 0)
        new = prev + weight
        if new < 0:
            raise DataCellError(
                f"retraction below zero for value {value} "
                f"(weight {prev} + {weight})"
            )
        if new == 0:
            self.value_weights.pop(value, None)
        else:
            self.value_weights[value] = new
            if prev == 0:
                heapq.heappush(self.min_heap, value)
                heapq.heappush(self.max_heap, -value)

    def add_array(self, values, nils, weight: int = 1) -> None:
        """Fold an array of ``weight``-weighted values (vectorized).

        ``values`` is a float array, ``nils`` the aligned NULL mask.  The
        count/sum/avg fields update in O(1) numpy reductions; min/max
        tracking (when enabled) falls back to the per-value path since
        the counter needs every distinct value.
        """
        n = int(len(values))
        if n == 0:
            return
        if self.track_minmax:
            for i in range(n):
                self.add(None if nils[i] else float(values[i]), weight)
            return
        valid = values[~nils]
        self.star += n * weight
        self.count += int(len(valid)) * weight
        if len(valid):
            self.total += float(valid.sum()) * weight

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return self.star == 0 and self.count == 0 and not self.value_weights

    def _minimum(self) -> Optional[float]:
        while self.min_heap:
            value = self.min_heap[0]
            if self.value_weights.get(value, 0) > 0:
                return value
            heapq.heappop(self.min_heap)  # lazily drop retracted entry
        return None

    def _maximum(self) -> Optional[float]:
        while self.max_heap:
            value = -self.max_heap[0]
            if self.value_weights.get(value, 0) > 0:
                return value
            heapq.heappop(self.max_heap)
        return None

    def result(self, name: str) -> Any:
        """Answer aggregate ``name`` (SQL NULL rules, as AggregateState)."""
        if name == "count_star":
            return self.star
        if name == "count":
            return self.count
        if self.count == 0:
            return None
        if name == "sum":
            return self.total
        if name == "avg":
            return self.total / self.count
        if name in ("min", "max"):
            if not self.track_minmax:
                raise DataCellError(
                    "aggregate state built without min/max tracking"
                )
            return self._minimum() if name == "min" else self._maximum()
        raise DataCellError(f"unknown aggregate {name!r}")

    # ------------------------------------------------------------------
    # durability: heaps may hold stale (fully retracted) values; compact
    # on export so the blob is a pure function of the live multiset and
    # recovered state digests stay byte-identical across crash points.
    def export_state(self) -> Dict[str, Any]:
        return {
            "star": self.star,
            "count": self.count,
            "total": self.total,
            "track_minmax": self.track_minmax,
            "value_weights": dict(sorted(self.value_weights.items())),
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RetractableAggState":
        out = cls(track_minmax=state["track_minmax"])
        out.star = state["star"]
        out.count = state["count"]
        out.total = state["total"]
        out.value_weights = dict(state["value_weights"])
        out.min_heap = list(out.value_weights)
        heapq.heapify(out.min_heap)
        out.max_heap = [-v for v in out.value_weights]
        heapq.heapify(out.max_heap)
        return out

    def nbytes(self) -> int:
        per_entry = 96
        return 200 + per_entry * len(self.value_weights) + 8 * (
            len(self.min_heap) + len(self.max_heap)
        )


class IncrementalGroupAggregate(Operator):
    """Incremental GROUP-BY aggregate over a keyed delta stream.

    Input rows are ``(*group_keys, value)`` (value may be ``None`` for
    NULL); the key is empty for the scalar (ungrouped) case — the
    caller's lift stage shapes rows accordingly.  The output delta
    retracts the group's previous result row (weight −1) and inserts the
    new one (+1); a group whose state empties only retracts.  Groups are
    visited in the order the delta first touches them, retraction before
    insertion, so output row order is deterministic.

    Output rows: ``(*group_key, *aggregate_values)``.
    """

    def __init__(
        self,
        aggregates: List[str],
        grouped: bool = True,
    ) -> None:
        bad = [a for a in aggregates if a not in
               ("sum", "count", "count_star", "avg", "min", "max")]
        if bad:
            raise DataCellError(f"unknown aggregates: {bad}")
        if not aggregates:
            raise DataCellError("need at least one aggregate")
        self.aggregates = list(aggregates)
        self.grouped = grouped
        self.track_minmax = bool({"min", "max"} & set(aggregates))
        self.groups: Dict[Hashable, RetractableAggState] = {}

    def _current_row(self, key: Hashable) -> Optional[Row]:
        state = self.groups.get(key)
        if state is None or state.star == 0:
            return None
        prefix: Tuple[Any, ...] = key if self.grouped else ()
        values = []
        for name in self.aggregates:
            value = state.result(name)
            if name in ("count", "count_star"):
                values.append(int(value))
            else:
                values.append(None if value is None else float(value))
        return (*prefix, *values)

    def step(self, delta: ZSet) -> ZSet:
        # snapshot the pre-delta result row of every touched group, in
        # first-touch order, then fold the whole delta before emitting
        touched: List[Hashable] = []
        before: Dict[Hashable, Optional[Row]] = {}
        for row, weight in delta.items():
            if self.grouped:
                key, value = row[:-1], row[-1]
            else:
                key, value = (), row[-1]
            if key not in before:
                before[key] = self._current_row(key)
                touched.append(key)
            state = self.groups.get(key)
            if state is None:
                state = RetractableAggState(track_minmax=self.track_minmax)
                self.groups[key] = state
            state.add(value, weight)
        out = ZSet()
        for key in touched:
            after = self._current_row(key)
            if before[key] == after:
                continue
            if before[key] is not None:
                out.add(before[key], -1)
            if after is not None:
                out.add(after, +1)
            state = self.groups.get(key)
            if state is not None and state.is_empty():
                del self.groups[key]
        return out

    # -- durability -----------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        return {
            "aggregates": self.aggregates,
            "grouped": self.grouped,
            "groups": {
                key: state.export_state()
                for key, state in sorted(
                    self.groups.items(), key=lambda kv: repr(kv[0])
                )
            },
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        self.aggregates = list(state["aggregates"])
        self.grouped = state["grouped"]
        self.track_minmax = bool({"min", "max"} & set(self.aggregates))
        self.groups = {
            key: RetractableAggState.from_state(blob)
            for key, blob in state["groups"].items()
        }

    def nbytes(self) -> int:
        return 200 + sum(
            64 + state.nbytes() for state in self.groups.values()
        )


class IncrementalJoin(Operator):
    """Incremental equi-join: delta-probe against integrated state.

    Input rows carry their join key at ``key_index``; output rows are
    ``(*left_row, *right_row_without_key)`` — the key appears once, from
    the left side, matching the re-eval join's projection.

    Per step: ``d(L ⋈ R) = dL ⋈ I_old(R) + I_new(L) ⋈ dR`` where
    ``I_new(L)`` already includes ``dL``, so the ``dL ⋈ dR`` cross term
    is counted exactly once.  Output weights multiply (bilinearity).
    """

    def __init__(self, left_key: int, right_key: int) -> None:
        self.left_key = left_key
        self.right_key = right_key
        # key -> ZSet of rows with that key (integrated state per side)
        self.left_state: Dict[Hashable, ZSet] = {}
        self.right_state: Dict[Hashable, ZSet] = {}

    def _fold(
        self, state: Dict[Hashable, ZSet], key_index: int, delta: ZSet
    ) -> None:
        for row, weight in delta.items():
            key = row[key_index]
            bucket = state.get(key)
            if bucket is None:
                bucket = state[key] = ZSet()
            bucket.add(row, weight)
            if not bucket:
                del state[key]

    def _pair(self, left_row: Row, right_row: Row) -> Row:
        right = (
            right_row[: self.right_key] + right_row[self.right_key + 1 :]
        )
        return (*left_row, *right)

    def step_both(self, dleft: ZSet, dright: ZSet) -> ZSet:
        """Advance one step with deltas for both inputs."""
        out = ZSet()
        # dL ⋈ I_old(R): probe the right state before folding dR in
        for lrow, lweight in dleft.items():
            key = lrow[self.left_key]
            if key is None:
                continue
            bucket = self.right_state.get(key)
            if bucket:
                for rrow, rweight in bucket.items():
                    out.add(self._pair(lrow, rrow), lweight * rweight)
        self._fold(self.left_state, self.left_key, dleft)
        # I_new(L) ⋈ dR: left state now includes dL → dL⋈dR counted here
        for rrow, rweight in dright.items():
            key = rrow[self.right_key]
            if key is None:
                continue
            bucket = self.left_state.get(key)
            if bucket:
                for lrow, lweight in bucket.items():
                    out.add(self._pair(lrow, rrow), lweight * rweight)
        self._fold(self.right_state, self.right_key, dright)
        return out

    # -- durability -----------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        def side(state: Dict[Hashable, ZSet]) -> Dict[Hashable, List]:
            return {
                key: sorted(bucket.items(), key=repr)
                for key, bucket in sorted(state.items(), key=lambda kv: repr(kv[0]))
            }

        return {
            "left_key": self.left_key,
            "right_key": self.right_key,
            "left_state": side(self.left_state),
            "right_state": side(self.right_state),
        }

    def import_state(self, state: Dict[str, Any]) -> None:
        self.left_key = state["left_key"]
        self.right_key = state["right_key"]

        def side(blob: Dict[Hashable, List]) -> Dict[Hashable, ZSet]:
            out: Dict[Hashable, ZSet] = {}
            for key, entries in blob.items():
                zs = ZSet()
                for row, weight in entries:
                    zs.add(tuple(row), weight)
                out[key] = zs
            return out

        self.left_state = side(state["left_state"])
        self.right_state = side(state["right_state"])

    def nbytes(self) -> int:
        return 200 + sum(
            64 + bucket.nbytes()
            for state in (self.left_state, self.right_state)
            for bucket in state.values()
        )
