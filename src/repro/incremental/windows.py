"""Window operators as delta producers (retraction on expiry).

The re-evaluation route (:class:`~repro.core.windows.ReEvalWindowAggregatePlan`)
rescans every window extent from scratch — O(|window|) per slide.  The
plans here keep the *current* window's aggregate as retractable state:
when the window slides, the tuples leaving it are **retracted** (folded
in with weight −1) and the tuples entering it inserted (+1), so the cost
per slide is O(|delta| + |slide|) regardless of window size.

Output rows are identical to the re-eval route — ``(window_id, [group],
*aggregates)`` at window close — because the Z-set machinery is internal:
windows are where deltas are *consumed*, turning a change stream back
into per-window answers.  That is what lets the differential oracle
compare this route against re-eval row for row.

Window geometry matches :class:`~repro.core.windows.WindowSpec` exactly:
count window ``k`` covers positions ``[k·slide, k·slide+size)``; time
window ``k`` covers the same half-open interval in seconds, complete
when the watermark passes its end.

Two internal representations:

* **vectorized** (ungrouped COUNT-mode without MIN/MAX): raw values are
  buffered as numpy chunks and folded/retracted by slice sums — both
  directions are O(chunk) numpy reductions;
* **scalar** (grouped, TIME-mode, or MIN/MAX): a time/arrival-ordered
  ``live`` list of ``(key, value, group)`` triples feeds per-group
  :class:`~repro.incremental.circuit.RetractableAggState`, whose
  value-counter + lazy heaps make MIN/MAX retraction exact.

:class:`DeltaWindowJoinPlan` runs the sliding equi-join through
:class:`~repro.incremental.circuit.IncrementalJoin`: new tuples are +1
deltas probed against the other side's integrated Z-set, expiry is a −1
fold into that state, and only positive pairs within the time window are
emitted — the same append-only output as
:class:`~repro.core.windows.SlidingWindowJoinPlan`.
"""

from __future__ import annotations

import bisect
import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..errors import DataCellError
from ..kernel.bat import bat_from_values
from ..kernel.mal import ResultSet
from ..kernel.types import AtomType
from .circuit import IncrementalJoin, RetractableAggState
from .zset import ZSet

from ..core.basket import BasketSnapshot, TIME_COLUMN
from ..core.factory import ContinuousPlan, PlanOutput
from ..core.windows import WindowMode, _WindowAggregateBase

__all__ = ["DeltaWindowAggregatePlan", "DeltaWindowJoinPlan"]


class DeltaWindowAggregatePlan(_WindowAggregateBase):
    """Route (c): Z-set delta evaluation with retraction on expiry.

    Counters: ``values_processed`` counts fold operations — each tuple is
    folded in once (+1) and retracted once (−1) over its lifetime, so the
    total grows as ``2·|stream|``, independent of ``size/slide``.
    ``retractions_done`` counts the −1 folds alone.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.retractions_done = 0
        self._position = 0  # tuples ingested (COUNT-mode stream position)
        self._watermark: Optional[float] = None
        # scalar representation ----------------------------------------
        track = bool({"min", "max"} & set(self.aggregates))
        self._track_minmax = track
        self._vectorized = (
            self.spec.mode is WindowMode.COUNT
            and not self.group_column
            and not track
        )
        # per-group retractable state of the *current* window
        self._state: Dict[Optional[str], RetractableAggState] = {}
        # live: tuples currently folded into state, ordered by stream
        # position (COUNT) / timestamp (TIME):
        # (key, arrival-seq, value-or-None, group).  The arrival seq
        # reproduces re-eval's group emission order (first occurrence in
        # arrival order) even when timestamps arrive out of order.
        self._live: List[
            Tuple[float, int, Optional[float], Optional[str]]
        ] = []
        # pending: tuples at/after the current window's end
        self._pending: List[
            Tuple[float, int, Optional[float], Optional[str]]
        ] = []
        self._arrivals = 0
        # vectorized representation ------------------------------------
        self._vals: List[np.ndarray] = []
        self._nils: List[np.ndarray] = []
        self._offset = 0  # stream position of the buffer head
        self._folded_until = 0  # stream position folded into state
        if self._vectorized:
            self._state[None] = RetractableAggState()

    # ------------------------------------------------------------------
    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots[self.input_basket]
        if snap.count:
            values, nils, times, groups = self._extract(snap)
            if len(times):
                wm = float(times.max())
                if self._watermark is None or wm > self._watermark:
                    self._watermark = wm
            if self._vectorized:
                self._ingest_vectorized(values, nils)
            else:
                self._ingest_scalar(values, nils, times, groups)
        rows: List[Tuple[Any, ...]] = []
        while True:
            batch = self._try_emit()
            if batch is None:
                break
            rows.extend(batch)
        return self._result_from_rows(rows)

    # -- vectorized path (ungrouped COUNT, no MIN/MAX) ------------------
    def _buffered_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        values = (
            np.concatenate(self._vals)
            if len(self._vals) > 1
            else (self._vals[0] if self._vals else np.empty(0))
        )
        nils = (
            np.concatenate(self._nils)
            if len(self._nils) > 1
            else (self._nils[0] if self._nils else np.empty(0, dtype=bool))
        )
        if len(self._vals) > 1:
            self._vals = [values]
            self._nils = [nils]
        return values, nils

    def _ingest_vectorized(self, values: np.ndarray, nils: np.ndarray) -> None:
        self._vals.append(values)
        self._nils.append(nils)
        self._position += len(values)
        self._fold_eligible()

    def _fold_eligible(self) -> None:
        """Fold buffered positions [folded_until, min(end(k), position))."""
        end = int(self.spec.window_end(self.next_window))
        upto = min(end, self._position)
        if upto <= self._folded_until:
            return
        values, nils = self._buffered_arrays()
        lo = self._folded_until - self._offset
        hi = upto - self._offset
        self._state[None].add_array(values[lo:hi], nils[lo:hi], +1)
        self.values_processed += hi - lo
        self._folded_until = upto

    def _retract_vectorized(self) -> None:
        """Retract positions [start(k), start(k+1)) after emitting k.

        Called from ``_advance`` with ``next_window`` already bumped to
        k+1, so the slice leaving the window is [start(k), start(k+1)) =
        [start(next-1), start(next)).
        """
        start = int(self.spec.window_start(self.next_window - 1))
        nxt = int(self.spec.window_start(self.next_window))
        values, nils = self._buffered_arrays()
        lo = start - self._offset
        hi = nxt - self._offset
        self._state[None].add_array(values[lo:hi], nils[lo:hi], -1)
        self.values_processed += hi - lo
        self.retractions_done += hi - lo
        # amortized buffer trim below the next window's start
        if hi >= 1024 or hi >= len(values):
            self._vals = [values[hi:]]
            self._nils = [nils[hi:]]
            self._offset = nxt

    # -- scalar path ----------------------------------------------------
    def _ingest_scalar(self, values, nils, times, groups) -> None:
        count_mode = self.spec.mode is WindowMode.COUNT
        start = self.spec.window_start(self.next_window)
        end = self.spec.window_end(self.next_window)
        for i in range(len(values)):
            value = None if nils[i] else float(values[i])
            group = groups[i] if groups is not None else None
            arrival = self._arrivals
            self._arrivals += 1
            if count_mode:
                key: float = float(self._position)
                self._position += 1
            else:
                key = float(times[i])
                if key < start:
                    # late beyond the open window: no current-or-future
                    # window contains it (matches re-eval's mask+expire)
                    continue
            if key < end:
                self._fold(key, value, group, +1, insert_live=True,
                           arrival=arrival)
            else:
                self._pending.append((key, arrival, value, group))

    def _fold(
        self,
        key: float,
        value: Optional[float],
        group: Optional[str],
        weight: int,
        insert_live: bool = False,
        arrival: int = 0,
    ) -> None:
        state = self._state.get(group)
        if state is None:
            state = self._state[group] = RetractableAggState(
                track_minmax=self._track_minmax
            )
        state.add(value, weight)
        self.values_processed += 1
        if weight < 0:
            self.retractions_done += 1
        if insert_live:
            item = (key, arrival, value, group)
            if not self._live or key >= self._live[-1][0]:
                self._live.append(item)
            else:
                bisect.insort(self._live, item, key=lambda t: t[0])

    # -- emission -------------------------------------------------------
    def _try_emit(self) -> Optional[List[Tuple[Any, ...]]]:
        k = self.next_window
        end = self.spec.window_end(k)
        if self.spec.mode is WindowMode.COUNT:
            if self._position < end:
                return None
            if self._vectorized:
                self._fold_eligible()
        else:
            if self._watermark is None or self._watermark < end:
                return None
        rows = self._emit_rows(k)
        self.next_window += 1
        self._advance()
        self.windows_emitted += 1
        return rows

    def _emit_rows(self, k: int) -> List[Tuple[Any, ...]]:
        if not self.group_column:
            state = self._state.get(None)
            if state is None:
                state = RetractableAggState(track_minmax=self._track_minmax)
            return [self._retractable_row(k, None, state)]
        # grouped: re-eval scans the buffer in *arrival* order, so its
        # group order is first occurrence by arrival — reproduce it by
        # ordering groups on their minimal live arrival seq
        first_arrival: Dict[Optional[str], int] = {}
        for _, arrival, _, group in self._live:
            if group not in first_arrival or arrival < first_arrival[group]:
                first_arrival[group] = arrival
        ordered = sorted(first_arrival, key=first_arrival.get)
        return [
            self._retractable_row(k, group, self._state[group])
            for group in ordered
        ]

    def _retractable_row(
        self, k: int, group: Optional[str], state: RetractableAggState
    ) -> Tuple[Any, ...]:
        row: List[Any] = [k]
        if self.group_column:
            row.append(group)
        for name in self.aggregates:
            value = state.result(name)
            if name in ("count", "count_star"):
                row.append(int(value))
            else:
                row.append(None if value is None else float(value))
        return tuple(row)

    def _advance(self) -> None:
        """Slide to the next window: retract leavers, absorb pending."""
        if self._vectorized:
            self._retract_vectorized()
            self._fold_eligible()
            return
        k = self.next_window
        start = self.spec.window_start(k)
        end = self.spec.window_end(k)
        # retract the live prefix that left the window
        drop = 0
        for key, _, value, group in self._live:
            if key >= start:
                break
            self._fold(key, value, group, -1)
            drop += 1
        if drop:
            del self._live[:drop]
        # drop groups whose state emptied so they don't re-emit as zeros
        for group in [g for g, s in self._state.items() if s.is_empty()]:
            del self._state[group]
        # absorb pending tuples now inside the window (sorted by key so
        # live stays ordered; all pending keys are >= old end >= live max)
        if self._pending:
            absorbed = [p for p in self._pending if p[0] < end]
            if absorbed:
                absorbed.sort(key=lambda t: t[0])
                self._pending = [p for p in self._pending if p[0] >= end]
                for key, arrival, value, group in absorbed:
                    self._fold(key, value, group, +1, insert_live=True,
                               arrival=arrival)

    def tuples_needed(self) -> Optional[int]:
        if self.spec.mode is not WindowMode.COUNT:
            return None
        end = int(self.spec.window_end(self.next_window))
        return max(0, end - self._position)

    def describe(self) -> str:
        return f"delta-window({self.aggregates}, {self.spec})"


class DeltaWindowJoinPlan(ContinuousPlan):
    """Sliding equi-join as an incremental Z-set circuit.

    Same interface and output as
    :class:`~repro.core.windows.SlidingWindowJoinPlan` — rows
    ``(key, left_time, right_time)`` with ``|lt − rt| ≤ window``, each
    matching pair emitted exactly once — but the matching happens in
    :class:`~repro.incremental.circuit.IncrementalJoin`: arrivals are +1
    deltas, expiry is a −1 fold into the integrated per-key state (no
    output retraction: emitted pairs are final, append-only).
    """

    def __init__(
        self,
        left_basket: str,
        right_basket: str,
        left_key: str,
        right_key: str,
        window_seconds: float,
        output_basket: str,
    ):
        if window_seconds <= 0:
            raise DataCellError("join window must be positive")
        self.left_basket = left_basket.lower()
        self.right_basket = right_basket.lower()
        self.left_key = left_key.lower()
        self.right_key = right_key.lower()
        self.window = float(window_seconds)
        self.output_basket = output_basket.lower()
        # join rows are (key, stamp); key at index 0 on both sides
        self._join = IncrementalJoin(left_key=0, right_key=0)
        # arrival-ordered expiry queues (dc_time is monotone per basket)
        self._left_ages: Deque[Tuple[float, Tuple[Any, float]]] = deque()
        self._right_ages: Deque[Tuple[float, Tuple[Any, float]]] = deque()
        self._watermark = -math.inf
        self.pairs_emitted = 0
        self.retractions_done = 0

    # -- durability (same contract as the core window plans) ------------
    def export_state(self) -> bytes:
        import pickle

        state = dict(self.__dict__)
        state["_join"] = self._join.export_state()
        return pickle.dumps(state, protocol=4)

    def import_state(self, blob: Optional[bytes]) -> None:
        if blob is None:
            raise DataCellError(
                "delta window join expected saved state in the "
                "checkpoint but found none"
            )
        import pickle

        state = pickle.loads(blob)
        join_state = state.pop("_join")
        self.__dict__.update(state)
        self._join = IncrementalJoin(left_key=0, right_key=0)
        self._join.import_state(join_state)

    def nbytes(self) -> int:
        from ..obs.resources import estimate_nbytes

        return self._join.nbytes() + estimate_nbytes(
            {"l": self._left_ages, "r": self._right_ages}
        )

    # ------------------------------------------------------------------
    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        dleft = self._pull(
            snapshots.get(self.left_basket), self.left_key, self._left_ages
        )
        dright = self._pull(
            snapshots.get(self.right_basket), self.right_key,
            self._right_ages,
        )
        pairs = self._join.step_both(dleft, dright)
        # expire after probing, matching SlidingWindowJoinPlan: a tuple
        # that just fell outside the horizon was still probe-able this
        # firing (the |lt−rt| predicate is what excludes stale pairs)
        self._expire()
        rows: List[Tuple[Any, float, float]] = []
        for row, weight in pairs.items():
            key, lstamp, rstamp = row
            if abs(lstamp - rstamp) <= self.window:
                rows.extend([(key, lstamp, rstamp)] * weight)
        self.pairs_emitted += len(rows)
        if not rows:
            return PlanOutput()
        keys, lts, rts = zip(*rows)
        result = ResultSet(
            ["key", "left_time", "right_time"],
            [
                bat_from_values(self._key_atom, list(keys)),
                bat_from_values(AtomType.TIMESTAMP, list(lts)),
                bat_from_values(AtomType.TIMESTAMP, list(rts)),
            ],
        )
        return PlanOutput(results={self.output_basket: result})

    _key_atom = AtomType.LNG

    def _pull(self, snap, key_col: str, ages) -> ZSet:
        delta = ZSet()
        if snap is None or snap.count == 0:
            return delta
        keys = snap.column(key_col).python_list()
        times = snap.column(TIME_COLUMN).tail.astype(np.float64)
        if len(times):
            self._watermark = max(self._watermark, float(times.max()))
        if snap.column(key_col).atom is AtomType.STR:
            self._key_atom = AtomType.STR
        elif snap.column(key_col).atom is AtomType.DBL:
            self._key_atom = AtomType.DBL
        for key, stamp in zip(keys, times):
            if key is None:
                continue
            row = (key, float(stamp))
            delta.add(row, +1)
            ages.append((float(stamp), row))
        return delta

    def _expire(self) -> None:
        """Retract tuples older than the window from the join state.

        Folds −1 deltas straight into the integrated state (not through
        ``step_both``, which would emit retraction pairs for output that
        is by contract append-only).
        """
        horizon = self._watermark - self.window
        for ages, state, key_index in (
            (self._left_ages, self._join.left_state, 0),
            (self._right_ages, self._join.right_state, 0),
        ):
            retract = ZSet()
            while ages and ages[0][0] < horizon:
                _, row = ages.popleft()
                retract.add(row, -1)
                self.retractions_done += 1
            if retract:
                self._join._fold(state, key_index, retract)

    def describe(self) -> str:
        return (
            f"delta-window-join({self.left_basket}.{self.left_key} = "
            f"{self.right_basket}.{self.right_key}, w={self.window}s)"
        )
