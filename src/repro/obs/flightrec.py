"""Flight recorder — stall detection and JSON post-mortems.

A stream engine's worst failure mode is silent: a factory wedges (a bug,
a lock, an exception swallowed by a thread) and baskets fill while the
dashboard still renders.  The flight recorder watches for exactly that
signature — **basket depth rising while scheduler firings stay flat**
over a configurable observation window — and, when it sees it, writes a
post-mortem any engineer can open without a debugger attached:

* basket depths, high-waters, and flow counters,
* factory states (activations, totals, per-input cursors),
* the last N scheduler trace events,
* the sampled causal spans (:mod:`repro.obs.spans`),
* every thread's current stack via :func:`sys._current_frames`.

The same dump fires on an unhandled transition exception (the scheduler's
``on_exception`` hook) and on demand via
:meth:`~repro.core.engine.DataCell.dump_flight_record`.

The recorder never drives the engine: :meth:`sample` is called either by
the optional watchdog thread (:meth:`start`) or explicitly from tests and
synchronous loops, so stall detection is deterministic when you need it
to be.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import traceback
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["FlightRecorder", "StallEvent"]


class StallEvent:
    """One detected stall: which baskets backed up, over what window."""

    def __init__(
        self,
        baskets: List[str],
        transitions: List[str],
        window_seconds: float,
        firings: int,
    ):
        self.baskets = baskets
        self.transitions = transitions
        self.window_seconds = window_seconds
        self.firings = firings
        # post-mortems are for humans: real wall time is the point here
        self.detected_at = time.time()  # dc-lint: disable=wall-clock

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baskets": self.baskets,
            "transitions": self.transitions,
            "window_seconds": self.window_seconds,
            "firings_during_window": self.firings,
            "detected_at": self.detected_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StallEvent(baskets={self.baskets}, "
            f"transitions={self.transitions})"
        )


class FlightRecorder:
    """Watches a DataCell and writes JSON post-mortems.

    ``window`` is the number of consecutive samples a stall signature
    must persist before it is reported; with the watchdog running at
    ``interval`` seconds, the observation window is ``window * interval``
    seconds.  ``auto_dump_path`` makes stalls and transition exceptions
    write a dump without anyone asking.
    """

    def __init__(
        self,
        cell: Any,
        window: int = 5,
        trace_events: int = 64,
        span_limit: int = 256,
        auto_dump_path: Optional[str] = None,
    ):
        if window < 2:
            raise ValueError("stall window needs at least 2 samples")
        self.cell = cell
        self.window = window
        self.trace_events = trace_events
        self.span_limit = span_limit
        self.auto_dump_path = auto_dump_path
        self._lock = threading.Lock()
        # (monotonic time, total firings, {basket: depth})
        self._samples: Deque[Tuple[float, int, Dict[str, int]]] = deque(
            maxlen=window
        )
        self._watchdog: Optional[threading.Thread] = None
        self._watch_stop = threading.Event()
        self.stalls: List[StallEvent] = []
        self.exceptions: List[Dict[str, Any]] = []
        self.last_dump: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # sampling & stall detection
    # ------------------------------------------------------------------
    def sample(self) -> Optional[StallEvent]:
        """Record one observation; returns a stall event if the window
        now shows the stall signature (depth rising, firings flat)."""
        depths = {
            basket.name: basket.count
            for basket in self.cell.catalog.baskets()
            # sys.* baskets fill by design and drain only by retention:
            # their rising depth is not a stall signature
            if not getattr(basket, "is_system", False)
        }
        with self._lock:
            self._samples.append(
                (time.monotonic(), self.cell.scheduler.total_firings, depths)
            )
            stall = self._evaluate_locked()
        if stall is not None:
            self.stalls.append(stall)
            self.cell.trace.record(
                "stall",
                ",".join(stall.baskets),
                transitions=",".join(stall.transitions),
            )
            if self.auto_dump_path:
                self.dump(self.auto_dump_path, reason="stall")
        return stall

    def _evaluate_locked(self) -> Optional[StallEvent]:
        if len(self._samples) < self.window:
            return None
        first_t, first_f, first_d = self._samples[0]
        last_t, last_f, last_d = self._samples[-1]
        if last_f != first_f:
            return None  # the scheduler is making progress
        stalled: List[str] = []
        for name, depth in last_d.items():
            start = first_d.get(name)
            if start is None or depth <= start:
                continue
            # require monotone non-decreasing depth across every sample:
            # a basket that drained mid-window is being consumed, just
            # slower than it fills — back-pressure, not a stall
            series = [d.get(name, 0) for _, _, d in self._samples]
            if all(b >= a for a, b in zip(series, series[1:])):
                stalled.append(name)
        if not stalled:
            return None
        # clear the window so one stall is reported once, not per sample
        self._samples.clear()
        return StallEvent(
            stalled,
            self._transitions_reading(stalled),
            last_t - first_t,
            last_f - first_f,
        )

    def _transitions_reading(self, baskets: List[str]) -> List[str]:
        """The factories/emitters whose inputs are the stalled baskets —
        the transitions that should have been draining them."""
        wanted = {b.lower() for b in baskets}
        out: List[str] = []
        for transition in self.cell.scheduler.transitions():
            reads: List[str] = []
            for binding in getattr(transition, "inputs", []):
                reads.append(binding.basket.name.lower())
            source = getattr(transition, "source", None)
            if source is not None:
                reads.append(source.name.lower())
            if wanted & set(reads):
                out.append(transition.name)
        return out

    # ------------------------------------------------------------------
    # watchdog thread
    # ------------------------------------------------------------------
    def start(self, interval: float = 0.5) -> None:
        """Start the watchdog thread sampling every ``interval`` seconds."""
        if self._watchdog is not None:
            return
        self._watch_stop.clear()
        self._watchdog = threading.Thread(
            target=self._watch, args=(interval,),
            name="datacell-flightrec", daemon=True,
        )
        self._watchdog.start()

    def stop(self) -> None:
        self._watch_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=5.0)
            self._watchdog = None

    @property
    def running(self) -> bool:
        return self._watchdog is not None and self._watchdog.is_alive()

    def _watch(self, interval: float) -> None:
        while not self._watch_stop.wait(interval):
            try:
                self.sample()
            except Exception:  # pragma: no cover - watchdog must survive
                pass

    # ------------------------------------------------------------------
    # exception capture (scheduler.on_exception hook)
    # ------------------------------------------------------------------
    def record_exception(self, transition: str, exc: BaseException) -> None:
        """Capture an unhandled transition exception (and auto-dump)."""
        entry = {
            "transition": transition,
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exception(
                type(exc), exc, exc.__traceback__
            ),
            "time": time.time(),  # dc-lint: disable=wall-clock
        }
        with self._lock:
            self.exceptions.append(entry)
            del self.exceptions[:-32]  # bound memory on crash loops
        if self.auto_dump_path:
            self.dump(self.auto_dump_path, reason="exception")

    # ------------------------------------------------------------------
    # the post-mortem itself
    # ------------------------------------------------------------------
    def snapshot(self, reason: str = "manual") -> Dict[str, Any]:
        """Build the post-mortem document (JSON-serializable)."""
        cell = self.cell
        baskets: Dict[str, Any] = {}
        for basket in cell.catalog.baskets():
            baskets[basket.name] = {
                "depth": basket.count,
                "high_water": basket.high_water,
                "inserted": basket.total_in,
                "consumed": basket.total_out,
                "shed": basket.total_shed,
                "capacity": basket.capacity,
                "min_count": basket.min_count,
                "readers": basket.readers(),
            }
        factories: Dict[str, Any] = {}
        transitions: Dict[str, Any] = {}
        for transition in cell.scheduler.transitions():
            transitions[transition.name] = {
                "kind": type(transition).__name__,
                "priority": transition.priority,
                "enabled": _safe_enabled(transition),
            }
            bindings = getattr(transition, "inputs", None)
            if bindings is None:
                continue
            factories[transition.name] = {
                "activations": transition.activations,
                "tuples_in": transition.total_in,
                "tuples_out": transition.total_out,
                "total_elapsed": transition.total_elapsed,
                "plan": transition.plan.describe(),
                "inputs": [
                    {
                        "basket": b.basket.name,
                        "mode": b.mode.value,
                        "last_seen_seq": b.last_seen_seq,
                        "min_tuples": b.min_tuples,
                    }
                    for b in bindings
                ],
                "outputs": [b.name for b in transition.outputs],
            }
        spans = getattr(cell, "spans", None)
        span_dump: Dict[str, Any] = {}
        if spans is not None:
            span_dump = {
                "batches_seen": spans.batches_seen,
                "sampled_batches": spans.sampled_batches,
                "finished": [
                    s.to_dict() for s in spans.spans()[-self.span_limit:]
                ],
                "open_roots": [s.to_dict() for s in spans.open_roots()],
            }
        with self._lock:
            history = [
                {"t": t, "firings": f, "depths": dict(d)}
                for t, f, d in self._samples
            ]
            stalls = [s.to_dict() for s in self.stalls]
            exceptions = list(self.exceptions)
        doc = {
            "reason": reason,
            "generated_at": time.time(),  # dc-lint: disable=wall-clock
            "scheduler": {
                "total_firings": cell.scheduler.total_firings,
                "total_iterations": cell.scheduler.total_iterations,
                "running": cell.scheduler.running,
            },
            "baskets": baskets,
            "factories": factories,
            "transitions": transitions,
            "stalls": stalls,
            "exceptions": exceptions,
            "sample_history": history,
            "trace_events": [
                {
                    "ts": e.ts,
                    "kind": e.kind,
                    "component": e.component,
                    "detail": dict(e.detail),
                }
                for e in cell.trace.events()[-self.trace_events:]
            ],
            "spans": span_dump,
            "sys_streams": self._sys_tails(),
            "resources": self._resource_snapshot(),
            "thread_stacks": _thread_stacks(),
        }
        return doc

    def _resource_snapshot(self) -> Dict[str, Any]:
        """Per-query resource accounts at dump time (who was spending
        what when it went wrong), empty when accounting is dark."""
        accountant = getattr(self.cell, "resources", None)
        if accountant is None or not accountant.enabled:
            return {}
        return accountant.stats()

    def _sys_tails(self, limit: int = 32) -> Dict[str, Any]:
        """Last rows of ``sys.metrics``/``sys.events``, when enabled.

        The post-mortem then carries the engine's own recent telemetry —
        what the metrics looked like, which events fired — next to the
        structural snapshot, so a dump is self-contained.
        """
        sampler = getattr(self.cell, "sys", None)
        if sampler is None:
            return {}
        from .sysstreams import SYS_EVENTS, SYS_METRICS, tail_rows

        out: Dict[str, Any] = {}
        for name in (SYS_METRICS, SYS_EVENTS):
            basket = sampler.baskets.get(name)
            if basket is None:
                continue
            columns, rows = tail_rows(basket, limit)
            out[name] = {"columns": columns, "rows": rows}
        return out

    def dump(self, path: str, reason: str = "manual") -> Dict[str, Any]:
        """Write the post-mortem JSON to ``path`` (atomic rename)."""
        import os

        doc = self.snapshot(reason=reason)
        self.last_dump = doc
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(doc, handle, indent=1, default=str)
        os.replace(tmp, path)
        return doc


def _safe_enabled(transition: Any) -> Optional[bool]:
    """A transition's enablement, or None if asking it raises (the whole
    point of a flight recorder is surviving broken components)."""
    try:
        return bool(transition.enabled())
    except Exception:
        return None


def _thread_stacks() -> Dict[str, List[str]]:
    """Formatted stacks of every live thread, keyed by thread name."""
    names = {t.ident: t.name for t in threading.enumerate()}
    out: Dict[str, List[str]] = {}
    for ident, frame in sys._current_frames().items():
        key = f"{names.get(ident, 'unknown')} ({ident})"
        out[key] = traceback.format_stack(frame)
    return out
