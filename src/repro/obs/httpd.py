"""A stdlib HTTP telemetry endpoint for one DataCell.

A deliberate stepping stone toward a real server front door: a
``http.server.ThreadingHTTPServer`` on a background thread (named
``datacell-httpd`` so the test suite's thread-hermeticity fixture
catches a leaked server) serving read-only views of the engine:

====================  =================================================
``GET /metrics``      Prometheus text exposition (the scrape target)
``GET /dashboard``    the aligned text dashboard (``render_dashboard``)
``GET /stats``        :meth:`DataCell.stats` as JSON
``GET /explain/<q>``  continuous EXPLAIN ANALYZE for query name ``<q>``
``GET /sys/<basket>`` JSON tail of a system stream (bare names are
                      resolved under ``sys.``; ``?limit=N`` caps rows)
``GET /healthz``      liveness probe (``ok``)
====================  =================================================

Everything is computed on demand from live engine state; the server
holds no caches and never mutates the cell.  Binding port ``0`` picks a
free port (tests); :attr:`TelemetryServer.port` reports the bound one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlparse

__all__ = ["TelemetryServer"]


class TelemetryServer:
    """Serves a DataCell's observability surface over HTTP."""

    def __init__(
        self,
        cell: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        sys_tail_limit: int = 50,
    ):
        self.cell = cell
        self.sys_tail_limit = sys_tail_limit
        handler = _make_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    def start(self) -> "TelemetryServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="datacell-httpd",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Stop serving and join the server thread."""
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout)
        self._thread = None

    # ------------------------------------------------------------------
    # routing (returns (status, content_type, body))
    # ------------------------------------------------------------------
    def handle(self, raw_path: str) -> Tuple[int, str, str]:
        parsed = urlparse(raw_path)
        path = unquote(parsed.path).rstrip("/") or "/"
        query = parse_qs(parsed.query)
        try:
            if path == "/metrics":
                return 200, "text/plain; version=0.0.4", (
                    self.cell.prometheus_text() or "# (registry disabled)\n"
                )
            if path == "/dashboard":
                return 200, "text/plain", self.cell.render_dashboard()
            if path == "/stats":
                return 200, "application/json", json.dumps(
                    self.cell.stats(), indent=1, default=str
                )
            if path == "/healthz":
                return 200, "text/plain", "ok\n"
            if path == "/top":
                return self._top(query)
            if path.startswith("/explain/"):
                return self._explain(path[len("/explain/"):])
            if path.startswith("/sys/"):
                return self._sys_tail(path[len("/sys/"):], query)
        except Exception as exc:  # surface engine errors as 500s
            return 500, "text/plain", f"{type(exc).__name__}: {exc}\n"
        return 404, "text/plain", f"unknown path {path!r}\n"

    def _explain(self, target: str) -> Tuple[int, str, str]:
        for query in self.cell.continuous_queries():
            if query.name == target:
                return 200, "text/plain", self.cell.explain(target)
        return 404, "text/plain", f"no continuous query named {target!r}\n"

    def _top(self, query: dict) -> Tuple[int, str, str]:
        """Ranked top-queries table; ``?n=`` bounds the row count."""
        try:
            limit = int(query.get("n", [10])[0])
        except (TypeError, ValueError):
            return 400, "text/plain", "n must be an integer\n"
        return 200, "text/plain", self.cell.top(limit) + "\n"

    def _sys_tail(self, name: str, query: dict) -> Tuple[int, str, str]:
        from .sysstreams import is_system_name, tail_rows

        basket_name = name if is_system_name(name) else f"sys.{name}"
        if not self.cell.catalog.has(basket_name):
            return 404, "text/plain", (
                f"no system stream {basket_name!r} "
                "(are system streams enabled?)\n"
            )
        try:
            # ?n= is the short form; it wins over ?limit= when both given
            raw = query.get("n", query.get("limit", [self.sys_tail_limit]))[0]
            limit = int(raw)
        except (TypeError, ValueError):
            return 400, "text/plain", "limit must be an integer\n"
        basket = self.cell.basket(basket_name)
        columns, rows = tail_rows(basket, max(0, limit))
        return 200, "application/json", json.dumps(
            {
                "basket": basket.name,
                "columns": columns,
                "rows": rows,
                "depth": basket.count,
                "total_in": basket.total_in,
            },
            default=str,
        )


def _make_handler(server: TelemetryServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self) -> None:  # noqa: N802 (stdlib API)
            # counted up-front so clients that assert on the tally right
            # after reading a response never race the increment
            server.requests_served += 1
            status, content_type, body = server.handle(self.path)
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", f"{content_type}; charset=utf-8")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, format: str, *args: Any) -> None:
            pass  # telemetry must not spam the engine's stdout

    return Handler
