"""Observability: metrics, tracing, and dashboards for the DataCell.

The paper's scheduler (§2.4) is the hook for "query priorities, low-latency
requirements, load shedding and dynamic environment changes" — all of which
need measurements.  This package is the engine-wide measurement substrate:

* :mod:`repro.obs.metrics` — a dependency-free metrics registry with
  thread-safe counters, gauges and fixed-bucket histograms (plus a
  zero-cost no-op mode and Prometheus text exposition);
* :mod:`repro.obs.tracing` — a bounded ring buffer of scheduler decisions
  and factory activations for post-morteming stalled networks;
* :mod:`repro.obs.spans` — sampled causal span tracing: one root span per
  appended batch, continued across basket hand-offs, nested per MAL
  opcode, exportable as Chrome trace-event JSON (Perfetto);
* :mod:`repro.obs.flightrec` — a stall-detecting watchdog writing JSON
  post-mortems (basket depths, factory states, spans, thread stacks);
* :mod:`repro.obs.dashboard` — renders a :meth:`DataCell.stats` snapshot
  as an aligned text dashboard;
* :mod:`repro.obs.sysstreams` — the engine monitoring itself: a sampler
  transition turning registry readings into rows of reserved ``sys.*``
  baskets, queryable with ordinary continuous SQL (meta-queries), plus
  :class:`AlertRule` firing semantics on top;
* :mod:`repro.obs.httpd` — a stdlib HTTP endpoint serving ``/metrics``
  (Prometheus), ``/dashboard``, ``/stats``, ``/top``,
  ``/explain/<query>`` and ``/sys/<basket>`` from a live cell;
* :mod:`repro.obs.resources` — per-query resource accounting: thread-CPU
  at firing/plan/opcode boundaries, ``nbytes()`` memory rollups,
  queue-wait, and :class:`ResourceBudget` caps with breach events.

Every core component (scheduler, factory, basket, receptor, emitter, MAL
interpreter) accepts a ``metrics`` registry; components built without one
share the process-wide default registry returned by
:func:`default_registry`.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NULL_INSTRUMENT,
    default_registry,
    set_default_registry,
)
from .tracing import TraceEvent, TraceLog
from .spans import Span, SpanRecorder
from .flightrec import FlightRecorder, StallEvent
from .dashboard import render_dashboard
from .sysstreams import (
    SYS_BASKETS,
    SYS_EVENTS,
    SYS_METRICS,
    SYS_QUERIES,
    SYS_RESOURCES,
    AlertRule,
    SystemStreamsConfig,
    TelemetrySampler,
    is_system_name,
    tail_rows,
)
from .resources import (
    QueryResourceAccount,
    ResourceAccountant,
    ResourceBudget,
    estimate_nbytes,
)
from .httpd import TelemetryServer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "default_registry",
    "set_default_registry",
    "TraceEvent",
    "TraceLog",
    "Span",
    "SpanRecorder",
    "FlightRecorder",
    "StallEvent",
    "render_dashboard",
    "SYS_BASKETS",
    "SYS_EVENTS",
    "SYS_METRICS",
    "SYS_QUERIES",
    "SYS_RESOURCES",
    "AlertRule",
    "SystemStreamsConfig",
    "TelemetrySampler",
    "is_system_name",
    "tail_rows",
    "QueryResourceAccount",
    "ResourceAccountant",
    "ResourceBudget",
    "estimate_nbytes",
    "TelemetryServer",
]
