"""A dependency-free metrics registry (counters, gauges, histograms).

Design constraints, in order:

1. **Hot-path cheapness** — instruments are resolved once (at component
   construction) and each observation is a single short critical section;
   bulk observations (:meth:`Histogram.observe_many`) amortize the lock
   over a numpy batch.
2. **Thread safety** — every instrument may be hammered from the paper's
   one-thread-per-transition architecture; totals must be exact.
3. **Zero-cost no-op mode** — a registry built with ``enabled=False``
   hands out a shared :data:`NULL_INSTRUMENT` whose methods do nothing,
   so instrumented code needs no ``if`` guards.

Metric names follow Prometheus conventions (``*_total`` counters,
``*_seconds`` histograms); :meth:`MetricsRegistry.to_prometheus_text`
produces the standard text exposition format for scraping.
"""

from __future__ import annotations

import threading
import warnings
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "default_registry",
    "set_default_registry",
]

#: Default buckets (seconds) for latency/duration histograms: roughly
#: geometric from 10µs to 10s, fine enough for sub-percent percentile
#: resolution over the range a python stream engine can exhibit.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


class _NullInstrument:
    """Absorbs every metric operation; handed out by disabled registries."""

    __slots__ = ()

    def labels(self, *values: Any) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Any) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    def percentile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, float]:
        return {}


NULL_INSTRUMENT = _NullInstrument()


class Counter:
    """A monotonically increasing, thread-safe counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, float]:
        return {"value": self._value}


class Gauge:
    """A thread-safe instantaneous value (basket depth, engaged flag...)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        # a plain float store is atomic under the GIL; no lock needed
        # (inc/dec/set_max are read-modify-write and do lock)
        self._value = float(value)

    def set_max(self, value: float) -> None:
        """Ratchet upward: keep the maximum ever seen (high-water marks)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, float]:
        return {"value": self._value}


class Histogram:
    """A fixed-bucket histogram with percentile estimation.

    Buckets are cumulative-upper-bound (``le``) style as in Prometheus;
    an implicit ``+Inf`` bucket catches overflow.  Percentiles are
    estimated by linear interpolation inside the containing bucket,
    clamped to the exact observed ``min``/``max``.
    """

    __slots__ = (
        "_lock", "_bounds", "_bounds_arr", "_counts",
        "_count", "_sum", "_min", "_max",
    )

    def __init__(self, buckets: Optional[Sequence[float]] = None):
        bounds = tuple(sorted(buckets if buckets is not None else LATENCY_BUCKETS))
        if not bounds:
            raise ObservabilityError("a histogram needs at least one bucket")
        self._lock = threading.Lock()
        self._bounds = bounds
        self._bounds_arr = np.asarray(bounds, dtype=np.float64)
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: Any) -> None:
        """Bulk observation: one lock acquisition for a whole numpy batch."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(self._bounds_arr, arr, side="left")
        binned = np.bincount(idx, minlength=len(self._counts))
        lo = float(arr.min())
        hi = float(arr.max())
        total = float(arr.sum())
        with self._lock:
            for i, n in enumerate(binned):
                if n:
                    self._counts[i] += int(n)
            self._count += int(arr.size)
            self._sum += total
            if lo < self._min:
                self._min = lo
            if hi > self._max:
                self._max = hi

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def value(self) -> float:
        """Alias so generic readers can treat any instrument uniformly."""
        return float(self._count)

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (0..100) from the buckets.

        Accuracy contract (bucket-upper-bound bias): the estimate is
        linear interpolation between the containing bucket's bounds,
        clamped to the observed ``min``/``max``.  The true quantile lies
        somewhere in the same bucket, so the absolute error is bounded by
        that bucket's width — tight for dense buckets, coarse in the
        sparse tail.  Because interpolation assumes observations are
        uniform *within* the bucket, a mass concentrated at the bucket's
        lower edge biases the estimate *upward* (toward the upper bound),
        and vice versa; the error never leaves the bucket.  The ``+Inf``
        bucket has no upper bound to interpolate toward, so the observed
        ``max`` stands in for it: quantiles landing there interpolate
        between the largest finite bound (or the observed ``min``, if
        larger) and ``max``, and the error bound widens to that whole
        open tail.  ``tests/test_obs_metrics.py`` pins these bounds.
        """
        if not 0 <= q <= 100:
            raise ObservabilityError("percentile must be in [0, 100]")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = (q / 100.0) * self._count
            cumulative = 0
            for i, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= target:
                    lo = self._bounds[i - 1] if i > 0 else self._min
                    hi = (
                        self._bounds[i]
                        if i < len(self._bounds)
                        else self._max
                    )
                    lo = max(lo, self._min)
                    hi = min(hi, self._max)
                    if hi <= lo:
                        return float(lo)
                    frac = (target - cumulative) / bucket_count
                    return float(lo + frac * (hi - lo))
                cumulative += bucket_count
            return float(self._max)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            count = self._count
        if count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative (le, count) pairs, Prometheus-style, ending at +Inf."""
        with self._lock:
            out: List[Tuple[float, int]] = []
            cumulative = 0
            for bound, n in zip(self._bounds, self._counts):
                cumulative += n
                out.append((bound, cumulative))
            cumulative += self._counts[-1]
            out.append((float("inf"), cumulative))
            return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """A named metric with a fixed label set; children are per label value.

    Label-less families delegate ``inc``/``set``/``observe`` straight to
    their single child so call sites read naturally either way.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
        max_label_sets: int = 1024,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._buckets = buckets
        self._max_label_sets = max_label_sets
        self._overflow_warned = False
        self._lock = threading.Lock()
        self._children: Dict[LabelValues, Any] = {}

    def _make(self) -> Any:
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, *values: Any) -> Any:
        key = tuple(str(v) for v in values)
        if len(key) != len(self.label_names):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {key}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    # Cardinality guard: unbounded label values (e.g. a
                    # per-request id leaking into a label) would grow the
                    # registry without limit.  Past the cap, new label
                    # sets are absorbed by the no-op instrument; existing
                    # series keep updating.
                    if len(self._children) >= self._max_label_sets:
                        if not self._overflow_warned:
                            self._overflow_warned = True
                            warnings.warn(
                                f"metric {self.name!r}: label cardinality "
                                f"cap ({self._max_label_sets}) reached; "
                                "dropping new label sets",
                                RuntimeWarning,
                                stacklevel=2,
                            )
                        return NULL_INSTRUMENT
                    child = self._make()
                    self._children[key] = child
        return child

    def children(self) -> Dict[LabelValues, Any]:
        with self._lock:
            return dict(self._children)

    # convenience delegation for label-less metrics -----------------------
    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def set_max(self, value: float) -> None:
        self.labels().set_max(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def observe_many(self, values: Any) -> None:
        self.labels().observe_many(values)

    @property
    def value(self) -> float:
        return self.labels().value


class MetricsRegistry:
    """Registers and serves metric families; the engine's measurement hub.

    A registry built with ``enabled=False`` is a black hole: every
    ``counter``/``gauge``/``histogram`` call returns the shared no-op
    instrument and exposition renders empty — instrumented code pays one
    attribute call per observation and nothing else.
    """

    def __init__(self, enabled: bool = True, max_label_sets: int = 1024):
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> Any:
        if not self.enabled:
            return NULL_INSTRUMENT
        label_names = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != label_names:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}"
                    )
                return family
            family = _Family(
                name, kind, help, label_names, buckets,
                max_label_sets=self.max_label_sets,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Any:
        return self._register(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Any:
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Any:
        return self._register(name, "histogram", help, labels, buckets)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _child(
        self, name: str, labels: Union[None, str, Sequence[str]]
    ) -> Optional[Any]:
        family = self._families.get(name)
        if family is None:
            return None
        if labels is None:
            key: LabelValues = ()
        elif isinstance(labels, str):
            key = (labels,)
        else:
            key = tuple(str(v) for v in labels)
        return family.children().get(key)

    def value(
        self, name: str, labels: Union[None, str, Sequence[str]] = None
    ) -> Optional[float]:
        """Current scalar value of a counter/gauge child, or ``None``."""
        child = self._child(name, labels)
        return None if child is None else child.value

    def histogram_snapshot(
        self, name: str, labels: Union[None, str, Sequence[str]] = None
    ) -> Optional[Dict[str, float]]:
        child = self._child(name, labels)
        if child is None or not isinstance(child, Histogram):
            return None
        return child.snapshot()

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """Structured snapshot of every family and child."""
        out: Dict[str, Dict[str, Any]] = {}
        for family in self.families():
            samples = {
                key: child.snapshot()
                for key, child in sorted(family.children().items())
            }
            out[family.name] = {
                "kind": family.kind,
                "help": family.help,
                "labels": list(family.label_names),
                "samples": samples,
            }
        return out

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------
    def to_prometheus_text(self) -> str:
        """Render the Prometheus text exposition format (for scraping)."""
        lines: List[str] = []
        for family in sorted(self.families(), key=lambda f: f.name):
            children = family.children()
            if not children:
                continue
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in sorted(children.items()):
                if family.kind == "histogram":
                    for bound, cumulative in child.bucket_counts():
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        label_text = _labels_text(
                            family.label_names + ("le",), key + (le,)
                        )
                        lines.append(
                            f"{family.name}_bucket{label_text} {cumulative}"
                        )
                    base = _labels_text(family.label_names, key)
                    lines.append(f"{family.name}_sum{base} {_fmt(child.sum)}")
                    lines.append(f"{family.name}_count{base} {child.count}")
                else:
                    label_text = _labels_text(family.label_names, key)
                    lines.append(
                        f"{family.name}{label_text} {_fmt(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _labels_text(names: Iterable[str], values: Iterable[str]) -> str:
    pairs = [
        f'{n}="{_escape(v)}"' for n, v in zip(names, values)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text format: backslash,
    double-quote, and line feed (in that order — backslash first so the
    escapes themselves survive)."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    """Escape HELP text per the Prometheus text format: only backslash
    and line feed (double quotes are legal verbatim outside label values)."""
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# process-wide default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The registry components fall back to when none is passed in."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the previous one.

    Mainly for benchmarks that want a pristine or disabled default.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
