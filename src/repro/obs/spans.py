"""Sampled causal span tracing across the stream pipeline.

The trace ring (:mod:`repro.obs.tracing`) answers *what fired last*; the
metric histograms answer *how slow on average*.  Neither answers the
causal question — "where did **this** batch spend its time?"  Spans do:
a receptor opens one *root* span per appended batch (sampled, default
1 in 64), every transition that later touches those tuples continues the
same trace, the MAL interpreter nests one span per executed opcode, and
the emitter closes the root when the results leave the engine.

Propagation piggybacks on the baskets, exactly like the hidden monotonic
origin-stamp column that feeds the latency histograms: a sampled batch's
tuples carry a *trace token* through every basket hop, so causality
survives factory chains without any side channel.  The token is the root
span's id; ``0`` means "not sampled" and costs one integer comparison.

Finished spans export as Chrome trace-event JSON
(:meth:`SpanRecorder.export_chrome_trace`) loadable in Perfetto or
``chrome://tracing``; timestamps are ``time.perf_counter`` microseconds,
so traces order and measure — they do not tell wall-clock time.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["Span", "SpanRecorder"]

#: Root spans an engine keeps open at once before evicting the oldest —
#: a backstop for pipelines whose results never reach an emitter.
_MAX_OPEN_ROOTS = 1024


class Span:
    """One timed, attributed region of a trace.

    ``token`` is the id of the trace's root span; the root's own token is
    its ``span_id``.  ``parent_id`` encodes causality: receptor → factory
    → factory … → emitter chains hang off each other, opcode spans hang
    off the factory activation that executed them.
    """

    __slots__ = (
        "span_id", "parent_id", "token", "name", "kind",
        "start", "end", "thread", "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        token: int,
        name: str,
        kind: str,
        start: float,
        attrs: Dict[str, Any],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.token = token
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.thread = threading.get_ident()
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (flight records, tests)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "token": self.token,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return f"Span({self.kind}:{self.name} #{self.span_id} {state})"


class SpanRecorder:
    """Thread-safe recorder of sampled, causally linked spans.

    The hot-path contract mirrors the metrics registry: an *unsampled*
    batch costs one lock acquisition at the receptor and one integer
    comparison everywhere else; a *disabled* recorder
    (``enabled=False``) costs a single attribute check.  Sampling is
    deterministic — batch ``0, rate, 2*rate, ...`` of each recorder are
    sampled — so tests and A/B runs are reproducible.
    """

    def __init__(
        self,
        sample_rate: int = 64,
        capacity: int = 8192,
        enabled: bool = True,
    ):
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive (1 = every batch)")
        if capacity <= 0:
            raise ValueError("span capacity must be positive")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.capacity = capacity
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 1
        self._finished: Deque[Span] = deque(maxlen=capacity)
        self._open_roots: Dict[int, Span] = {}
        self._last_handoff: Dict[int, int] = {}
        self.batches_seen = 0
        self.sampled_batches = 0

    # ------------------------------------------------------------------
    # trace lifecycle
    # ------------------------------------------------------------------
    def begin_batch(self, **attrs: Any) -> int:
        """Open a root span for a freshly appended batch.

        Returns the trace token to stamp on the batch's tuples, or ``0``
        when this batch is not sampled (or the recorder is disabled).
        """
        if not self.enabled:
            return 0
        with self._lock:
            seen = self.batches_seen
            self.batches_seen += 1
            if seen % self.sample_rate:
                return 0
            self.sampled_batches += 1
            span_id = self._next_id
            self._next_id += 1
            root = Span(
                span_id, None, span_id, "batch", "batch",
                time.perf_counter(), attrs,
            )
            self._open_roots[span_id] = root
            self._last_handoff[span_id] = span_id
            if len(self._open_roots) > _MAX_OPEN_ROOTS:
                oldest = next(iter(self._open_roots))
                self._close_root_locked(oldest, time.perf_counter())
            return span_id

    def begin_stage(
        self, name: str, kind: str, token: int, **attrs: Any
    ) -> Optional[Span]:
        """Open a child span continuing trace ``token`` (receptor,
        factory, or emitter activation).  ``None`` when the token is 0 —
        callers hold the returned span and need no further guards."""
        if not token or not self.enabled:
            return None
        with self._lock:
            parent = self._last_handoff.get(token, token)
            span_id = self._next_id
            self._next_id += 1
            return Span(
                span_id, parent, token, name, kind,
                time.perf_counter(), attrs,
            )

    def end_stage(
        self, span: Optional[Span], handoff: bool = False, **attrs: Any
    ) -> None:
        """Close a stage span; ``handoff=True`` makes it the parent of
        the trace's next stage (receptors and factories hand off, opcode
        and emitter spans do not)."""
        if span is None:
            return
        span.end = time.perf_counter()
        if attrs:
            span.attrs.update(attrs)
        with self._lock:
            self._finished.append(span)
            if handoff and span.token in self._last_handoff:
                self._last_handoff[span.token] = span.span_id

    def add_opcode(
        self, parent: Span, name: str, start: float, duration: float,
        **attrs: Any,
    ) -> None:
        """Record one already-timed opcode execution under ``parent``
        (the MAL interpreter times instructions anyway; re-using its
        measurements keeps span overhead out of the opcode loop)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            span = Span(
                span_id, parent.span_id, parent.token, name, "opcode",
                start, attrs,
            )
            span.end = start + duration
            self._finished.append(span)

    def close_root(self, token: int, **attrs: Any) -> None:
        """Close the trace's root span (the emitter delivered results).

        Idempotent: a second close (separate-baskets replication delivers
        the same batch through several emitters) extends the root's end
        to the latest delivery instead of failing.
        """
        if not token:
            return
        now = time.perf_counter()
        with self._lock:
            root = self._open_roots.get(token)
            if root is not None:
                if attrs:
                    root.attrs.update(attrs)
                self._close_root_locked(token, now)
                return
            for span in self._finished:
                if span.span_id == token and span.kind == "batch":
                    span.end = max(span.end or now, now)
                    if attrs:
                        span.attrs.update(attrs)
                    return

    def _close_root_locked(self, token: int, now: float) -> None:
        root = self._open_roots.pop(token)
        root.end = now
        self._finished.append(root)
        self._last_handoff.pop(token, None)

    # ------------------------------------------------------------------
    # interpreter hook: the current stage span, per thread
    # ------------------------------------------------------------------
    def stage(self, span: Optional[Span]) -> "_StageScope":
        """Context manager publishing ``span`` as this thread's current
        stage, so nested execution layers (the MAL interpreter) can
        attach opcode spans without any parameter plumbing."""
        return _StageScope(self._tls, span)

    def current_stage(self) -> Optional[Span]:
        return getattr(self._tls, "span", None)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def spans(self, kind: Optional[str] = None) -> List[Span]:
        """Finished spans, oldest first, optionally filtered by kind."""
        with self._lock:
            out = list(self._finished)
        if kind is not None:
            out = [s for s in out if s.kind == kind]
        return out

    def open_roots(self) -> List[Span]:
        """Roots whose batches have not reached an emitter yet."""
        with self._lock:
            return list(self._open_roots.values())

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._open_roots.clear()
            self._last_handoff.clear()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event representation (Perfetto-loadable).

        Every span becomes a complete ("X") event; still-open roots are
        rendered up to "now" so a live engine can be snapshotted.  The
        ``args`` carry span/parent ids, so causality survives even when
        spans from different threads do not nest visually.
        """
        now = time.perf_counter()
        with self._lock:
            spans = list(self._finished) + list(self._open_roots.values())
        events = []
        for span in spans:
            end = span.end if span.end is not None else now
            args: Dict[str, Any] = {
                "span_id": span.span_id,
                "token": span.token,
            }
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            events.append({
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": max(end - span.start, 0.0) * 1e6,
                "pid": 1,
                "tid": span.thread,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome_trace(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path`` (atomic rename)."""
        import os

        payload = self.to_chrome_trace()
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=1, default=str)
        os.replace(tmp, path)

    def __len__(self) -> int:
        return len(self._finished)


class _StageScope:
    """Restores the previous thread-local stage on exit (re-entrant)."""

    __slots__ = ("_tls", "_span", "_prev")

    def __init__(self, tls: threading.local, span: Optional[Span]):
        self._tls = tls
        self._span = span

    def __enter__(self) -> Optional[Span]:
        self._prev = getattr(self._tls, "span", None)
        if self._span is not None:
            self._tls.span = self._span
        return self._span

    def __exit__(self, *exc: Any) -> None:
        if self._span is not None:
            self._tls.span = self._prev
