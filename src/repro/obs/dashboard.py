"""Render a :meth:`DataCell.stats` snapshot as an aligned text dashboard.

Reuses the benchmark suite's table renderer so engine introspection and
bench output share one visual language.  The dashboard is plain text on
purpose: it works over ssh, in CI logs, and in a ``watch``-style loop.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .tracing import TraceLog

__all__ = ["render_dashboard"]

_MS = 1e3


def _ms(seconds: Any) -> float:
    return float(seconds or 0.0) * _MS


def render_dashboard(
    stats: Dict[str, Any],
    trace: Optional[TraceLog] = None,
    trace_events: int = 10,
) -> str:
    """Build the full text dashboard from a ``stats()`` snapshot."""
    # imported lazily: bench imports core which imports obs
    from ..bench.reporting import format_table

    sections: List[str] = []

    scheduler = stats.get("scheduler", {})
    header = (
        f"scheduler: iterations={scheduler.get('iterations', 0)} "
        f"firings={scheduler.get('firings', 0)}"
    )
    sections.append(header)

    transitions = scheduler.get("transitions", {})
    if transitions:
        rows = []
        for name, t in sorted(transitions.items()):
            hist = t.get("activation_seconds") or {}
            rows.append((
                name,
                int(t.get("firings") or 0),
                int(t.get("idle_polls") or 0),
                _ms(hist.get("p50")),
                _ms(hist.get("p95")),
                _ms(hist.get("max")),
            ))
        sections.append(format_table(
            "Transitions",
            ["transition", "firings", "idle polls",
             "p50 ms", "p95 ms", "max ms"],
            rows,
        ))

    baskets = stats.get("baskets", {})
    if baskets:
        rows = [
            (
                name,
                int(b.get("depth") or 0),
                int(b.get("high_water") or 0),
                int(b.get("inserted") or 0),
                int(b.get("consumed") or 0),
                int(b.get("shed") or 0),
            )
            for name, b in sorted(baskets.items())
        ]
        sections.append(format_table(
            "Baskets",
            ["basket", "depth", "high water", "inserted", "consumed", "shed"],
            rows,
        ))

    queries = stats.get("queries", {})
    if queries:
        rows = []
        for name, q in sorted(queries.items()):
            lat = q.get("latency") or {}
            rows.append((
                name,
                int(q.get("delivered") or 0),
                int(lat.get("count") or 0),
                _ms(lat.get("p50")),
                _ms(lat.get("p95")),
                _ms(lat.get("p99")),
                _ms(lat.get("max")),
            ))
        sections.append(format_table(
            "Continuous queries (insert → emit latency)",
            ["query", "delivered", "samples",
             "p50 ms", "p95 ms", "p99 ms", "max ms"],
            rows,
        ))

    mal = stats.get("mal", {})
    if mal:
        ranked = sorted(
            mal.items(), key=lambda kv: -kv[1].get("seconds", 0.0)
        )[:15]
        rows = [
            (op, int(prof.get("calls") or 0), _ms(prof.get("seconds")))
            for op, prof in ranked
        ]
        sections.append(format_table(
            "MAL opcodes (top 15 by cumulative time)",
            ["opcode", "calls", "total ms"],
            rows,
        ))

    resources = stats.get("resources")
    if resources:
        engine = resources.get("engine", {})
        accounts = resources.get("queries", {})
        ranked = sorted(
            accounts.items(),
            key=lambda kv: -(kv[1].get("cpu_seconds") or 0.0),
        )[:10]
        rows = []
        for name, a in ranked:
            waited = int(a.get("queue_wait_tuples") or 0)
            wait = a.get("queue_wait_seconds") or 0.0
            rows.append((
                name,
                a.get("tenant", "default"),
                _ms(a.get("cpu_seconds")),
                _ms(a.get("plan_cpu_seconds")),
                _ms(a.get("opcode_cpu_seconds")),
                int(a.get("memory_bytes") or 0) // 1024,
                _ms(wait / waited) if waited else 0.0,
                int(a.get("rows_in") or 0),
                int(a.get("rows_out") or 0),
            ))
        sections.append(format_table(
            "Top queries by CPU "
            f"(engine memory={int(engine.get('memory_bytes') or 0)} B)",
            ["query", "tenant", "cpu ms", "plan ms", "opcode ms",
             "mem kb", "wait ms", "rows in", "rows out"],
            rows,
        ))
        budgets = resources.get("budgets", {})
        if budgets:
            sections.append(format_table(
                "Resource budgets",
                ["budget", "scope", "breaches"],
                [
                    (n, b.get("scope", "?"), int(b.get("breaches") or 0))
                    for n, b in sorted(budgets.items())
                ],
            ))

    durability = stats.get("durability")
    if durability:
        ckpt_ms = _ms(durability.get("last_checkpoint_seconds"))
        rec = durability.get("recovery_seconds")
        rows = [(
            durability.get("fsync_policy", "?"),
            int(durability.get("wal_records") or 0),
            int(durability.get("wal_bytes") or 0),
            int(durability.get("wal_fsyncs") or 0),
            int(durability.get("wal_segments") or 0),
            int(durability.get("checkpoints") or 0),
            ckpt_ms,
            _ms(rec) if rec is not None else "-",
        )]
        sections.append(format_table(
            "Durability (WAL + checkpoints)",
            ["fsync", "records", "bytes", "fsyncs", "segments",
             "ckpts", "last ckpt ms", "recovery ms"],
            rows,
        ))

    sys_section = stats.get("sys")
    if sys_section:
        streams = sys_section.get("streams", {})
        alerts = sys_section.get("alerts", {})
        rows = [
            (name, int(depth))
            for name, depth in sorted(streams.items())
        ]
        sections.append(format_table(
            f"System streams (samples={sys_section.get('samples', 0)} "
            f"rows={sys_section.get('rows', 0)})",
            ["stream", "depth"],
            rows,
        ))
        if alerts:
            sections.append(format_table(
                "Alert rules",
                ["alert", "firings"],
                [(n, int(f)) for n, f in sorted(alerts.items())],
            ))

    server_section = stats.get("server")
    if server_section:
        ingest = server_section.get("ingest", {})
        sessions = server_section.get("sessions", {})
        rows = [
            (
                sid,
                s.get("tenant", "?"),
                s.get("subscriptions", 0),
                s.get("rows_in", 0),
                s.get("rows_out", 0),
                s.get("dropped_frames", 0),
                s.get("queue_depth", 0),
            )
            for sid, s in sorted(sessions.items())
        ]
        sections.append(format_table(
            f"Server ({server_section.get('address')} "
            f"policy={server_section.get('backpressure')} "
            f"ingested={ingest.get('applied_rows', 0)} "
            f"pending={ingest.get('pending_batches', 0)})",
            ["session", "tenant", "subs", "rows_in", "rows_out",
             "dropped", "queued"],
            rows,
        ))
        throttled = server_section.get("throttled_tenants") or {}
        if throttled:
            sections.append(format_table(
                "Throttled tenants",
                ["tenant", "remaining_s"],
                sorted(throttled.items()),
            ))

    http_section = stats.get("http")
    if http_section:
        sections.append(
            f"http: {http_section.get('url')} "
            f"requests={http_section.get('requests', 0)}"
        )

    if trace is not None and len(trace):
        sections.append(
            f"== Trace (last {trace_events} of {len(trace)} buffered) ==\n"
            + trace.render(trace_events)
        )

    return "\n\n".join(sections) + "\n"
