"""System streams — the engine monitoring itself with its own machinery.

The paper's thesis is that streams belong *inside* the relational
kernel; this module closes the loop by turning the engine's telemetry
into first-class streams.  A :class:`TelemetrySampler` transition runs
on the ordinary scheduler at a configurable cadence (driven by the
cell's clock, so ``LogicalClock`` tests are deterministic) and converts
:class:`~repro.obs.metrics.MetricsRegistry` readings into *delta rows*
appended to four reserved baskets:

``sys.metrics``
    one row per instrument whose value changed since the last sample
    (``metric, labels, kind, value, delta``); histograms expand into
    ``_count``/``_sum``/``_p50``/``_p99`` suffixed rows;
``sys.queries``
    one row per continuous query per sample (delivered/activation
    deltas plus instantaneous p50/p99 insert→emit latency);
``sys.baskets``
    one row per *user* basket per sample (depth, depth delta, flow
    deltas, high water) — the flight recorder's stall predicate
    becomes the one-liner ``depth_delta > 0 and consumed_delta = 0``;
``sys.events``
    discrete occurrences: stall/checkpoint/recovery/error trace events
    drained from the trace ring, plus alert firings.

System baskets are deliberately *second-class citizens of durability
and shedding*: they are exempt from WAL capture (their rows are derived
measurements, recomputed by any run), excluded from checkpoints, immune
to load shedding, and bounded by a ring-buffer ``retention`` instead —
dropping the oldest rows without counting them as shed.

Because the baskets live in the ordinary catalog (under the reserved
``sys.`` schema), **meta-queries** are just continuous queries::

    cell.submit_continuous(
        "select b.basket, b.depth from "
        "[select * from sys.baskets where depth_delta > 0 "
        "and consumed_delta = 0] as b")

:class:`AlertRule` wraps such a query with once-per-breach-window
firing semantics and routes firings to callbacks and ``sys.events``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..kernel.types import AtomType
from .metrics import Histogram, MetricsRegistry

__all__ = [
    "SYS_SCHEMA",
    "SYS_METRICS",
    "SYS_QUERIES",
    "SYS_BASKETS",
    "SYS_EVENTS",
    "SYS_RESOURCES",
    "SYS_STREAM_SCHEMAS",
    "SystemStreamsConfig",
    "TelemetrySampler",
    "AlertRule",
    "is_system_name",
    "tail_rows",
]

SYS_SCHEMA = "sys."
SYS_METRICS = "sys.metrics"
SYS_QUERIES = "sys.queries"
SYS_BASKETS = "sys.baskets"
SYS_EVENTS = "sys.events"
SYS_RESOURCES = "sys.resources"

#: Reserved basket schemas (user columns; ``dc_time`` is implicit).
SYS_STREAM_SCHEMAS: Dict[str, List[Tuple[str, AtomType]]] = {
    SYS_METRICS: [
        ("metric", AtomType.STR),
        ("labels", AtomType.STR),
        ("kind", AtomType.STR),
        ("value", AtomType.DBL),
        ("delta", AtomType.DBL),
    ],
    SYS_QUERIES: [
        ("query", AtomType.STR),
        ("delivered", AtomType.LNG),
        ("delivered_delta", AtomType.LNG),
        ("activations", AtomType.LNG),
        ("activations_delta", AtomType.LNG),
        ("p50_latency", AtomType.DBL),
        ("p99_latency", AtomType.DBL),
    ],
    SYS_BASKETS: [
        ("basket", AtomType.STR),
        ("depth", AtomType.LNG),
        ("depth_delta", AtomType.LNG),
        ("inserted_delta", AtomType.LNG),
        ("consumed_delta", AtomType.LNG),
        ("shed_delta", AtomType.LNG),
        ("high_water", AtomType.LNG),
    ],
    SYS_EVENTS: [
        ("kind", AtomType.STR),
        ("component", AtomType.STR),
        ("detail", AtomType.STR),
    ],
    # one row per query whose resource account changed since the last
    # sample; ``*_delta`` columns are since-last-sample (see
    # docs/observability.md, "Resource accounting and budgets")
    SYS_RESOURCES: [
        ("query", AtomType.STR),
        ("tenant", AtomType.STR),
        ("cpu_seconds", AtomType.DBL),
        ("cpu_delta", AtomType.DBL),
        ("plan_cpu_seconds", AtomType.DBL),
        ("opcode_cpu_seconds", AtomType.DBL),
        ("memory_bytes", AtomType.LNG),
        ("queue_wait_seconds", AtomType.DBL),
        ("queue_wait_delta", AtomType.DBL),
        ("rows_in", AtomType.LNG),
        ("rows_in_delta", AtomType.LNG),
        ("rows_out", AtomType.LNG),
        ("rows_out_delta", AtomType.LNG),
        ("bytes_in", AtomType.LNG),
        ("bytes_out", AtomType.LNG),
    ],
}


def is_system_name(name: str) -> bool:
    """True for names in the reserved ``sys.`` schema."""
    return name.lower().startswith(SYS_SCHEMA)


@dataclass
class SystemStreamsConfig:
    """Knobs for the telemetry sampler and the reserved baskets.

    ``interval`` is in the cell clock's units (seconds for the default
    :class:`~repro.core.clock.WallClock`; ticks for a ``LogicalClock``).
    ``retention`` bounds every ``sys.*`` basket as a ring buffer.
    """

    interval: float = 1.0
    retention: int = 512
    include_histograms: bool = True
    #: trace-ring event kinds forwarded into ``sys.events``
    event_kinds: Tuple[str, ...] = (
        "stall", "checkpoint", "recovery", "error", "shed",
    )


class TelemetrySampler:
    """The ``sys_sampler`` transition: telemetry → system-stream rows.

    A :class:`~repro.core.scheduler.SchedulableTransition` like any
    receptor or emitter — cadence comes from ``enabled()`` comparing the
    cell clock against the next due time, so both driving modes (and the
    deterministic simulator) sample without a dedicated thread.  The
    priority is below emitters: a sample observes the sweep's settled
    state, not its intermediate churn.

    Self-measurement is cut off at the source: instruments labeled with
    ``sys.*`` names (the system baskets' own depth/flow counters) and
    with this transition's name are skipped, so a sample never makes the
    next sample non-empty and ``run_until_quiescent`` still quiesces.
    """

    def __init__(self, cell: Any, config: Optional[SystemStreamsConfig] = None):
        self.cell = cell
        self.config = config or SystemStreamsConfig()
        if self.config.interval <= 0:
            raise ValueError("sampler interval must be positive")
        if self.config.retention <= 0:
            raise ValueError("sys stream retention must be positive")
        self.name = "sys_sampler"
        self.priority = -20
        self.baskets: Dict[str, Any] = {}
        for basket_name, columns in SYS_STREAM_SCHEMAS.items():
            self.baskets[basket_name] = cell._create_system_basket(
                basket_name, columns, self.config.retention
            )
        self.samples_taken = 0
        self.rows_emitted = 0
        self.alerts: Dict[str, "AlertRule"] = {}
        self._next_due = cell.clock.now() + self.config.interval
        # previous-sample values, keyed per stream; deltas come from here
        self._prev_metrics: Dict[Tuple[str, str, Tuple[str, ...]], float] = {}
        self._prev_queries: Dict[str, Tuple[int, int]] = {}
        self._prev_baskets: Dict[str, Tuple[int, int, int, int]] = {}
        self._prev_resources: Dict[str, Dict[str, Any]] = {}
        # this sample's per-account deltas, for resource-budget checks
        self._last_resource_deltas: Dict[str, Dict[str, float]] = {}
        self._trace_cursor = cell.trace.total_recorded
        metrics: MetricsRegistry = cell.metrics
        self._m_samples = metrics.counter(
            "datacell_sys_samples_total",
            "Telemetry samples taken by the sys_sampler transition",
        )
        self._m_rows = metrics.counter(
            "datacell_sys_rows_total",
            "Rows appended to system streams",
            ("stream",),
        )

    # ------------------------------------------------------------------
    # SchedulableTransition protocol
    # ------------------------------------------------------------------
    def enabled(self) -> bool:
        return self.cell.clock.now() >= self._next_due

    def activate(self):
        from ..core.factory import ActivationResult

        started = time.perf_counter()
        now = float(self.cell.clock.now())
        rows_out = 0
        # resources before metrics so the engine-memory gauge the metrics
        # sweep reads is this tick's value, not last tick's
        rows_out += self._sample_resources(now)
        rows_out += self._sample_metrics(now)
        rows_out += self._sample_queries(now)
        rows_out += self._sample_baskets(now)
        rows_out += self._drain_trace_events(now)
        self.samples_taken += 1
        self.rows_emitted += rows_out
        self._m_samples.inc()
        self._check_budgets()
        # one activation absorbs any number of elapsed intervals: deltas
        # are since-last-sample, so a late sample is coarse, never wrong
        self._next_due = now + self.config.interval
        return ActivationResult(
            fired=True,
            tuples_in=0,
            tuples_out=rows_out,
            consumed=0,
            elapsed=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # the four streams
    # ------------------------------------------------------------------
    def _skip_labels(self, key: Tuple[str, ...]) -> bool:
        """Drop samples that measure the system streams themselves."""
        return any(
            is_system_name(value) or value == self.name for value in key
        )

    def _sample_metrics(self, now: float) -> int:
        rows: List[List[Any]] = []
        for family in self.cell.metrics.families():
            if family.name.startswith("datacell_sys_"):
                continue  # the sampler's own instruments: pure feedback
            for key, child in sorted(family.children().items()):
                if self._skip_labels(key):
                    continue
                labels = ",".join(
                    f"{n}={v}" for n, v in zip(family.label_names, key)
                )
                if isinstance(child, Histogram):
                    if not self.config.include_histograms:
                        continue
                    snap = child.snapshot()
                    points = (
                        ("_count", float(snap["count"])),
                        ("_sum", float(snap["sum"])),
                        ("_p50", float(snap["p50"])),
                        ("_p99", float(snap["p99"])),
                    )
                    count_key = (family.name + "_count", labels, key)
                    if self._prev_metrics.get(count_key) == float(
                        snap["count"]
                    ):
                        continue  # no new observations: nothing changed
                    for suffix, value in points:
                        prev_key = (family.name + suffix, labels, key)
                        prev = self._prev_metrics.get(prev_key, 0.0)
                        self._prev_metrics[prev_key] = value
                        rows.append([
                            family.name + suffix, labels, "histogram",
                            value, value - prev,
                        ])
                else:
                    value = float(child.value)
                    prev_key = (family.name, labels, key)
                    prev = self._prev_metrics.get(prev_key)
                    if prev is not None and prev == value:
                        continue
                    self._prev_metrics[prev_key] = value
                    rows.append([
                        family.name, labels, family.kind,
                        value, value - (prev or 0.0),
                    ])
        return self._append(SYS_METRICS, rows, now)

    def _sample_queries(self, now: float) -> int:
        rows: List[List[Any]] = []
        m = self.cell.metrics
        for q in self.cell.continuous_queries():
            delivered = int(q.results_delivered)
            activations = int(q.activations)
            prev_d, prev_a = self._prev_queries.get(q.name, (0, 0))
            self._prev_queries[q.name] = (delivered, activations)
            latency = m.histogram_snapshot(
                "datacell_query_latency_seconds", (q.output_basket.name,)
            ) or {}
            rows.append([
                q.name,
                delivered, delivered - prev_d,
                activations, activations - prev_a,
                float(latency.get("p50", 0.0)),
                float(latency.get("p99", 0.0)),
            ])
        return self._append(SYS_QUERIES, rows, now)

    def _sample_baskets(self, now: float) -> int:
        rows: List[List[Any]] = []
        for basket in self.cell.catalog.baskets():
            if is_system_name(basket.name):
                continue
            depth = int(basket.count)
            total_in = int(basket.total_in)
            total_out = int(basket.total_out)
            shed = int(basket.total_shed)
            prev = self._prev_baskets.get(basket.name, (0, 0, 0, 0))
            self._prev_baskets[basket.name] = (
                depth, total_in, total_out, shed
            )
            rows.append([
                basket.name,
                depth, depth - prev[0],
                total_in - prev[1],
                total_out - prev[2],
                shed - prev[3],
                int(basket.high_water),
            ])
        return self._append(SYS_BASKETS, rows, now)

    def _sample_resources(self, now: float) -> int:
        """One ``sys.resources`` row per query whose account changed.

        Also refreshes the engine-wide memory gauge and stashes this
        sample's per-account deltas for the budget checks that run at
        the end of the activation.
        """
        accountant = getattr(self.cell, "resources", None)
        self._last_resource_deltas = {}
        if accountant is None or not accountant.enabled:
            return 0
        shares = accountant.input_shares()
        rows: List[List[Any]] = []
        for account in accountant.accounts():
            snap = account.snapshot(shares)
            prev = self._prev_resources.get(account.name)
            p = prev or {}
            deltas = {
                "cpu_delta": snap["cpu_seconds"] - p.get("cpu_seconds", 0.0),
                "queue_wait_delta": (
                    snap["queue_wait_seconds"]
                    - p.get("queue_wait_seconds", 0.0)
                ),
                "rows_in_delta": snap["rows_in"] - p.get("rows_in", 0),
                "rows_out_delta": snap["rows_out"] - p.get("rows_out", 0),
                "memory_bytes": snap["memory_bytes"],
            }
            self._last_resource_deltas[account.name] = deltas
            if prev == snap:
                continue  # idle query: no row, stream stays quiescent
            self._prev_resources[account.name] = snap
            rows.append([
                account.name,
                snap["tenant"],
                snap["cpu_seconds"],
                deltas["cpu_delta"],
                snap["plan_cpu_seconds"],
                snap["opcode_cpu_seconds"],
                int(snap["memory_bytes"]),
                snap["queue_wait_seconds"],
                deltas["queue_wait_delta"],
                int(snap["rows_in"]),
                int(deltas["rows_in_delta"]),
                int(snap["rows_out"]),
                int(deltas["rows_out_delta"]),
                int(snap["bytes_in"]),
                int(snap["bytes_out"]),
            ])
        accountant._m_memory.set(accountant.engine_memory_bytes())
        return self._append(SYS_RESOURCES, rows, now)

    def _check_budgets(self) -> None:
        """Evaluate resource budgets against this sample's deltas and
        emit one ``budget_breach`` event per budget per breach window."""
        accountant = getattr(self.cell, "resources", None)
        if accountant is None or not accountant.enabled \
                or not accountant.budgets:
            return
        fired = accountant.check_budgets(
            self._last_resource_deltas, self.samples_taken
        )
        for record in fired:
            self.emit_event(
                "budget_breach",
                record["budget"],
                scope=record["scope"],
                exceeded=record["exceeded"],
                tick=record["tick"],
            )

    def _drain_trace_events(self, now: float) -> int:
        trace = self.cell.trace
        total = trace.total_recorded
        fresh_count = total - self._trace_cursor
        self._trace_cursor = total
        if fresh_count <= 0:
            return 0
        events = trace.events()
        fresh = events[-min(fresh_count, len(events)):]
        rows = [
            [e.kind, e.component, json.dumps(e.detail, default=str)]
            for e in fresh
            if e.kind in self.config.event_kinds
        ]
        return self._append(SYS_EVENTS, rows, now)

    def _append(self, stream: str, rows: List[List[Any]], now: float) -> int:
        if not rows:
            return 0
        self.baskets[stream].insert_rows(rows, timestamp=now)
        self._m_rows.labels(stream).inc(len(rows))
        return len(rows)

    # ------------------------------------------------------------------
    # direct event ingestion (alerts, application events)
    # ------------------------------------------------------------------
    def emit_event(self, kind: str, component: str, **detail: Any) -> None:
        """Append one row to ``sys.events`` directly (no trace-ring hop)."""
        self._append(
            SYS_EVENTS,
            [[kind, component, json.dumps(detail, default=str)]],
            float(self.cell.clock.now()),
        )

    def close(self) -> None:
        """Unregister the sampler and drop the system baskets."""
        self.cell.scheduler.unregister(self.name)
        for rule in list(self.alerts.values()):
            rule.cancel()
        for name in self.baskets:
            if self.cell.catalog.has(name):
                self.cell.catalog.drop(name)
        self.baskets = {}


class AlertRule:
    """A meta-query with once-per-breach-window firing semantics.

    Wraps a continuous query (normally over ``sys.*`` streams).  Every
    non-empty delivery marks the current sampler tick as *breached*;
    the rule fires on the first breached tick of a window and stays
    silent while consecutive ticks keep matching.  A tick gap (the
    condition cleared, then re-appeared) starts a new window and fires
    again — so a sustained overload alerts once, not once per sample.

    Firings go to the optional ``callback(rule, rows)``, to
    ``sys.events`` (kind ``alert``), and to the
    ``datacell_alerts_fired_total`` counter.
    """

    def __init__(
        self,
        name: str,
        query: Any,
        sampler: TelemetrySampler,
        callback: Optional[Callable[["AlertRule", List[Tuple]], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.name = name
        self.query = query
        self.sampler = sampler
        self.callback = callback
        self.firings = 0
        self.last_rows: List[Tuple] = []
        self.cancelled = False
        self._last_match_tick: Optional[int] = None
        registry = metrics if metrics is not None else sampler.cell.metrics
        self._m_fired = registry.counter(
            "datacell_alerts_fired_total",
            "Alert-rule firings (once per breach window)",
            ("alert",),
        ).labels(name)
        query.subscribe(self._on_delivery)
        sampler.alerts[name] = self

    def _on_delivery(self, rows: List[Tuple]) -> None:
        if not rows or self.cancelled:
            return
        tick = self.sampler.samples_taken
        new_window = (
            self._last_match_tick is None
            or tick - self._last_match_tick > 1
        )
        self._last_match_tick = tick
        if not new_window:
            return
        self.firings += 1
        self.last_rows = list(rows)
        self._m_fired.inc()
        self.sampler.emit_event(
            "alert", self.name, rows=len(rows), tick=tick
        )
        if self.callback is not None:
            self.callback(self, rows)

    def cancel(self) -> None:
        """Unregister the underlying meta-query."""
        if self.cancelled:
            return
        self.cancelled = True
        self.sampler.alerts.pop(self.name, None)
        self.query.cancel()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AlertRule({self.name!r}, firings={self.firings})"


# ----------------------------------------------------------------------
# helpers shared by the HTTP endpoint and the flight recorder
# ----------------------------------------------------------------------
def tail_rows(
    basket: Any, limit: int = 50
) -> Tuple[List[str], List[List[Any]]]:
    """The last ``limit`` rows of a basket as plain python values.

    Returns ``(column_names, rows)`` with the implicit ``dc_time``
    column included last — JSON-serializable by construction.
    """
    from ..kernel.types import python_value

    snapshot = basket.snapshot()
    names = list(snapshot.names)
    count = snapshot.count
    start = max(0, count - int(limit))
    rows: List[List[Any]] = []
    for i in range(start, count):
        rows.append([
            python_value(bat.atom, bat.tail[i]) for bat in snapshot.bats
        ])
    return names, rows
