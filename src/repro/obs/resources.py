"""Per-query resource accounting: CPU, memory, and queue-wait attribution.

The paper's premise — continuous queries are ordinary relational plans
run by the kernel's scheduler — means every query spends CPU, basket
memory, and queue capacity that the earlier observability layers never
attributed to anyone: latency (emitter histograms) and liveness
(``sys.*`` streams) say *how the engine feels*, not *who is spending
what*.  This module closes that gap with one passive accounting seam:

* **CPU** — ``time.thread_time()`` deltas captured at three nested
  boundaries that bracket each other: the scheduler's firing boundary
  (:meth:`ResourceAccountant.begin_firing` / ``end_firing``, covering
  the whole activation including basket I/O), the factory's plan
  boundary (``plan.run`` alone), and the MAL interpreter's per-opcode
  fold.  ``opcode <= plan <= firing`` by construction, and the
  per-bucket breakdown is *exhaustive*: firing CPU the interpreter did
  not claim as a real opcode is folded into synthetic
  ``engine.factory`` / ``engine.emitter`` buckets, so the accuracy
  contract (pinned by ``tests/test_obs_resources.py``) — the breakdown
  sums to >= 90% of the scheduler-measured thread CPU — holds even on
  plans whose snapshot/emit I/O dwarfs the columnar kernels.
* **Memory** — an ``nbytes()`` contract on BAT columns, baskets, and
  continuous plans, rolled up per query (output basket + plan state +
  an equal share of each input basket split across its reading
  queries) and engine-wide (every basket plus every plan's state).
  Byte counts are O(1) estimates, not allocator truth: fixed-width
  columns report ``count * itemsize``; string columns estimate a flat
  per-element object cost.
* **Queue-wait** — the time a batch sat in a basket between insert and
  the consuming factory's snapshot (monotonic arrival stamps minus
  snapshot time), split out from execution time so backpressure is
  distinguishable from a slow plan.

The accountant is deliberately *passive*: it never changes ``enabled()``
decisions, consumption, or scheduling, so deterministic-simulation and
crash-recovery differentials stay byte-identical with accounting on.

:class:`ResourceBudget` is the enforcement hook ROADMAP item 4 (tenant
quotas / admission control) attaches to: a per-query or per-tenant cap
on CPU-per-sample, memory, or queue-wait-per-sample, evaluated on each
telemetry-sampler tick, with breaches emitted into ``sys.events`` (kind
``budget_breach``) exactly once per breach window.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..errors import ObservabilityError
from .metrics import MetricsRegistry

__all__ = [
    "QueryResourceAccount",
    "ResourceAccountant",
    "ResourceBudget",
    "estimate_nbytes",
    "plan_nbytes",
]


def plan_nbytes(plan: Any) -> int:
    """A plan's saved-state estimate; 0 for plans without the
    ``nbytes()`` hook (plans are duck-typed, not all subclass
    ``ContinuousPlan``)."""
    hook = getattr(plan, "nbytes", None)
    return int(hook()) if callable(hook) else 0


#: Flat per-element estimate (bytes) for object-dtype columns: one
#: CPython pointer plus a small string object.  An estimate by contract
#: — see docs/observability.md, "Resource accounting and budgets".
OBJECT_ELEMENT_BYTES = 56


def estimate_nbytes(obj: Any, _depth: int = 0) -> int:
    """Recursive O(state) byte estimate of plain data structures.

    Understands numpy arrays, BATs (anything with a callable
    ``nbytes``), containers, scalars (flat 8 bytes — payload, not
    python object overhead), and plain-data objects (``__dict__`` or
    ``__slots__`` holders such as window-plan buffers and summaries).
    Depth-capped so a cyclic or engine-shaped object cannot blow the
    stack.
    """
    if _depth > 6 or obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        if obj.dtype == object:
            return int(obj.size) * OBJECT_ELEMENT_BYTES
        return int(obj.nbytes)
    nbytes = getattr(obj, "nbytes", None)
    if callable(nbytes):
        return int(nbytes())
    if isinstance(obj, dict):
        return sum(
            estimate_nbytes(k, _depth + 1) + estimate_nbytes(v, _depth + 1)
            for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set)):
        return sum(estimate_nbytes(v, _depth + 1) for v in obj)
    if isinstance(obj, (str, bytes)):
        return len(obj)
    if isinstance(obj, (int, float, complex, np.number)):
        return 8
    inner = getattr(obj, "__dict__", None)
    if inner is not None:
        return estimate_nbytes(inner, _depth + 1)
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        return sum(
            estimate_nbytes(getattr(obj, s, None), _depth + 1)
            for s in slots
        )
    return 0


class QueryResourceAccount:
    """Cumulative resource usage of one continuous query.

    All counters are lifetime totals; deltas are computed by readers
    (the telemetry sampler keeps previous-sample values).  Mutated from
    the firing thread, read from anywhere — individual fields are
    consistent under the GIL, the set of fields is not an atomic cut
    (same contract as :meth:`DataCell.stats`).
    """

    def __init__(self, name: str, tenant: str = "default"):
        self.name = name
        self.tenant = tenant
        # bound engine objects (set by the accountant)
        self.factory: Any = None
        self.emitter: Any = None
        self.output_basket: Any = None
        self.input_baskets: List[Any] = []
        # CPU, outermost to innermost boundary
        self.cpu_seconds = 0.0  # scheduler firing boundary (factory+emitter)
        self.plan_cpu_seconds = 0.0  # inside plan.run alone
        self.opcode_cpu_seconds = 0.0  # folded per MAL opcode
        self.opcode_cpu: Dict[str, float] = {}
        # queue-wait: insert -> consuming snapshot, per tuple
        self.queue_wait_seconds = 0.0
        self.queue_wait_tuples = 0
        # flow
        self.firings = 0  # scheduler firings (factory + emitter)
        self.activations = 0  # factory activations alone
        self.rows_in = 0
        self.rows_out = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def memory_bytes(self, input_shares: Dict[str, int]) -> int:
        """Current state footprint: output basket + plan state + the
        query's share of each input basket (split equally across the
        accounts reading it, per ``input_shares``)."""
        total = 0
        if self.output_basket is not None:
            total += int(self.output_basket.nbytes())
        factory = self.factory
        if factory is not None and factory.plan is not None:
            total += plan_nbytes(factory.plan)
        for basket in self.input_baskets:
            readers = max(1, input_shares.get(basket.name.lower(), 1))
            total += int(basket.nbytes()) // readers
        return total

    def snapshot(self, input_shares: Dict[str, int]) -> Dict[str, Any]:
        """Plain-dict view (JSON-serializable) for stats()/sampling."""
        return {
            "tenant": self.tenant,
            "cpu_seconds": self.cpu_seconds,
            "plan_cpu_seconds": self.plan_cpu_seconds,
            "opcode_cpu_seconds": self.opcode_cpu_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
            "queue_wait_tuples": self.queue_wait_tuples,
            "memory_bytes": self.memory_bytes(input_shares),
            "firings": self.firings,
            "activations": self.activations,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryResourceAccount({self.name!r}, tenant={self.tenant!r}, "
            f"cpu={self.cpu_seconds:.6f}s)"
        )


class ResourceBudget:
    """A cap on one query's (or one tenant's) per-sample resource use.

    Caps are checked once per telemetry-sampler tick against the deltas
    since the previous tick (CPU and queue-wait) or the instantaneous
    value (memory).  A breach fires exactly once per *breach window*:
    the first breached tick alerts, consecutive breached ticks stay
    silent, and a clean tick followed by a new breach alerts again —
    the same once-per-window semantics as :class:`AlertRule`.
    """

    def __init__(
        self,
        name: str,
        query: Optional[str] = None,
        tenant: Optional[str] = None,
        cpu_delta: Optional[float] = None,
        memory_bytes: Optional[int] = None,
        queue_wait_delta: Optional[float] = None,
        callback: Optional[Callable[["ResourceBudget", Dict], None]] = None,
    ):
        if (query is None) == (tenant is None):
            raise ObservabilityError(
                "a budget is scoped to exactly one of query= or tenant="
            )
        if cpu_delta is None and memory_bytes is None \
                and queue_wait_delta is None:
            raise ObservabilityError(
                "a budget needs at least one cap (cpu_delta, memory_bytes, "
                "queue_wait_delta)"
            )
        self.name = name
        self.query = query
        self.tenant = tenant
        self.cpu_delta = cpu_delta
        self.memory_bytes = memory_bytes
        self.queue_wait_delta = queue_wait_delta
        self.callback = callback
        self.breaches = 0
        self.last_breach: Optional[Dict[str, Any]] = None
        self._last_breach_tick: Optional[int] = None

    def scope_key(self) -> str:
        return f"query:{self.query}" if self.query else f"tenant:{self.tenant}"

    def evaluate(self, usage: Dict[str, float]) -> List[Dict[str, Any]]:
        """Which caps does ``usage`` exceed?  Returns one record per
        exceeded dimension (empty list: within budget)."""
        exceeded: List[Dict[str, Any]] = []
        checks = (
            ("cpu_delta", self.cpu_delta, usage.get("cpu_delta", 0.0)),
            ("memory_bytes", self.memory_bytes,
             usage.get("memory_bytes", 0)),
            ("queue_wait_delta", self.queue_wait_delta,
             usage.get("queue_wait_delta", 0.0)),
        )
        for dimension, cap, observed in checks:
            if cap is not None and observed > cap:
                exceeded.append({
                    "dimension": dimension,
                    "cap": cap,
                    "observed": observed,
                })
        return exceeded

    def record_tick(self, tick: int, breached: bool) -> bool:
        """Advance the breach-window state machine; True = fire now."""
        if not breached:
            return False
        new_window = (
            self._last_breach_tick is None
            or tick - self._last_breach_tick > 1
        )
        self._last_breach_tick = tick
        return new_window

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResourceBudget({self.name!r}, {self.scope_key()}, "
            f"breaches={self.breaches})"
        )


class ResourceAccountant:
    """The engine's resource-attribution hub.

    One per :class:`~repro.core.engine.DataCell`.  When ``enabled`` the
    engine wires it into the scheduler (firing-boundary CPU via the
    thread-local *current account*), the MAL interpreter (per-opcode
    CPU fold), and every factory (plan CPU, queue-wait, rows/bytes);
    when disabled none of those hooks are installed and the hot path
    pays nothing.
    """

    def __init__(
        self,
        cell: Any,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.cell = cell
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else cell.metrics
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._accounts: Dict[str, QueryResourceAccount] = {}
        self._by_transition: Dict[str, QueryResourceAccount] = {}
        self.budgets: Dict[str, ResourceBudget] = {}
        # engine-level breach observers (the network front door uses
        # this to throttle over-budget tenants at the socket)
        self._breach_listeners: List[Callable[..., Any]] = []
        m = self.metrics
        self._m_cpu = m.counter(
            "datacell_query_cpu_seconds_total",
            "Thread CPU attributed to each query at the firing boundary",
            ("query",),
        )
        self._m_rows_in = m.counter(
            "datacell_query_rows_in_total",
            "Tuples consumed from input baskets, per query",
            ("query",),
        )
        self._m_rows_out = m.counter(
            "datacell_query_rows_out_total",
            "Tuples produced into output baskets, per query",
            ("query",),
        )
        self._m_bytes_in = m.counter(
            "datacell_query_bytes_in_total",
            "Estimated bytes consumed from input baskets, per query",
            ("query",),
        )
        self._m_bytes_out = m.counter(
            "datacell_query_bytes_out_total",
            "Estimated bytes produced into output baskets, per query",
            ("query",),
        )
        self._m_wait = m.histogram(
            "datacell_query_queue_wait_seconds",
            "Time a consumed tuple sat in its basket before the plan ran",
            ("query",),
        )
        self._m_memory = m.gauge(
            "datacell_engine_memory_bytes",
            "Engine-wide estimated basket + plan-state footprint",
        )
        self._m_breaches = m.counter(
            "datacell_budget_breaches_total",
            "Resource-budget breach windows, per budget",
            ("budget",),
        )

    # ------------------------------------------------------------------
    # binding queries
    # ------------------------------------------------------------------
    def bind(self, handle: Any, tenant: str = "default") -> QueryResourceAccount:
        """Open an account for one registered continuous query."""
        account = QueryResourceAccount(handle.name, tenant)
        account.factory = handle.factory
        account.emitter = handle.emitter
        account.output_basket = handle.output_basket
        account.input_baskets = [
            b.basket for b in handle.factory.inputs
        ]
        account._m_cpu = self._m_cpu.labels(handle.name)
        account._m_rows_in = self._m_rows_in.labels(handle.name)
        account._m_rows_out = self._m_rows_out.labels(handle.name)
        account._m_bytes_in = self._m_bytes_in.labels(handle.name)
        account._m_bytes_out = self._m_bytes_out.labels(handle.name)
        account._m_wait = self._m_wait.labels(handle.name)
        with self._lock:
            self._accounts[handle.name] = account
            self._by_transition[handle.factory.name] = account
            self._by_transition[handle.emitter.name] = account
        return account

    def unbind(self, name: str) -> None:
        with self._lock:
            account = self._accounts.pop(name, None)
            if account is None:
                return
            for key in (
                account.factory.name if account.factory else None,
                account.emitter.name if account.emitter else None,
            ):
                if key is not None and self._by_transition.get(key) is account:
                    self._by_transition.pop(key, None)

    def account(self, name: str) -> Optional[QueryResourceAccount]:
        return self._accounts.get(name)

    def account_for(self, transition_name: str) -> Optional[QueryResourceAccount]:
        """The account a factory/emitter transition is bound to."""
        return self._by_transition.get(transition_name)

    def accounts(self) -> List[QueryResourceAccount]:
        with self._lock:
            return list(self._accounts.values())

    # ------------------------------------------------------------------
    # scheduler hook: firing-boundary CPU + the thread-local account
    # ------------------------------------------------------------------
    def begin_firing(self, transition_name: str):
        """Called by the scheduler just before ``activate()``.

        Returns an opaque token for :meth:`end_firing`, or ``None`` for
        transitions not bound to any account (receptors, the sampler) —
        the scheduler then skips ``end_firing`` entirely.
        """
        account = self._by_transition.get(transition_name)
        if account is None:
            return None
        self._tls.account = account
        return (
            account,
            transition_name,
            time.thread_time(),
            account.opcode_cpu_seconds,
        )

    def end_firing(self, token) -> None:
        """Close the firing boundary opened by :meth:`begin_firing`.

        The breakdown in ``account.opcode_cpu`` is kept *exhaustive*:
        whatever part of the firing's CPU the MAL interpreter did not
        claim as a real opcode (basket snapshots, consumption, emitter
        row conversion, interpreter bookkeeping) is folded into a
        synthetic ``engine.factory`` / ``engine.emitter`` bucket, so the
        per-bucket sum recovers the scheduler-measured total — the >=90%
        attribution contract pinned by ``tests/test_obs_resources.py``.
        """
        account, transition_name, cpu_start, opcodes_before = token
        delta = time.thread_time() - cpu_start
        account.cpu_seconds += delta
        account.firings += 1
        attributed = account.opcode_cpu_seconds - opcodes_before
        residual = delta - attributed
        if residual > 0:
            factory = account.factory
            stage = (
                "engine.factory"
                if factory is not None and transition_name == factory.name
                else "engine.emitter"
            )
            with self._lock:
                cpu = account.opcode_cpu
                cpu[stage] = cpu.get(stage, 0.0) + residual
        account._m_cpu.inc(delta)
        self._tls.account = None

    def current(self) -> Optional[QueryResourceAccount]:
        """The account of the transition firing on *this* thread."""
        return getattr(self._tls, "account", None)

    # ------------------------------------------------------------------
    # factory hook: plan CPU, queue-wait, flow counters
    # ------------------------------------------------------------------
    def record_activation(
        self,
        account: QueryResourceAccount,
        plan_cpu: float,
        queue_wait: float,
        waited_tuples: int,
        rows_in: int,
        rows_out: int,
        bytes_in: int,
        bytes_out: int,
    ) -> None:
        account.plan_cpu_seconds += plan_cpu
        account.queue_wait_seconds += queue_wait
        account.queue_wait_tuples += waited_tuples
        account.activations += 1
        account.rows_in += rows_in
        account.rows_out += rows_out
        account.bytes_in += bytes_in
        account.bytes_out += bytes_out
        if rows_in:
            account._m_rows_in.inc(rows_in)
            account._m_bytes_in.inc(bytes_in)
        if rows_out:
            account._m_rows_out.inc(rows_out)
            account._m_bytes_out.inc(bytes_out)
        if waited_tuples:
            account._m_wait.observe(queue_wait / waited_tuples)

    # ------------------------------------------------------------------
    # interpreter hook: per-opcode CPU fold
    # ------------------------------------------------------------------
    def fold_opcode_cpu(
        self,
        account: QueryResourceAccount,
        local: Dict[str, float],
        total: float,
    ) -> None:
        """Fold one program execution's per-opcode CPU into the account
        (called once per ``execute``, not per instruction)."""
        with self._lock:
            account.opcode_cpu_seconds += total
            cpu = account.opcode_cpu
            for key, seconds in local.items():
                cpu[key] = cpu.get(key, 0.0) + seconds

    # ------------------------------------------------------------------
    # memory rollup
    # ------------------------------------------------------------------
    def input_shares(self) -> Dict[str, int]:
        """How many accounts read each input basket (for fair shares)."""
        shares: Dict[str, int] = {}
        for account in self.accounts():
            for basket in account.input_baskets:
                key = basket.name.lower()
                shares[key] = shares.get(key, 0) + 1
        return shares

    def engine_memory_bytes(self) -> int:
        """Every basket plus every bound plan's state, engine-wide."""
        total = 0
        for basket in self.cell.catalog.baskets():
            total += int(basket.nbytes())
        for account in self.accounts():
            if account.factory is not None:
                total += plan_nbytes(account.factory.plan)
        return total

    # ------------------------------------------------------------------
    # budgets
    # ------------------------------------------------------------------
    def add_budget(self, budget: ResourceBudget) -> ResourceBudget:
        with self._lock:
            if budget.name in self.budgets:
                raise ObservabilityError(
                    f"budget {budget.name!r} already exists"
                )
            self.budgets[budget.name] = budget
        return budget

    def remove_budget(self, name: str) -> None:
        with self._lock:
            self.budgets.pop(name, None)

    def usage_for_scope(
        self, budget: ResourceBudget, deltas: Dict[str, Dict[str, float]]
    ) -> Dict[str, float]:
        """Aggregate per-sample deltas to the budget's scope."""
        if budget.query is not None:
            return deltas.get(budget.query, {})
        usage: Dict[str, float] = {
            "cpu_delta": 0.0, "memory_bytes": 0, "queue_wait_delta": 0.0,
        }
        for name, d in deltas.items():
            account = self._accounts.get(name)
            if account is None or account.tenant != budget.tenant:
                continue
            usage["cpu_delta"] += d.get("cpu_delta", 0.0)
            usage["memory_bytes"] += d.get("memory_bytes", 0)
            usage["queue_wait_delta"] += d.get("queue_wait_delta", 0.0)
        return usage

    def check_budgets(
        self, deltas: Dict[str, Dict[str, float]], tick: int
    ) -> List[Dict[str, Any]]:
        """Evaluate every budget against this tick's deltas.

        Returns one breach record per budget that *fires* this tick
        (first breached tick of a window); consecutive breached ticks
        return nothing for that budget.
        """
        fired: List[Dict[str, Any]] = []
        for budget in list(self.budgets.values()):
            usage = self.usage_for_scope(budget, deltas)
            exceeded = budget.evaluate(usage)
            if budget.record_tick(tick, bool(exceeded)):
                budget.breaches += 1
                record = {
                    "budget": budget.name,
                    "scope": budget.scope_key(),
                    "exceeded": exceeded,
                    "tick": tick,
                }
                budget.last_breach = record
                self._m_breaches.labels(budget.name).inc()
                if budget.callback is not None:
                    budget.callback(budget, record)
                for listener in list(self._breach_listeners):
                    listener(budget, record)
                fired.append(record)
        return fired

    def add_breach_listener(
        self, listener: Callable[[ResourceBudget, Dict[str, Any]], None]
    ) -> None:
        """Register an engine-level observer fired on every budget
        breach (after the budget's own callback)."""
        if listener not in self._breach_listeners:
            self._breach_listeners.append(listener)

    def remove_breach_listener(self, listener: Callable[..., Any]) -> None:
        if listener in self._breach_listeners:
            self._breach_listeners.remove(listener)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Structured snapshot for ``DataCell.stats()`` / the flight
        recorder; also refreshes the engine-wide memory gauge."""
        shares = self.input_shares()
        queries = {
            account.name: account.snapshot(shares)
            for account in self.accounts()
        }
        engine_memory = self.engine_memory_bytes()
        self._m_memory.set(engine_memory)
        return {
            "queries": queries,
            "engine": {
                "memory_bytes": engine_memory,
                "accounts": len(queries),
            },
            "budgets": {
                name: {
                    "scope": b.scope_key(),
                    "breaches": b.breaches,
                }
                for name, b in self.budgets.items()
            },
        }

    def top_rows(self, limit: int = 10) -> List[tuple]:
        """Ranked (by firing-boundary CPU) rows for ``DataCell.top()``."""
        shares = self.input_shares()
        ranked = sorted(
            self.accounts(), key=lambda a: -a.cpu_seconds
        )[: max(0, int(limit))]
        rows = []
        for a in ranked:
            avg_wait = (
                a.queue_wait_seconds / a.queue_wait_tuples
                if a.queue_wait_tuples
                else 0.0
            )
            rows.append((
                a.name,
                a.tenant,
                a.cpu_seconds * 1e3,
                a.plan_cpu_seconds * 1e3,
                a.opcode_cpu_seconds * 1e3,
                a.memory_bytes(shares) // 1024,
                avg_wait * 1e3,
                a.rows_in,
                a.rows_out,
                a.firings,
            ))
        return rows
