"""Bounded ring-buffer tracing of scheduler decisions and activations.

When a continuous-query network stalls or livelocks, counters tell you
*that* something is wrong; the trace tells you *what happened last*.  The
scheduler records one :class:`TraceEvent` per transition firing (and per
registration change); the ring buffer keeps the most recent ``capacity``
events at O(1) cost per record, so tracing can stay on in production.

Timestamps are ``time.monotonic()`` — traces order events, they do not
tell wall-clock time (see ``docs/observability.md``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = ["TraceEvent", "TraceLog"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded engine decision.

    ``kind`` is a small vocabulary ("fire", "register", "unregister",
    "shed", ...); ``component`` is the transition/basket name; ``detail``
    carries kind-specific numbers (tuples in/out, elapsed seconds...).
    """

    ts: float
    kind: str
    component: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        detail = " ".join(f"{k}={_fmt(v)}" for k, v in self.detail.items())
        return f"[{self.ts:.6f}] {self.kind:<10} {self.component:<20} {detail}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class TraceLog:
    """A thread-safe ring buffer of :class:`TraceEvent`.

    ``deque.append`` with a ``maxlen`` is atomic under the GIL, so the
    record path takes no lock; snapshot reads copy under a lock to get a
    consistent view while writers keep appending.
    """

    def __init__(self, capacity: int = 2048):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self._capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total_recorded = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def record(self, kind: str, component: str, **detail: Any) -> None:
        self._events.append(
            TraceEvent(time.monotonic(), kind, component, detail)
        )
        self.total_recorded += 1

    def events(
        self,
        kind: Optional[str] = None,
        component: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Oldest-first snapshot, optionally filtered."""
        with self._lock:
            snapshot = list(self._events)
        if kind is not None:
            snapshot = [e for e in snapshot if e.kind == kind]
        if component is not None:
            snapshot = [e for e in snapshot if e.component == component]
        return snapshot

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def render(self, last: int = 25) -> str:
        """The most recent ``last`` events as text (post-mortem view)."""
        events = self.events()[-last:]
        if not events:
            return "(trace empty)"
        return "\n".join(e.render() for e in events)
