"""The seed-controlled virtual scheduler.

:class:`SimScheduler` is a :class:`~repro.core.scheduler.Scheduler` whose
driving mode is *simulation*: it fires the exact transition objects of
the threaded mode (receptors, factories, emitters — unmodified), but one
activation at a time, in an order chosen by a pluggable firing policy,
against a :class:`~repro.core.clock.VirtualClock`.  Scripted input
arrives at scheduled virtual instants and is itself a schedulable choice,
so the policy explores interleavings of ingest and processing, not just
processing order.  The whole run — firing sequence, fault decisions,
timestamps — is a pure function of ``(seed, policy, fault plan, input
script)``, which is what makes an episode bit-reproducible and
shrinkable.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Tuple, Union,
)

from ..adapters.channels import Channel
from ..core.clock import VirtualClock
from ..core.scheduler import FiringPolicy, Scheduler
from ..errors import SchedulerError
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import TraceLog
from .faults import FaultableChannel, FaultPlan, InjectedFault
from .policies import make_policy

__all__ = ["InputEvent", "EpisodeResult", "SimScheduler", "INGEST"]

INGEST = "__ingest__"


@dataclass(frozen=True)
class InputEvent:
    """A scripted batch of events arriving at a virtual instant."""

    at: float
    channel: str
    events: Tuple[Any, ...]

    @staticmethod
    def make(at: float, channel: str, events: Sequence[Any]) -> "InputEvent":
        return InputEvent(float(at), channel, tuple(events))


@dataclass
class EpisodeResult:
    """What one simulated episode did, in a reproducibility-checkable form.

    ``firings`` records ``(transition, tuples_in, tuples_out)`` per
    activation, in order; injected exceptions appear as
    ``(name, -1, -1)`` and scripted ingest as ``(__ingest__, n, 0)``.
    ``signature()`` hashes the sequence (plus any basket digests attached
    by the harness) so two runs can be compared in one assertion.
    """

    firings: List[Tuple[str, int, int]] = field(default_factory=list)
    injected_exceptions: int = 0
    clock_end: float = 0.0
    basket_digests: Dict[str, str] = field(default_factory=dict)

    @property
    def total_firings(self) -> int:
        return len(self.firings)

    def firing_names(self) -> List[str]:
        return [name for name, _, _ in self.firings]

    def signature(self) -> str:
        parts = [repr(self.firings), repr(sorted(self.basket_digests.items()))]
        return hashlib.sha256("|".join(parts).encode()).hexdigest()


class _Raiser:
    """Stands in for a transition when the fault plan orders a crash.

    Carries the victim's name and priority so traces, metrics and the
    ``on_exception`` hook attribute the failure to the real transition;
    the victim's own state is untouched (the crash happens "before" its
    activation), so it stays enabled and retries on a later firing.
    """

    def __init__(self, victim) -> None:
        self.name = victim.name
        self.priority = victim.priority

    def enabled(self) -> bool:
        return True

    def activate(self):
        raise InjectedFault(f"injected fault in {self.name!r}")


class _IngestSource:
    """The scripted input presented as a schedulable transition.

    Giving ingest a seat at the policy's table is what lets episodes
    explore "input arrives mid-processing" interleavings.  Priority 0
    places it between receptors (10) and emitters (-10) by default, but
    any policy may of course ignore priorities entirely.
    """

    def __init__(self, sim: "SimScheduler") -> None:
        self.name = INGEST
        self.priority = 0
        self.sim = sim

    def enabled(self) -> bool:
        return self.sim._next_due_input() is not None

    def activate(self) -> int:
        return self.sim._deliver_next_input()


class SimScheduler(Scheduler):
    """Simulated driving mode: deterministic, one firing at a time.

    Accepts a policy name (``"random"``, ``"round-robin"``,
    ``"inverted"``, ``"priority"``, ``"starve:<name>"``) or a
    :class:`~repro.core.scheduler.FiringPolicy` instance.  Named random
    policies are seeded from ``seed``; the fault plan keeps its own
    stream.  ``start()`` is refused — a simulator that spawns threads
    would be a contradiction.
    """

    def __init__(
        self,
        seed: int = 0,
        policy: Union[str, FiringPolicy] = "random",
        clock: Optional[VirtualClock] = None,
        faults: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
    ):
        if isinstance(policy, str):
            policy_obj = make_policy(
                policy, random.Random(f"datacell-policy:{seed}")
            )
        else:
            policy_obj = policy
        super().__init__(metrics=metrics, trace=trace, policy=policy_obj)
        self.seed = seed
        self.clock = clock if clock is not None else VirtualClock()
        self.faults = faults
        self._ingest = _IngestSource(self)
        self._pending_inputs: List[InputEvent] = []
        self._channels: Dict[str, Channel] = {}
        self.result = EpisodeResult()

    # ------------------------------------------------------------------
    def start(self) -> None:
        raise SchedulerError(
            "SimScheduler drives transitions deterministically; "
            "threaded start() is not available in simulation"
        )

    def bind_channel(self, name: str, channel: Channel) -> None:
        """Register a channel scripted :class:`InputEvent`\\ s push into."""
        self._channels[name] = channel

    # ------------------------------------------------------------------
    # scripted input
    # ------------------------------------------------------------------
    def _next_due_input(self) -> Optional[InputEvent]:
        if not self._pending_inputs:
            return None
        head = self._pending_inputs[0]
        return head if head.at <= self.clock.now() else None

    def _deliver_next_input(self) -> int:
        event = self._pending_inputs.pop(0)
        try:
            channel = self._channels[event.channel]
        except KeyError:
            raise SchedulerError(
                f"episode input targets unbound channel {event.channel!r}"
            ) from None
        for item in event.events:
            channel.push(item)
        return len(event.events)

    # ------------------------------------------------------------------
    # one simulated firing
    # ------------------------------------------------------------------
    def sim_fire(self) -> Optional[str]:
        """Fire exactly one enabled transition (or deliver due input).

        Returns the fired transition's name, or ``None`` when nothing is
        enabled at the current virtual time.
        """
        candidates: List = [
            t for t in self.transitions() if t.enabled()
        ]
        if self._ingest.enabled():
            candidates.append(self._ingest)
        if not candidates:
            return None
        choice = self.policy.choose(candidates)
        if choice is self._ingest:
            delivered = self._deliver_next_input()
            self.result.firings.append((INGEST, delivered, 0))
            self.trace.record("ingest", INGEST, events=delivered)
            return INGEST
        if self.faults is not None and self.faults.should_raise(choice.name):
            try:
                self._fire(_Raiser(choice))
            except InjectedFault:
                pass
            self.result.firings.append((choice.name, -1, -1))
            self.result.injected_exceptions += 1
            return choice.name
        result = self._fire(choice)
        self.result.firings.append(
            (choice.name, result.tuples_in, result.tuples_out)
        )
        return choice.name

    # ------------------------------------------------------------------
    # episode driving
    # ------------------------------------------------------------------
    def run_episode(
        self,
        inputs: Sequence[InputEvent] = (),
        max_firings: int = 200_000,
        on_firing: Optional[Callable[[int], None]] = None,
    ) -> EpisodeResult:
        """Drive the network through a scripted episode to quiescence.

        Fires until no transition is enabled, no scripted input remains,
        and no fault-delayed batch is still in flight; between bursts the
        virtual clock jumps to the next instant something becomes due.
        Raises on livelock (``max_firings`` exceeded).

        ``on_firing`` (if given) is called with the running firing count
        after every successful firing; crash-injection harnesses raise
        from it to kill the episode at a chosen transition boundary.
        """
        self._pending_inputs = sorted(inputs, key=lambda e: e.at)
        fired = 0
        last_idle_state = None
        while True:
            if self.sim_fire() is not None:
                fired += 1
                last_idle_state = None
                if on_firing is not None:
                    on_firing(fired)
                if fired > max_firings:
                    raise SchedulerError(
                        f"episode did not quiesce within {max_firings} "
                        "firings (livelock?)"
                    )
                continue
            # nothing enabled now: advance virtual time to the next
            # scripted arrival, delayed-batch release, or timer
            horizons = [
                e.at for e in self._pending_inputs[:1]
            ]
            delayed = 0
            for channel in self._channels.values():
                if isinstance(channel, FaultableChannel):
                    horizons.append(channel.next_release())
                    delayed += channel.delayed_batches()
            horizons.append(self.clock.next_timer())
            horizon = min(
                (h for h in horizons if h != float("inf")), default=None
            )
            if horizon is None:
                break
            # guard against a horizon that cannot unblock anything (a
            # delayed batch with no receptor left, say): if a full idle
            # pass changed no observable state, the episode is done
            idle_state = (
                self.clock.now(),
                self.clock.pending_timers(),
                len(self._pending_inputs),
                delayed,
            )
            if idle_state == last_idle_state:
                break
            last_idle_state = idle_state
            # a due-now horizon means enablement was blocked on a timer
            # callback, not on time itself; set() fires those callbacks
            self.clock.set(max(horizon, self.clock.now()))
        self.result.clock_end = self.clock.now()
        return self.result

    def attach_digests(self, baskets) -> None:
        """Record basket end-state digests into the episode result."""
        for basket in baskets:
            self.result.basket_digests[basket.name] = basket.state_digest()
