"""Incremental-vs-re-eval differential gate: every episode, two engines.

The incremental subsystem's correctness claim (DBSP/Z-set theory made
executable): for any delivered stream, any firing order, and any
boundary fault, the incremental route must be *indistinguishable* from
re-evaluation —

* **linear** circuits emit row-for-row what the MAL re-eval route emits,
  and both satisfy the one-shot oracle;
* **aggregate/join** circuits emit weighted deltas whose integration at
  every quiescent point equals the one-shot query over everything
  delivered so far;
* **delta windows** (count and time geometry, in-order and out-of-order
  timestamps) emit the exact row sequence of the re-eval and naive
  baselines;
* **crash episodes** kill the incremental engine at a firing boundary
  and require recovered output to be byte-identical to an uninterrupted
  run (circuit state rides the checkpoint/WAL machinery).

Episodes are pure functions of ``(seed, kind, policy, fault plan)``;
a third get channel faults (drop/duplicate/reorder/delay) and a sixth
injected exceptions.  On failure the offending episode's input rows are
ddmin-shrunk — re-running the full differential check per candidate —
and a paste-back one-line repro is printed.

CLI (CI gate)::

    PYTHONPATH=src python -m repro.simtest.incremental --episodes 200 \\
        --seed 0 --out benchmarks/incremental_repro.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from collections import Counter
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..adapters.channels import Channel, InMemoryChannel
from ..core.engine import DataCell
from ..core.windows import WindowMode, WindowSpec
from ..incremental.zset import ZSet
from ..kernel.types import AtomType
from ..testing import current_seed
from .crash import CrashSpec, check_crash_episode
from .faults import FaultPlan, FaultableChannel
from .oracle import (
    CHANNEL,
    ORACLE_CASES,
    STREAM,
    EpisodeSpec,
    _quiet_metrics,
    check_episode,
    run_window_differential,
)
from .policies import policy_names
from .sim import InputEvent, SimScheduler

__all__ = [
    "AggCase",
    "AGG_CASES",
    "JOIN_CASE",
    "IncrementalEpisodeSpec",
    "IncrementalResult",
    "check_incremental_episode",
    "shrink_incremental_episode",
    "render_incremental_repro",
    "incremental_episode_spec",
    "EPISODE_KINDS",
]

Row = Tuple[int, ...]


@dataclass(frozen=True)
class AggCase:
    """A weighted-output aggregate query with its one-shot twin."""

    name: str
    continuous_sql: str
    oneshot_sql: str


AGG_CASES: Dict[str, AggCase] = {
    case.name: case
    for case in (
        AggCase(
            "agg_grouped",
            "select x.a, sum(x.b), count(x.b), min(x.b), max(x.b) "
            "from [select * from feed] as x group by x.a",
            "select a, sum(b), count(b), min(b), max(b) "
            "from feed group by a",
        ),
        AggCase(
            "agg_filtered",
            "select x.a, sum(x.b), avg(x.b) from [select * from feed] as x "
            "where x.b > 2 group by x.a",
            "select a, sum(b), avg(b) from feed where b > 2 group by a",
        ),
        AggCase(
            "agg_global",
            "select count(*), sum(x.b), min(x.b) "
            "from [select * from feed] as x",
            "select count(*), sum(b), min(b) from feed",
        ),
    )
}

#: the two-stream equi-join circuit and its one-shot twin
JOIN_CASE = (
    "select x.k, x.a, y.b from [select * from jleft] as x, "
    "[select * from jright] as y where x.k = y.k",
    "select jleft.k, jleft.a, jright.b from jleft, jright "
    "where jleft.k = jright.k",
)

EPISODE_KINDS = (
    "linear",
    "aggregate",
    "join",
    "window_count",
    "window_time",
    "crash",
)

WINDOW_GEOMETRIES = ((5, 2), (4, 4), (8, 3), (30, 10), (1, 1))
TIME_GEOMETRIES = ((8.0, 2.0), (5.0, 5.0), (12.0, 3.0))
WINDOW_AGGREGATES = (
    ["sum"], ["count"], ["avg"], ["min"], ["max"],
    ["sum", "count", "min", "max"],
)


@dataclass(frozen=True)
class IncrementalEpisodeSpec:
    """Everything that determines one incremental differential episode."""

    seed: int
    kind: str  # one of EPISODE_KINDS
    rows: Tuple[Row, ...]
    # join kind: the right-stream rows (left stream uses ``rows``)
    right_rows: Tuple[Row, ...] = ()
    case: str = "filter"  # linear: ORACLE_CASES; aggregate: AGG_CASES
    policy: str = "random"
    batch_size: int = 3
    time_step: float = 0.25
    batch_fault_rate: float = 0.0
    exception_rate: float = 0.0
    window: Tuple[float, float] = (5, 2)
    aggregates: Tuple[str, ...] = ("sum",)
    grouped: bool = False
    #: window_time only: max seconds a timestamp lags the stream head
    disorder: float = 0.0
    crash_after: int = 5
    checkpoint_every: Optional[int] = None


@dataclass
class IncrementalResult:
    """Verdict of one incremental-vs-re-eval episode."""

    spec: IncrementalEpisodeSpec
    ok: bool
    detail: str = ""

    def explain(self) -> str:
        if self.ok:
            return "incremental ≡ re-eval"
        return (
            f"incremental != re-eval for "
            f"{render_incremental_repro(self.spec)}: {self.detail}"
        )


def render_incremental_repro(spec: IncrementalEpisodeSpec) -> str:
    """One-line repro: paste back as
    ``check_incremental_episode(IncrementalEpisodeSpec(...))``."""
    return (
        f"IncrementalEpisodeSpec(seed={spec.seed}, kind={spec.kind!r}, "
        f"case={spec.case!r}, policy={spec.policy!r}, "
        f"batch_size={spec.batch_size}, "
        f"batch_fault_rate={spec.batch_fault_rate}, "
        f"exception_rate={spec.exception_rate}, window={spec.window}, "
        f"aggregates={spec.aggregates}, grouped={spec.grouped}, "
        f"disorder={spec.disorder}, crash_after={spec.crash_after}, "
        f"checkpoint_every={spec.checkpoint_every}, "
        f"rows={list(spec.rows)!r}, right_rows={list(spec.right_rows)!r})"
    )


def _integrate(weighted_rows: Sequence[Row]) -> Optional[List[Row]]:
    """Fold weighted output rows; None when a net weight is negative."""
    z = ZSet()
    for row in weighted_rows:
        z.add(tuple(row[:-1]), int(row[-1]))
    try:
        return z.to_rows()
    except Exception:
        return None


# ----------------------------------------------------------------------
# kind: linear — the PR 3 oracle on both routes
# ----------------------------------------------------------------------
def _check_linear(spec: IncrementalEpisodeSpec) -> IncrementalResult:
    base = EpisodeSpec(
        seed=spec.seed,
        rows=spec.rows,
        case=spec.case,
        policy=spec.policy,
        batch_size=spec.batch_size,
        time_step=spec.time_step,
        batch_fault_rate=spec.batch_fault_rate,
        exception_rate=spec.exception_rate,
    )
    for execution in ("incremental", "reeval"):
        result = check_episode(replace(base, execution=execution))
        if not result.ok:
            return IncrementalResult(
                spec, False, f"[{execution}] {result.explain()}"
            )
        if execution == "incremental":
            inc_multiset = result.streaming
        else:
            ree_multiset = result.streaming
    # with a fault-free channel both routes saw the same delivered
    # stream, so their outputs must be the same multiset outright
    if spec.batch_fault_rate == 0 and spec.exception_rate == 0:
        if inc_multiset != ree_multiset:
            return IncrementalResult(
                spec,
                False,
                f"route outputs differ: incremental={dict(inc_multiset)} "
                f"reeval={dict(ree_multiset)}",
            )
    return IncrementalResult(spec, True)


# ----------------------------------------------------------------------
# kinds: aggregate / join — integrate(deltas) ≡ one-shot
# ----------------------------------------------------------------------
def _simulated_cell(
    spec: IncrementalEpisodeSpec, channels: Sequence[str]
) -> Tuple[SimScheduler, DataCell, Dict[str, Channel]]:
    faults = (
        FaultPlan(
            seed=spec.seed,
            batch_fault_rate=spec.batch_fault_rate,
            exception_rate=spec.exception_rate,
            delay_seconds=spec.time_step * 2,
        )
        if spec.batch_fault_rate > 0 or spec.exception_rate > 0
        else None
    )
    metrics = _quiet_metrics()
    sim = SimScheduler(
        seed=spec.seed, policy=spec.policy, faults=faults, metrics=metrics
    )
    cell = DataCell(clock=sim.clock, scheduler=sim, metrics=metrics)
    wrapped: Dict[str, Channel] = {}
    for name in channels:
        channel: Channel = InMemoryChannel(name)
        if faults is not None:
            channel = FaultableChannel(channel, faults, sim.clock)
        sim.bind_channel(name, channel)
        wrapped[name] = channel
    return sim, cell, wrapped


def _delivered(channel: Channel, sent: Sequence[Row]) -> List[Row]:
    if isinstance(channel, FaultableChannel):
        return [tuple(e) for e in channel.delivered]
    return [tuple(r) for r in sent]


def _script(
    rows: Sequence[Row], channel: str, batch_size: int, time_step: float,
    phase: float = 0.0,
) -> List[InputEvent]:
    return [
        InputEvent.make(
            at=(i // batch_size) * time_step + phase,
            channel=channel,
            events=rows[i : i + batch_size],
        )
        for i in range(0, len(rows), batch_size)
    ]


def _compare_multisets(
    spec: IncrementalEpisodeSpec,
    integrated: Optional[List[Row]],
    oneshot: List[Row],
) -> IncrementalResult:
    if integrated is None:
        return IncrementalResult(
            spec, False, "integrated delta output has negative weights"
        )
    left, right = Counter(integrated), Counter(oneshot)
    if left != right:
        return IncrementalResult(
            spec,
            False,
            f"missing={dict(right - left)} extra={dict(left - right)}",
        )
    return IncrementalResult(spec, True)


def _check_aggregate(spec: IncrementalEpisodeSpec) -> IncrementalResult:
    case = AGG_CASES[spec.case]
    sim, cell, channels = _simulated_cell(spec, [CHANNEL])
    cell.create_basket(
        STREAM, [("a", AtomType.INT), ("b", AtomType.INT)]
    )
    cell.add_receptor("tap", [STREAM], channel=channels[CHANNEL])
    handle = cell.submit_continuous(
        case.continuous_sql, execution="incremental"
    )
    if cell.incremental_fallbacks:
        return IncrementalResult(
            spec, False, f"unexpected fallback: {cell.incremental_fallbacks}"
        )
    sim.run_episode(
        _script(spec.rows, CHANNEL, spec.batch_size, spec.time_step)
    )
    integrated = _integrate(handle.fetch())
    delivered = _delivered(channels[CHANNEL], spec.rows)
    ref = DataCell(metrics=_quiet_metrics())
    table = ref.create_table(
        STREAM, [("a", AtomType.INT), ("b", AtomType.INT)]
    )
    if delivered:
        table.append_rows([list(r) for r in delivered])
    oneshot = [tuple(r) for r in ref.execute(case.oneshot_sql).rows()]
    return _compare_multisets(spec, integrated, oneshot)


def _check_join(spec: IncrementalEpisodeSpec) -> IncrementalResult:
    continuous_sql, oneshot_sql = JOIN_CASE
    sim, cell, channels = _simulated_cell(spec, ["lwire", "rwire"])
    cell.create_basket("jleft", [("k", AtomType.INT), ("a", AtomType.INT)])
    cell.create_basket("jright", [("k", AtomType.INT), ("b", AtomType.INT)])
    cell.add_receptor("ltap", ["jleft"], channel=channels["lwire"])
    cell.add_receptor("rtap", ["jright"], channel=channels["rwire"])
    handle = cell.submit_continuous(continuous_sql, execution="incremental")
    if cell.incremental_fallbacks:
        return IncrementalResult(
            spec, False, f"unexpected fallback: {cell.incremental_fallbacks}"
        )
    events = _script(
        spec.rows, "lwire", spec.batch_size, spec.time_step
    ) + _script(
        spec.right_rows, "rwire", spec.batch_size, spec.time_step,
        phase=spec.time_step / 2,
    )
    sim.run_episode(events)
    integrated = _integrate(handle.fetch())
    ref = DataCell(metrics=_quiet_metrics())
    for name, cols, channel, sent in (
        ("jleft", [("k", AtomType.INT), ("a", AtomType.INT)],
         channels["lwire"], spec.rows),
        ("jright", [("k", AtomType.INT), ("b", AtomType.INT)],
         channels["rwire"], spec.right_rows),
    ):
        table = ref.create_table(name, cols)
        delivered = _delivered(channel, sent)
        if delivered:
            table.append_rows([list(r) for r in delivered])
    oneshot = [tuple(r) for r in ref.execute(oneshot_sql).rows()]
    return _compare_multisets(spec, integrated, oneshot)


# ----------------------------------------------------------------------
# kind: window_count — delta plan vs the naive per-tuple oracle
# ----------------------------------------------------------------------
def _check_window_count(spec: IncrementalEpisodeSpec) -> IncrementalResult:
    size, slide = int(spec.window[0]), int(spec.window[1])
    rows = [r[0] for r in spec.rows]
    for execution in ("incremental", "basic"):
        streaming, naive, _ = run_window_differential(
            size,
            slide,
            rows,
            aggregate=spec.aggregates[0],
            seed=spec.seed,
            policy=spec.policy,
            batch_size=spec.batch_size,
            batch_fault_rate=spec.batch_fault_rate,
            execution=execution,
        )
        if streaming != naive:
            return IncrementalResult(
                spec,
                False,
                f"[{execution}] {streaming} != naive {naive}",
            )
    return IncrementalResult(spec, True)


# ----------------------------------------------------------------------
# kind: window_time — out-of-order stamps, delta vs re-eval plan
# ----------------------------------------------------------------------
def _run_time_window(
    spec: IncrementalEpisodeSpec, execution: str
) -> List[Row]:
    """Direct (simulator-free) seeded drive with explicit timestamps.

    Out-of-order arrival needs explicit stamps — receptor ingest always
    stamps "now" — so this kind bypasses channels and inserts straight
    into the basket, firing to quiescence on a seeded cadence.  Both
    routes see the identical stamped sequence.
    """
    size, slide = spec.window
    cell = DataCell(metrics=_quiet_metrics())
    cell.create_basket("s", [("v", AtomType.LNG), ("g", AtomType.STR)])
    handle = cell.submit_window_aggregate(
        "s",
        "v",
        list(spec.aggregates),
        WindowSpec(WindowMode.TIME, size, slide),
        group_by="g" if spec.grouped else None,
        execution=execution,
        name="w",
    )
    basket = cell.basket("s")
    rng = random.Random(f"datacell-time-window:{spec.seed}")
    out: List[Row] = []
    t = 100.0
    for i, row in enumerate(spec.rows):
        v, g = row[0], "g" + str(row[1] % 3)
        t += rng.random() * (slide / 2)
        stamp = t - (rng.random() * spec.disorder if spec.disorder else 0.0)
        basket.insert_rows([[v, g]], timestamp=stamp)
        if i % spec.batch_size == 0:
            cell.run_until_quiescent()
            out.extend(tuple(r) for r in handle.fetch())
    cell.run_until_quiescent()
    out.extend(tuple(r) for r in handle.fetch())
    return out


def _check_window_time(spec: IncrementalEpisodeSpec) -> IncrementalResult:
    inc = _run_time_window(spec, "incremental")
    ree = _run_time_window(spec, "reeval")
    if inc != ree:
        diverge = next(
            (i for i, (a, b) in enumerate(zip(inc, ree)) if a != b),
            min(len(inc), len(ree)),
        )
        return IncrementalResult(
            spec,
            False,
            f"row {diverge}: incremental={inc[diverge:diverge + 3]} "
            f"reeval={ree[diverge:diverge + 3]} "
            f"(lengths {len(inc)}/{len(ree)})",
        )
    return IncrementalResult(spec, True)


# ----------------------------------------------------------------------
# kind: crash — incremental state through kill-and-restart
# ----------------------------------------------------------------------
def _check_crash(spec: IncrementalEpisodeSpec) -> IncrementalResult:
    crash = CrashSpec(
        seed=spec.seed,
        rows=spec.rows if spec.case != "window"
        else tuple((r[0],) for r in spec.rows),
        case=spec.case,
        policy=spec.policy,
        batch_size=spec.batch_size,
        crash_after=spec.crash_after,
        checkpoint_every=spec.checkpoint_every,
        window=(int(spec.window[0]), int(spec.window[1])),
        window_aggregate=spec.aggregates[0],
        execution="incremental",
    )
    result = check_crash_episode(crash)
    if not result.ok:
        return IncrementalResult(spec, False, result.explain())
    return IncrementalResult(spec, True)


_CHECKERS: Dict[
    str, Callable[[IncrementalEpisodeSpec], IncrementalResult]
] = {
    "linear": _check_linear,
    "aggregate": _check_aggregate,
    "join": _check_join,
    "window_count": _check_window_count,
    "window_time": _check_window_time,
    "crash": _check_crash,
}


def check_incremental_episode(
    spec: IncrementalEpisodeSpec,
) -> IncrementalResult:
    """Run one differential episode of the spec's kind."""
    return _CHECKERS[spec.kind](spec)


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def shrink_incremental_episode(
    spec: IncrementalEpisodeSpec, max_attempts: int = 300
) -> Tuple[IncrementalEpisodeSpec, int]:
    """ddmin the failing episode's rows; returns (smallest spec, attempts).

    Faults and the random policy are dropped first when the failure
    survives without them, then both row streams are greedily chunked
    down — every candidate re-runs the full differential check.
    """
    attempts = 0

    def fails(candidate: IncrementalEpisodeSpec) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return not check_incremental_episode(candidate).ok

    current = spec
    for simpler in (
        replace(current, batch_fault_rate=0.0, exception_rate=0.0),
        replace(current, policy="priority"),
        replace(current, disorder=0.0),
    ):
        if simpler != current and fails(simpler):
            current = simpler

    def ddmin(field: str) -> None:
        nonlocal current
        rows = list(getattr(current, field))
        chunk = max(1, len(rows) // 2)
        while True:
            i = 0
            while i < len(rows):
                candidate = rows[:i] + rows[i + chunk :]
                trial = replace(current, **{field: tuple(candidate)})
                if candidate and fails(trial):
                    rows = candidate
                    current = trial
                else:
                    i += chunk
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)

    ddmin("rows")
    if current.right_rows:
        ddmin("right_rows")
    return current, attempts


# ----------------------------------------------------------------------
# seeded episode generation (CLI + CI gate)
# ----------------------------------------------------------------------
def incremental_episode_spec(
    index: int, base_seed: int
) -> IncrementalEpisodeSpec:
    """Deterministic episode ``index`` of a run with ``base_seed``.

    Cycles the six kinds; within each kind, cases / geometries /
    aggregates / policies cycle and everything else derives from the
    seed.  A third of eligible episodes get channel faults, a sixth
    injected exceptions; every other time-window episode is
    out-of-order.
    """
    seed = base_seed + index
    rng = random.Random(f"datacell-incremental-episode:{seed}")
    kind = EPISODE_KINDS[index % len(EPISODE_KINDS)]
    cycle = index // len(EPISODE_KINDS)
    policies = list(policy_names()) + ["starve:tap"]
    n = rng.randint(6, 60)
    rows = tuple(
        (rng.randint(-5, 30), rng.randint(0, 10)) for _ in range(n)
    )
    spec = IncrementalEpisodeSpec(
        seed=seed,
        kind=kind,
        rows=rows,
        policy=policies[cycle % len(policies)]
        if kind != "crash"
        else list(policy_names())[cycle % len(policy_names())],
        batch_size=rng.choice((1, 2, 3, 5, 8)),
        batch_fault_rate=(
            0.3
            if cycle % 3 == 0 and kind in ("linear", "aggregate", "join",
                                           "window_count")
            else 0.0
        ),
        exception_rate=(
            0.15
            if cycle % 6 == 3 and kind in ("linear", "aggregate", "join")
            else 0.0
        ),
    )
    if kind == "linear":
        cases = sorted(ORACLE_CASES)
        return replace(spec, case=cases[cycle % len(cases)])
    if kind == "aggregate":
        cases = sorted(AGG_CASES)
        return replace(spec, case=cases[cycle % len(cases)])
    if kind == "join":
        m = rng.randint(4, 40)
        return replace(
            spec,
            rows=tuple(
                (rng.randint(0, 8), rng.randint(0, 20)) for _ in range(n)
            ),
            right_rows=tuple(
                (rng.randint(0, 8), rng.randint(0, 20)) for _ in range(m)
            ),
        )
    if kind == "window_count":
        size, slide = WINDOW_GEOMETRIES[cycle % len(WINDOW_GEOMETRIES)]
        return replace(
            spec,
            window=(size, slide),
            aggregates=tuple(
                WINDOW_AGGREGATES[cycle % len(WINDOW_AGGREGATES)][:1]
            ),
            rows=tuple(
                (rng.randint(0, 50),)
                for _ in range(rng.randint(size, 80))
            ),
        )
    if kind == "window_time":
        size, slide = TIME_GEOMETRIES[cycle % len(TIME_GEOMETRIES)]
        return replace(
            spec,
            window=(size, slide),
            aggregates=tuple(
                WINDOW_AGGREGATES[cycle % len(WINDOW_AGGREGATES)]
            ),
            grouped=cycle % 2 == 0,
            disorder=(slide * 2.5) if cycle % 2 == 1 else 0.0,
            rows=tuple(
                (rng.randint(0, 50), rng.randint(0, 5))
                for _ in range(rng.randint(10, 70))
            ),
        )
    # crash: cycle the oracle cases plus the delta-window case
    cases = sorted(ORACLE_CASES) + ["window"]
    case = cases[cycle % len(cases)]
    batch = spec.batch_size
    est_firings = max(3, 3 * (len(rows) // batch + 1))
    size, slide = WINDOW_GEOMETRIES[cycle % len(WINDOW_GEOMETRIES)]
    return replace(
        spec,
        case=case,
        window=(size, slide),
        aggregates=(
            ("sum", "count", "avg", "min", "max")[cycle % 5],
        ),
        crash_after=rng.randint(1, est_firings),
        checkpoint_every=rng.choice((None, 2, 4, 7)),
        batch_fault_rate=0.0,
        exception_rate=0.0,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded incremental-vs-re-eval differential episodes"
    )
    parser.add_argument("--episodes", type=int, default=200)
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed (default: DATACELL_SEED via repro.testing)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write a JSON repro artifact here on failure",
    )
    parser.add_argument(
        "--kind",
        choices=EPISODE_KINDS,
        default=None,
        help="restrict to one episode kind (debugging aid)",
    )
    args = parser.parse_args(argv)
    if args.seed is None:
        args.seed = current_seed()

    failures: List[str] = []
    shrunk_artifact = None
    per_kind: Counter = Counter()
    for index in range(args.episodes):
        spec = incremental_episode_spec(index, args.seed)
        if args.kind is not None and spec.kind != args.kind:
            continue
        per_kind[spec.kind] += 1
        result = check_incremental_episode(spec)
        if result.ok:
            continue
        failures.append(result.explain())
        if shrunk_artifact is None:
            shrunk, attempts = shrink_incremental_episode(spec)
            shrunk_artifact = {
                "repro": render_incremental_repro(shrunk),
                "original": render_incremental_repro(spec),
                "shrink_attempts": attempts,
            }
            print(f"shrunk repro ({attempts} attempts):")
            print(f"  {shrunk_artifact['repro']}")
    ran = sum(per_kind.values())
    print(
        f"incremental simtest: {ran - len(failures)}/{ran} episodes "
        f"passed (base seed {args.seed}; "
        + ", ".join(f"{k}={v}" for k, v in sorted(per_kind.items()))
        + ")"
    )
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures and args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"failures": failures, "shrunk": shrunk_artifact},
                handle,
                indent=2,
            )
        print(f"repro artifact written to {args.out}", file=sys.stderr)
    return min(len(failures), 125)


if __name__ == "__main__":
    sys.exit(main())
