"""Driving simulated episodes through the server's ingest-queue seam.

The network front door (:mod:`repro.server`) touches the engine in
exactly one place: decoded ``INSERT`` frames become
:class:`~repro.server.ingest.IngestBatch` items on an
:class:`~repro.server.ingest.IngestQueue`, drained by the
:class:`~repro.server.ingest.ServerIngestPump` transition.  Because the
pump is an ordinary transition, the simulated scheduler can drive the
whole network path without sockets or an event loop: a
:class:`WireIngress` transition polls the episode's scripted channel
(through the fault proxy, so batch faults still apply), round-trips each
batch through the *real* wire encoding — ``insert_message`` →
``encode_message`` → :class:`~repro.server.protocol.FrameDecoder` — and
enqueues the decoded batches for the pump.

With ``EpisodeSpec(via_server=True)`` the differential oracle runs the
streaming side through this path, extending the streaming ≡ one-shot
claim over frame encoding, decoding, and the queue seam itself.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence, Tuple

from ..adapters.channels import Channel
from ..core.factory import ActivationResult
from ..kernel.types import AtomType
from ..server.ingest import IngestBatch, IngestQueue, ServerIngestPump
from ..server.protocol import (
    FrameDecoder,
    Message,
    encode_message,
    insert_message,
)

__all__ = ["WireIngress", "attach_server_ingress"]

ColumnSpec = Tuple[str, AtomType]


class WireIngress:
    """The simulated wire: channel events → real frames → ingest queue.

    Takes the receptor's place in a server-path episode.  Priority 10,
    like a receptor — ingest drains ahead of queries.  Every polled
    batch is encoded into one ``INSERT`` frame and decoded back through
    the stateful :class:`FrameDecoder` before it reaches the queue, so a
    wire-format bug breaks the oracle exactly like an engine bug would.
    """

    def __init__(
        self,
        channel: Channel,
        basket: str,
        columns: Sequence[ColumnSpec],
        queue: IngestQueue,
        batch_size: int = 1024,
        tenant: str = "default",
        replies: Optional[List[Message]] = None,
        name: str = "server_wire",
        priority: int = 10,
    ):
        self.channel = channel
        self.basket = basket
        self.columns = list(columns)
        self.queue = queue
        self.batch_size = batch_size
        self.tenant = tenant
        #: ACK/ERROR messages the pump sent back (assertable in tests)
        self.replies: List[Message] = replies if replies is not None else []
        self.name = name
        self.priority = priority
        self.decoder = FrameDecoder()
        self.activations = 0
        self.frames_sent = 0
        self._seq = 0

    def enabled(self) -> bool:
        return self.channel.pending() > 0

    def activate(self) -> ActivationResult:
        started = time.perf_counter()
        events = self.channel.poll(self.batch_size)
        queued = 0
        if events:
            self._seq += 1
            frame = encode_message(
                insert_message(
                    self.basket,
                    self.columns,
                    [tuple(e) for e in events],
                    seq=self._seq,
                )
            )
            self.frames_sent += 1
            for message in self.decoder.feed(frame):
                assert message.columns is not None
                assert message.arrays is not None
                self.queue.put(
                    IngestBatch(
                        str(message.meta["basket"]),
                        message.columns,
                        message.arrays,
                        message.row_count,
                        seq=message.meta.get("seq"),
                        tenant=self.tenant,
                        reply=self.replies.append,
                    )
                )
                queued += message.row_count
        self.activations += 1
        return ActivationResult(
            fired=True,
            tuples_in=len(events),
            tuples_out=queued,
            consumed=len(events),
            elapsed=time.perf_counter() - started,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WireIngress({self.basket!r}, "
            f"pending={self.channel.pending()})"
        )


def attach_server_ingress(
    cell: Any,
    channel: Channel,
    basket: str,
    columns: Sequence[ColumnSpec],
    batch_size: int = 1024,
    tenant: str = "default",
) -> WireIngress:
    """Wire a cell for server-path ingest: registers a
    :class:`WireIngress` plus the real :class:`ServerIngestPump` with
    the cell's scheduler and returns the ingress (its ``replies`` list
    collects the pump's ACKs)."""
    queue = IngestQueue()
    ingress = WireIngress(
        channel, basket, columns, queue,
        batch_size=batch_size, tenant=tenant,
    )
    pump = ServerIngestPump(cell, queue, batch_limit=batch_size)
    cell.scheduler.register(ingress)
    cell.scheduler.register(pump)
    return ingress
