"""Fault injection at basket boundaries and inside transitions.

The fault matrix (see ``docs/testing.md``):

=========  ==================================================================
``drop``       a polled batch vanishes before reaching the basket
``duplicate``  a polled batch is delivered twice back to back
``reorder``    the tuples of a polled batch arrive shuffled
``delay``      a polled batch is held back for a stretch of *virtual* time
``raise``      a transition activation raises :class:`InjectedFault` instead
               of running (exercising ``Scheduler.on_exception``, the trace
               'error' path, and the flight recorder)
=========  ==================================================================

All decisions come from a :class:`FaultPlan` seeded independently of the
firing policy, so ``(seed, policy, fault plan)`` fully determines an
episode.  The plan also keeps the authoritative ``delivered`` log — what
actually crossed the boundary after faults — which is what the
differential oracle accumulates for its one-shot replay: a dropped batch
must be missing from *both* sides, a duplicated one present twice on
both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..adapters.channels import Channel
from ..core.clock import Clock
from ..errors import DataCellError

__all__ = ["InjectedFault", "FaultRecord", "FaultPlan", "FaultableChannel"]

BATCH_FAULT_KINDS = ("drop", "duplicate", "reorder", "delay")


class InjectedFault(DataCellError):
    """Raised by the simulator inside a transition on the plan's orders."""


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually happened, for post-mortems and shrinking."""

    kind: str
    where: str  # channel or transition name
    detail: str = ""


class FaultPlan:
    """Seeded fault decisions.

    ``batch_fault_rate`` is the probability a polled batch suffers one of
    the four batch faults; ``exception_rate`` the probability a chosen
    transition raises instead of activating.  The plan's generator is
    seeded from a string (stable across processes, unlike ``hash``), and
    consumed in simulation order, so identical episodes replay identical
    faults.
    """

    def __init__(
        self,
        seed: int = 0,
        batch_fault_rate: float = 0.0,
        exception_rate: float = 0.0,
        delay_seconds: float = 1.0,
        kinds: Sequence[str] = BATCH_FAULT_KINDS,
    ):
        for kind in kinds:
            if kind not in BATCH_FAULT_KINDS:
                raise DataCellError(f"unknown batch fault kind {kind!r}")
        self.seed = seed
        self.batch_fault_rate = batch_fault_rate
        self.exception_rate = exception_rate
        self.delay_seconds = delay_seconds
        self.kinds = tuple(kinds)
        self._rng = random.Random(f"datacell-faultplan:{seed}")
        self.log: List[FaultRecord] = []

    # ------------------------------------------------------------------
    def batch_action(self, channel: str, size: int) -> Optional[str]:
        """Decide the fate of one polled batch; records what it chose."""
        if not self.kinds or self._rng.random() >= self.batch_fault_rate:
            return None
        kind = self._rng.choice(self.kinds)
        self.log.append(FaultRecord(kind, channel, f"batch of {size}"))
        return kind

    def should_raise(self, transition: str) -> bool:
        """Decide whether this activation raises :class:`InjectedFault`."""
        if self._rng.random() >= self.exception_rate:
            return False
        self.log.append(FaultRecord("raise", transition))
        return True

    def shuffle(self, items: List[Any]) -> None:
        self._rng.shuffle(items)

    def describe(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, "
            f"batch_fault_rate={self.batch_fault_rate}, "
            f"exception_rate={self.exception_rate}, "
            f"delay_seconds={self.delay_seconds}, kinds={self.kinds})"
        )


class FaultableChannel(Channel):
    """A channel proxy applying the plan's batch faults at poll time.

    Poll time is the basket boundary: whatever this returns is what the
    receptor validates and appends, so faults here model the network or
    the ingest queue misbehaving.  Delayed batches are released against
    the *virtual* clock; :meth:`next_release` lets the simulator advance
    time to the earliest release when the network is otherwise quiescent.
    """

    def __init__(self, inner: Channel, plan: FaultPlan, clock: Clock):
        self.inner = inner
        self.plan = plan
        self.clock = clock
        self.name = getattr(inner, "name", "channel")
        # (release_at, events) in release order; list stays tiny in sims
        self._delayed: List[Tuple[float, List[Any]]] = []
        # post-fault ground truth: every event actually handed to poll()
        self.delivered: List[Any] = []

    # ------------------------------------------------------------------
    def push(self, event: Any) -> None:
        self.inner.push(event)

    def push_many(self, events: Sequence[Any]) -> None:
        for event in events:
            self.push(event)

    def pending(self) -> int:
        now = self.clock.now()
        due = sum(len(ev) for at, ev in self._delayed if at <= now)
        return self.inner.pending() + due

    def next_release(self) -> float:
        """Earliest virtual time a delayed batch becomes due (+inf if none)."""
        return min((at for at, _ in self._delayed), default=float("inf"))

    def delayed_batches(self) -> int:
        """Batches currently held back by a delay fault."""
        return len(self._delayed)

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    # ------------------------------------------------------------------
    def poll(self, max_items: int = 1024) -> List[Any]:
        now = self.clock.now()
        for i, (at, events) in enumerate(self._delayed):
            if at <= now:
                # released batches bypass further faulting: one fault per
                # batch keeps the plan's log readable and shrinkable
                del self._delayed[i]
                self.delivered.extend(events)
                return events
        events = self.inner.poll(max_items)
        if not events:
            return events
        action = self.plan.batch_action(self.name, len(events))
        if action == "drop":
            return []
        if action == "duplicate":
            events = events + events
        elif action == "reorder":
            self.plan.shuffle(events)
        elif action == "delay":
            self._delayed.append(
                (now + self.plan.delay_seconds, events)
            )
            return []
        self.delivered.extend(events)
        return events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultableChannel({self.name!r}, pending={self.pending()}, "
            f"delayed_batches={len(self._delayed)})"
        )
