"""Kill-and-restart differential: recovered output ≡ uninterrupted output.

The durability subsystem's correctness claim is byte-identical delivery
across a crash: for any seeded episode, killing the engine at an
arbitrary firing boundary, recovering from the newest checkpoint plus
the WAL suffix, and feeding the rest of the stream must deliver exactly
the rows an uninterrupted run of the same episode delivers — no loss,
no duplicates, same values, same order (window results ordered by
window index, like the PR 3 oracle).

Each episode runs three phases over one scratch durability directory:

1. **reference** — the same spec without durability, run to quiescence;
2. **crash** — durability on, a firing hook raises
   :class:`SimulatedCrash` after ``crash_after`` firings (optionally
   checkpointing every ``checkpoint_every`` firings first), then the
   manager is *abandoned* — closed with no final fsync, exactly what a
   process kill leaves on disk;
3. **recovery** — a fresh engine with the identical topology calls
   :meth:`DataCell.recover`, drains the replayed in-flight work, and
   ingests the suffix of the stream the dead process never saw
   (``rows[total_in:]`` — ingest is FIFO, so the restored ``total_in``
   counter is the resume point).

``pre_crash + post_recovery == reference`` is then required to hold
exactly.  Crashes land on firing boundaries, where exactly-once holds;
the mid-delivery at-most-once edge is documented in
``docs/durability.md``.  Only COUNT windows are exercised — a restarted
virtual clock makes TIME geometry stamps legitimately diverge.

CLI (CI gate)::

    PYTHONPATH=src python -m repro.simtest.crash --episodes 100 \\
        --seed 0 --out benchmarks/crash_repro.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from ..adapters.channels import InMemoryChannel
from ..core.engine import DataCell
from ..core.windows import WindowMode, WindowSpec
from ..durability import DurabilityConfig, RecoveryReport
from ..kernel.types import AtomType
from ..testing import current_seed
from .oracle import CHANNEL, COLUMNS, ORACLE_CASES, STREAM, _quiet_metrics
from .policies import policy_names
from .sim import InputEvent, SimScheduler

__all__ = [
    "SimulatedCrash",
    "CrashSpec",
    "CrashDifferentialResult",
    "check_crash_episode",
    "crash_episode_spec",
]

Row = Tuple[int, ...]

QUERY = "q"  # fixed query name: recovery needs an identical topology

WINDOW_GEOMETRIES = ((4, 2), (4, 4), (1, 1), (6, 3))
AGGREGATES = ("sum", "count", "avg", "min", "max")
FSYNC_CYCLE = ("interval", "off", "always")


class SimulatedCrash(Exception):
    """Raised from the firing hook to kill an episode at a boundary."""


@dataclass(frozen=True)
class CrashSpec:
    """Everything that determines one crash episode, and nothing else.

    ``case`` is an oracle case name (plain continuous query) or
    ``"window"`` (COUNT-window aggregate per ``window`` /
    ``window_aggregate``).  No channel faults: the crash *is* the fault.
    """

    seed: int
    rows: Tuple[Row, ...]
    case: str = "filter"
    policy: str = "random"
    batch_size: int = 3
    time_step: float = 0.25
    crash_after: int = 5
    checkpoint_every: Optional[int] = None
    fsync: str = "interval"
    window: Tuple[int, int] = (4, 2)
    window_aggregate: str = "sum"
    #: run the telemetry sampler (sys.* streams) alongside the episode —
    #: user-visible output must stay byte-identical, since system
    #: streams never enter the WAL or the checkpoints
    sampling: bool = False
    #: execution route ("reeval" or "incremental"): incremental circuit
    #: and delta-window state rides the same checkpoint/WAL machinery,
    #: so kill-and-restart must be byte-identical on both routes
    execution: str = "reeval"
    #: ingest through the server's wire seam (frame encode/decode +
    #: ingest queue + pump) instead of a receptor — recovery must be
    #: byte-identical with the network front door attached too
    via_server: bool = False

    def input_events(self) -> List[InputEvent]:
        events = []
        for i in range(0, len(self.rows), self.batch_size):
            events.append(
                InputEvent.make(
                    at=(i // self.batch_size) * self.time_step,
                    channel=CHANNEL,
                    events=self.rows[i : i + self.batch_size],
                )
            )
        return events


@dataclass
class CrashDifferentialResult:
    """Verdict of one kill-restart-compare episode."""

    spec: CrashSpec
    ok: bool
    crashed: bool  # False = crash_after landed past quiescence
    reference: List[Row]
    pre_crash: List[Row]
    post_recovery: List[Row]
    report: RecoveryReport

    def explain(self) -> str:
        if self.ok:
            return "recovered ≡ uninterrupted"
        combined = self.pre_crash + self.post_recovery
        return (
            f"recovered != uninterrupted for {render_crash_repro(self.spec)}"
            f": reference={self.reference} pre={self.pre_crash} "
            f"post={self.post_recovery} combined={combined} "
            f"({self.report})"
        )


def render_crash_repro(spec: CrashSpec) -> str:
    """One-line repro: paste back as ``check_crash_episode(CrashSpec(...))``."""
    return (
        f"CrashSpec(seed={spec.seed}, case={spec.case!r}, "
        f"policy={spec.policy!r}, batch_size={spec.batch_size}, "
        f"crash_after={spec.crash_after}, "
        f"checkpoint_every={spec.checkpoint_every}, "
        f"fsync={spec.fsync!r}, window={spec.window}, "
        f"window_aggregate={spec.window_aggregate!r}, "
        f"sampling={spec.sampling}, execution={spec.execution!r}, "
        f"via_server={spec.via_server}, rows={list(spec.rows)!r})"
    )


# ----------------------------------------------------------------------
# the three phases
# ----------------------------------------------------------------------
def _build(
    spec: CrashSpec, directory: Optional[Path]
) -> Tuple[SimScheduler, DataCell, "object"]:
    """One engine with the episode's topology; durability iff a dir given.

    Reference, crash, and recovery phases all build through here so the
    basket/factory/emitter names are identical — the topology-identity
    contract recovery requires.
    """
    metrics = _quiet_metrics()
    sim = SimScheduler(seed=spec.seed, policy=spec.policy, metrics=metrics)
    durability = (
        DurabilityConfig(directory=directory, fsync=spec.fsync)
        if directory is not None
        else None
    )
    from ..obs.sysstreams import SystemStreamsConfig

    cell = DataCell(
        clock=sim.clock, scheduler=sim, metrics=metrics,
        durability=durability,
        # all three phases share the sampling choice so the transition
        # set (and hence every policy's firing sequence) is identical
        system_streams=(
            SystemStreamsConfig(interval=2 * spec.time_step)
            if spec.sampling
            else None
        ),
    )
    if spec.case == "window":
        cell.create_basket(STREAM, [("v", AtomType.INT)])
    else:
        cell.create_basket(STREAM, COLUMNS)
    channel = InMemoryChannel(CHANNEL)
    if spec.via_server:
        from .server_episode import attach_server_ingress

        columns = (
            [("v", AtomType.INT)] if spec.case == "window" else COLUMNS
        )
        attach_server_ingress(cell, channel, STREAM, columns)
    else:
        cell.add_receptor("tap", [STREAM], channel=channel)
    sim.bind_channel(CHANNEL, channel)
    if spec.case == "window":
        size, slide = spec.window
        handle = cell.submit_window_aggregate(
            STREAM,
            "v",
            [spec.window_aggregate],
            WindowSpec(WindowMode.COUNT, size, slide),
            incremental=True,
            name=QUERY,
            execution=(
                "incremental" if spec.execution == "incremental" else None
            ),
        )
    else:
        handle = cell.submit_continuous(
            ORACLE_CASES[spec.case].continuous_sql, name=QUERY,
            execution=spec.execution,
        )
    return sim, cell, handle


def _reference_run(spec: CrashSpec) -> List[Row]:
    sim, cell, handle = _build(spec, None)
    sim.run_episode(spec.input_events())
    return [tuple(r) for r in handle.fetch()]


def _crash_run(spec: CrashSpec, directory: Path) -> Tuple[List[Row], bool]:
    sim, cell, handle = _build(spec, directory)

    def hook(fired: int) -> None:
        if fired >= spec.crash_after:
            raise SimulatedCrash(f"firing {fired}")
        if spec.checkpoint_every and fired % spec.checkpoint_every == 0:
            cell.checkpoint()

    crashed = False
    try:
        sim.run_episode(spec.input_events(), on_firing=hook)
    except SimulatedCrash:
        crashed = True
    pre = [tuple(r) for r in handle.fetch()]
    # a kill, not a shutdown: close descriptors without the final fsync
    cell.durability.abandon()
    return pre, crashed


def _recovery_run(
    spec: CrashSpec, directory: Path
) -> Tuple[List[Row], RecoveryReport]:
    sim, cell, handle = _build(spec, directory)
    report = cell.recover()
    # drain whatever the replay left in-flight (suppressed rows are
    # dropped by the emitter's recovered high-water mark)
    while sim.sim_fire() is not None:
        pass
    # the stream suffix the dead process never ingested; ingest is FIFO
    # through one receptor, so total_in is the exact resume point
    remaining = spec.rows[cell.basket(STREAM).total_in :]
    for i in range(0, len(remaining), spec.batch_size):
        cell.basket(STREAM).insert_rows(
            [list(r) for r in remaining[i : i + spec.batch_size]]
        )
        while sim.sim_fire() is not None:
            pass
    post = [tuple(r) for r in handle.fetch()]
    cell.durability.close()
    return post, report


def check_crash_episode(
    spec: CrashSpec, directory: Optional[Path] = None
) -> CrashDifferentialResult:
    """Run all three phases and compare exactly.

    Window results are ordered by window index before comparison (both
    sides), matching the PR 3 oracle's equivalence rules; plain query
    rows are compared as raw sequences — emission content *and* order
    are deterministic in ingest order.
    """
    if directory is None:
        with tempfile.TemporaryDirectory(prefix="datacell-crash-") as tmp:
            return check_crash_episode(spec, Path(tmp))
    reference = _reference_run(spec)
    pre, crashed = _crash_run(spec, directory / f"ep-{spec.seed}")
    post, report = _recovery_run(spec, directory / f"ep-{spec.seed}")
    combined = pre + post
    if spec.case == "window":
        combined = sorted(combined, key=lambda r: r[0])
        reference = sorted(reference, key=lambda r: r[0])
    return CrashDifferentialResult(
        spec=spec,
        ok=combined == reference,
        crashed=crashed,
        reference=reference,
        pre_crash=pre,
        post_recovery=post,
        report=report,
    )


# ----------------------------------------------------------------------
# seeded episode generation (CLI + CI gate)
# ----------------------------------------------------------------------
def crash_episode_spec(index: int, base_seed: int) -> CrashSpec:
    """Deterministic episode ``index`` of a run with ``base_seed``.

    Cycles the oracle cases plus a window case, the firing policies, and
    the fsync modes; rows, batching, crash point, and checkpoint cadence
    all derive from the seed.
    """
    seed = base_seed + index
    rng = random.Random(f"datacell-crash-episode:{seed}")
    cases = sorted(ORACLE_CASES) + ["window"]
    case = cases[index % len(cases)]
    if case == "window":
        rows: Tuple[Row, ...] = tuple(
            (rng.randint(0, 50),) for _ in range(rng.randint(8, 60))
        )
    else:
        rows = tuple(
            (rng.randint(-5, 30), rng.randint(0, 10))
            for _ in range(rng.randint(5, 60))
        )
    batch = rng.choice((1, 2, 3, 5))
    # ~3 firings per batch (receptor + factory + emitter); land the
    # crash anywhere from the first firing to past quiescence so clean
    # shutdowns are exercised too
    est_firings = max(3, 3 * (len(rows) // batch + 1))
    policies = list(policy_names())
    return CrashSpec(
        seed=seed,
        rows=rows,
        case=case,
        policy=policies[index % len(policies)],
        batch_size=batch,
        crash_after=rng.randint(1, est_firings),
        checkpoint_every=rng.choice((None, 2, 4, 7)),
        fsync=FSYNC_CYCLE[index % len(FSYNC_CYCLE)],
        window=WINDOW_GEOMETRIES[index % len(WINDOW_GEOMETRIES)],
        window_aggregate=AGGREGATES[index % len(AGGREGATES)],
        sampling=(index % 2 == 1),
        # every third episode exercises the incremental route, so circuit
        # and delta-window state recovery is continuously gated
        execution="incremental" if index % 3 == 2 else "reeval",
        # every 5th episode ingests through the server's wire seam
        via_server=(index % 5 == 3),
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded DataCell crash-recovery episodes "
        "(kill-and-restart differential gate)"
    )
    parser.add_argument("--episodes", type=int, default=100)
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed (default: DATACELL_SEED via repro.testing)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write a JSON repro artifact here on failure",
    )
    args = parser.parse_args(argv)
    if args.seed is None:
        args.seed = current_seed()

    failures: List[str] = []
    crashes = 0
    for index in range(args.episodes):
        spec = crash_episode_spec(index, args.seed)
        result = check_crash_episode(spec)
        crashes += int(result.crashed)
        if not result.ok:
            failures.append(result.explain())
    print(
        f"crash simtest: {args.episodes - len(failures)}/{args.episodes} "
        f"episodes passed, {crashes} mid-run kills (base seed {args.seed})"
    )
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures and args.out:
        with open(args.out, "w") as handle:
            json.dump({"failures": failures}, handle, indent=2)
        print(f"repro artifact written to {args.out}", file=sys.stderr)
    return min(len(failures), 125)


if __name__ == "__main__":
    sys.exit(main())
