"""Deterministic simulation + differential testing for the DataCell.

The paper's headline architecture (§2.4) is the multi-threaded scheduler:
every receptor/factory/emitter an independent thread, data streaming
through baskets.  Thread schedules are not reproducible, so interleaving
bugs (lost wakeups, basket races, double consumption under the §2.5
strategies) surface only as flakes.  This package provides the
correctness substrate instead:

* :class:`~repro.simtest.sim.SimScheduler` drives the *exact same*
  transition objects under a seed-controlled virtual scheduler — one
  firing at a time, ordering chosen by a pluggable
  :class:`~repro.core.scheduler.FiringPolicy`, time supplied by a
  :class:`~repro.core.clock.VirtualClock`.  A whole episode is
  reproducible from ``(seed, policy, fault plan)``.
* :mod:`~repro.simtest.faults` injects drop/duplicate/reorder/delay
  faults at basket boundaries and raises exceptions inside transitions
  (exercising the scheduler's ``on_exception`` hook and the flight
  recorder).
* :mod:`~repro.simtest.oracle` replays every simulated input stream
  through both the continuous-query pipeline and a one-shot execution of
  the same SQL over the accumulated stream table (plus the ``baselines``
  engines for window queries), asserting emitted-result equivalence up
  to permutation — the "streaming must equal re-running the SQL"
  property DataCell inherits from the relational kernel.  A shrinker
  minimizes ``(stream, schedule)`` on failure.
* :mod:`~repro.simtest.crash` kills seeded episodes at firing
  boundaries and requires recovery (checkpoint + WAL replay) to deliver
  byte-identically what the uninterrupted run delivers — the
  durability subsystem's exactly-once differential gate.

See ``docs/testing.md`` for the fault matrix, the oracle equivalence
rules, and how to reproduce a failure from a printed repro line.
"""

# NOTE: .crash is intentionally not imported here — it is a CLI entry
# point (``python -m repro.simtest.crash``) and importing it from the
# package __init__ would trigger the runpy double-import warning.
from .faults import FaultableChannel, FaultPlan, InjectedFault
from .oracle import (
    ORACLE_CASES,
    DifferentialResult,
    EpisodeSpec,
    OracleCase,
    check_episode,
    render_repro,
    run_window_differential,
    shrink_episode,
)
from .policies import (
    PriorityInvertingPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    StarvePolicy,
    make_policy,
    policy_names,
)
from .sim import EpisodeResult, InputEvent, SimScheduler

__all__ = [
    "FaultPlan",
    "FaultableChannel",
    "InjectedFault",
    "OracleCase",
    "ORACLE_CASES",
    "EpisodeSpec",
    "DifferentialResult",
    "check_episode",
    "shrink_episode",
    "render_repro",
    "run_window_differential",
    "RandomPolicy",
    "RoundRobinPolicy",
    "PriorityInvertingPolicy",
    "StarvePolicy",
    "make_policy",
    "policy_names",
    "SimScheduler",
    "InputEvent",
    "EpisodeResult",
]
