"""CI entry point: run N seeded simulation episodes as a non-flaky gate.

Usage::

    PYTHONPATH=src python -m repro.simtest.run --episodes 200 \\
        --seed 0 --out benchmarks/simtest_repro.json

Episodes cycle deterministically through the firing policies and oracle
cases; a third get batch faults, a sixth get injected exceptions, and
every fifth episode is a window-geometry differential instead of a SQL
one.  Everything derives from ``--seed``, so a CI failure reproduces
locally with the same invocation.  On failure the first failing episode
is shrunk and the one-line repro (plus a JSON artifact for upload)
is emitted; exit status is the number of failing episodes.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from dataclasses import asdict
from typing import List, Optional

from .oracle import (
    ORACLE_CASES,
    EpisodeSpec,
    check_episode,
    render_repro,
    run_window_differential,
    shrink_episode,
)
from .policies import policy_names
from ..testing import current_seed

WINDOW_GEOMETRIES = [
    (5, 2),  # overlapping slide
    (4, 4),  # tumbling
    (1, 1),  # degenerate size 1
    (8, 3),
    (30, 10),
]
AGGREGATES = ("sum", "count", "avg", "min", "max")


def _episode_spec(
    index: int, base_seed: int, execution: str = "reeval"
) -> EpisodeSpec:
    seed = base_seed + index
    rng = random.Random(f"datacell-episode:{seed}")
    # every 7th episode ingests through the server's wire seam
    # (encode → decode → ingest queue → pump) instead of a receptor
    via_server = index % 7 == 2
    starve = "starve:server_wire" if via_server else "starve:tap"
    policies = list(policy_names()) + [starve]
    case_names = sorted(ORACLE_CASES)
    n_rows = rng.randint(5, 60)
    return EpisodeSpec(
        seed=seed,
        rows=tuple(
            (rng.randint(-5, 30), rng.randint(0, 10)) for _ in range(n_rows)
        ),
        case=case_names[index % len(case_names)],
        policy=policies[index % len(policies)],
        batch_size=rng.choice((1, 2, 3, 5, 8)),
        batch_fault_rate=0.3 if index % 3 == 0 else 0.0,
        exception_rate=0.15 if index % 6 == 0 else 0.0,
        execution=execution,
        via_server=via_server,
    )


def _run_window_episode(
    index: int, base_seed: int, execution: Optional[str] = None
) -> Optional[str]:
    """One window differential; returns a failure description or None."""
    seed = base_seed + index
    rng = random.Random(f"datacell-window-episode:{seed}")
    size, slide = WINDOW_GEOMETRIES[index % len(WINDOW_GEOMETRIES)]
    aggregate = AGGREGATES[index % len(AGGREGATES)]
    policy = (list(policy_names()) + ["starve:tap"])[
        index % (len(policy_names()) + 1)
    ]
    rows = [rng.randint(0, 50) for _ in range(rng.randint(size, 80))]
    streaming, naive, _ = run_window_differential(
        size,
        slide,
        rows,
        aggregate=aggregate,
        seed=seed,
        policy=policy,
        batch_size=rng.choice((1, 3, 7)),
        min_tuples=rng.choice((1, 1, 1, size + 2)),
        batch_fault_rate=0.3 if index % 3 == 0 else 0.0,
        execution=execution,
    )
    if streaming == naive:
        return None
    return (
        f"window differential seed={seed} size={size} slide={slide} "
        f"agg={aggregate} policy={policy}: {streaming} != {naive}"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="seeded DataCell simulation episodes (differential gate)"
    )
    parser.add_argument("--episodes", type=int, default=200)
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base seed (default: DATACELL_SEED via repro.testing)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write a JSON repro artifact here on failure",
    )
    parser.add_argument(
        "--execution",
        choices=("reeval", "incremental"),
        default="reeval",
        help="engine execution mode for every episode "
        "(incremental = Z-set delta circuits)",
    )
    parser.add_argument(
        "--lock-order",
        action="store_true",
        help="install the acquisition-graph recorder "
        "(repro.analysis.lockorder) for every episode; any lock-order "
        "cycle counts as a failed run",
    )
    args = parser.parse_args(argv)
    if args.seed is None:
        args.seed = current_seed()

    recorder = None
    if args.lock_order:
        from ..analysis.lockorder import (
            LockOrderRecorder,
            set_global_recorder,
        )

        recorder = LockOrderRecorder(strict=False)
        set_global_recorder(recorder)

    failures: List[str] = []
    shrunk_artifact = None
    for index in range(args.episodes):
        if index % 5 == 4:
            message = _run_window_episode(
                index,
                args.seed,
                execution=(
                    "incremental"
                    if args.execution == "incremental"
                    else None
                ),
            )
            if message is not None:
                failures.append(message)
            continue
        spec = _episode_spec(index, args.seed, execution=args.execution)
        result = check_episode(spec)
        if result.ok:
            continue
        failures.append(result.explain())
        if shrunk_artifact is None:
            shrunk, attempts = shrink_episode(spec)
            shrunk_artifact = {
                "repro": render_repro(shrunk),
                "original": render_repro(spec),
                "shrink_attempts": attempts,
                "spec": asdict(shrunk),
            }
            print(f"shrunk repro ({attempts} attempts):")
            print(f"  {shrunk_artifact['repro']}")
    if recorder is not None:
        from ..analysis.lockorder import set_global_recorder

        set_global_recorder(None)
        print(recorder.summary())
        failures.extend(
            f"lock-order violation: {message}"
            for message in recorder.violations
        )
    print(
        f"simtest: {args.episodes - len(failures)}/{args.episodes} "
        f"episodes passed (base seed {args.seed})"
    )
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures and args.out:
        with open(args.out, "w") as handle:
            json.dump(
                {"failures": failures, "shrunk": shrunk_artifact},
                handle,
                indent=2,
            )
        print(f"repro artifact written to {args.out}", file=sys.stderr)
    return min(len(failures), 125)


if __name__ == "__main__":
    sys.exit(main())
