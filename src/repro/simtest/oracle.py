"""The differential oracle: streaming ≡ one-shot SQL, up to permutation.

DataCell's core correctness claim (inherited from building on a
relational kernel) is that a continuous query is *the same query* the
kernel would run one-shot: replaying every input tuple into an ordinary
table and executing the SQL once must produce exactly the multiset of
rows the streaming pipeline emitted — under any firing order, any
batching, and any boundary fault that preserves the delivered stream.
Purpose-built DSMSs cannot check themselves this cheaply; we can, so
every simulated episode is checked.

Equivalence rules (also in ``docs/testing.md``):

* comparison is **multiset** equality — emission order carries no
  meaning for non-window queries;
* the one-shot side accumulates the *post-fault delivered* stream (a
  dropped batch is absent from both sides, a duplicated one present
  twice in both);
* window queries are instead checked against the naive per-tuple
  baselines (``baselines.reeval`` / ``baselines.tuple_engine``), fed the
  delivered stream in basket-ingest order, and compared as *sequences*
  (window results are ordered by window index).

On failure, :func:`shrink_episode` minimizes ``(stream, schedule)``:
first it tries dropping the faults and simplifying the policy to the
deterministic default, then greedily delta-debugs the input rows,
re-running the full differential check on every candidate.  The shrunk
spec renders as a one-line repro via :func:`render_repro`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..adapters.channels import Channel, InMemoryChannel
from ..baselines.reeval import NaiveReEvalWindow
from ..core.continuous import ContinuousQuery
from ..core.engine import DataCell
from ..core.windows import WindowMode, WindowSpec
from ..kernel.types import AtomType
from ..obs.metrics import MetricsRegistry
from .faults import FaultPlan, FaultableChannel
from .sim import EpisodeResult, InputEvent, SimScheduler

__all__ = [
    "OracleCase",
    "ORACLE_CASES",
    "EpisodeSpec",
    "DifferentialResult",
    "run_streaming",
    "run_oneshot",
    "check_episode",
    "shrink_episode",
    "render_repro",
    "run_window_differential",
]

Row = Tuple[int, ...]
BugHook = Callable[[ContinuousQuery], None]

STREAM = "feed"  # the basket/table name every case queries
CHANNEL = "wire"


@dataclass(frozen=True)
class OracleCase:
    """One continuous query with its one-shot twin.

    Both statements are over a two-int-column stream ``feed(a, b)``;
    integer values keep float summation order out of the equivalence
    question.
    """

    name: str
    continuous_sql: str
    oneshot_sql: str


ORACLE_CASES: Dict[str, OracleCase] = {
    case.name: case
    for case in (
        OracleCase(
            "passthrough",
            "select x.a, x.b from [select * from feed] as x",
            "select a, b from feed",
        ),
        OracleCase(
            "filter",
            "select x.a, x.b from "
            "[select * from feed where feed.a > 10] as x",
            "select a, b from feed where a > 10",
        ),
        OracleCase(
            "compound",
            "select x.a, x.b from "
            "[select * from feed where feed.a > 10 and feed.b < 5] as x",
            "select a, b from feed where a > 10 and b < 5",
        ),
        OracleCase(
            "disjunct",
            "select x.b from "
            "[select * from feed where feed.a > 15 or feed.b = 2] as x",
            "select b from feed where a > 15 or b = 2",
        ),
        OracleCase(
            "arith",
            "select x.a + x.b from "
            "[select * from feed where not (feed.a > 10)] as x",
            "select a + b from feed where not (a > 10)",
        ),
    )
}

COLUMNS: List[Tuple[str, AtomType]] = [
    ("a", AtomType.INT),
    ("b", AtomType.INT),
]


@dataclass(frozen=True)
class EpisodeSpec:
    """Everything that determines one simulated episode, and nothing else."""

    seed: int
    rows: Tuple[Row, ...]
    case: str = "filter"
    policy: str = "random"
    batch_size: int = 3
    time_step: float = 0.25
    batch_fault_rate: float = 0.0
    exception_rate: float = 0.0
    #: execution route for the continuous side: "reeval" (MAL re-eval)
    #: or "incremental" (Z-set circuits, repro.incremental) — the oracle
    #: claim is route-independent, so both must pass every episode
    execution: str = "reeval"
    #: ingest path: False = receptor (in-process), True = the network
    #: front door's wire seam (encode → decode → ingest queue → pump,
    #: see simtest.server_episode) — the claim is path-independent too
    via_server: bool = False

    def fault_plan(self) -> Optional[FaultPlan]:
        if self.batch_fault_rate <= 0 and self.exception_rate <= 0:
            return None
        return FaultPlan(
            seed=self.seed,
            batch_fault_rate=self.batch_fault_rate,
            exception_rate=self.exception_rate,
            delay_seconds=self.time_step * 2,
        )

    def input_events(self) -> List[InputEvent]:
        events = []
        for i in range(0, len(self.rows), self.batch_size):
            events.append(
                InputEvent.make(
                    at=(i // self.batch_size) * self.time_step,
                    channel=CHANNEL,
                    events=self.rows[i : i + self.batch_size],
                )
            )
        return events


@dataclass
class StreamingOutcome:
    """What the simulated continuous pipeline produced."""

    rows: List[Row]
    delivered: List[Row]  # post-fault ground truth, in ingest order
    episode: EpisodeResult
    faults: Optional[FaultPlan]


@dataclass
class DifferentialResult:
    """Verdict of one streaming-vs-one-shot comparison."""

    spec: EpisodeSpec
    ok: bool
    streaming: "Counter[Row]"
    oneshot: "Counter[Row]"
    episode: EpisodeResult
    missing: "Counter[Row]" = field(default_factory=Counter)  # oneshot-only
    extra: "Counter[Row]" = field(default_factory=Counter)  # streaming-only

    def explain(self) -> str:
        if self.ok:
            return "streaming ≡ one-shot"
        return (
            f"streaming != one-shot for {render_repro(self.spec)}: "
            f"missing={dict(self.missing)} extra={dict(self.extra)}"
        )


def _quiet_metrics() -> MetricsRegistry:
    # no-op instruments keep 200-episode CI runs fast and keep hidden
    # wall-clock stamp columns out of the deterministic state
    return MetricsRegistry(enabled=False)


def run_streaming(
    spec: EpisodeSpec, bug: Optional[BugHook] = None
) -> StreamingOutcome:
    """Drive the episode's rows through a simulated continuous pipeline.

    ``bug`` (tests only) mutates the registered query before the episode
    runs — how the deliberate consumption bug is planted to prove the
    oracle catches and shrinks it.
    """
    case = ORACLE_CASES[spec.case]
    faults = spec.fault_plan()
    metrics = _quiet_metrics()
    sim = SimScheduler(
        seed=spec.seed, policy=spec.policy, faults=faults, metrics=metrics
    )
    cell = DataCell(clock=sim.clock, scheduler=sim, metrics=metrics)
    cell.create_basket(STREAM, COLUMNS)
    channel: Channel = InMemoryChannel(CHANNEL)
    if faults is not None:
        channel = FaultableChannel(channel, faults, sim.clock)
    if spec.via_server:
        from .server_episode import attach_server_ingress

        attach_server_ingress(cell, channel, STREAM, COLUMNS)
    else:
        cell.add_receptor("tap", [STREAM], channel=channel)
    sim.bind_channel(CHANNEL, channel)
    handle = cell.submit_continuous(
        case.continuous_sql, execution=spec.execution
    )
    if bug is not None:
        bug(handle)
    episode = sim.run_episode(spec.input_events())
    sim.attach_digests(cell.catalog.baskets())
    if isinstance(channel, FaultableChannel):
        delivered = [tuple(e) for e in channel.delivered]
    else:
        delivered = [tuple(r) for r in spec.rows]
    return StreamingOutcome(
        rows=[tuple(r) for r in handle.fetch()],
        delivered=delivered,
        episode=episode,
        faults=faults,
    )


def run_oneshot(case: OracleCase, delivered: Sequence[Row]) -> List[Row]:
    """Re-run the query once over the accumulated stream table."""
    cell = DataCell(metrics=_quiet_metrics())
    table = cell.create_table(STREAM, COLUMNS)
    if delivered:
        table.append_rows([list(r) for r in delivered])
    result = cell.execute(case.oneshot_sql)
    return [tuple(r) for r in result.rows()]


def check_episode(
    spec: EpisodeSpec, bug: Optional[BugHook] = None
) -> DifferentialResult:
    """One full differential check: simulate, replay, compare multisets."""
    outcome = run_streaming(spec, bug=bug)
    oneshot_rows = run_oneshot(ORACLE_CASES[spec.case], outcome.delivered)
    streaming = Counter(outcome.rows)
    oneshot = Counter(oneshot_rows)
    missing = oneshot - streaming
    extra = streaming - oneshot
    return DifferentialResult(
        spec=spec,
        ok=not missing and not extra,
        streaming=streaming,
        oneshot=oneshot,
        episode=outcome.episode,
        missing=missing,
        extra=extra,
    )


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def shrink_episode(
    spec: EpisodeSpec,
    bug: Optional[BugHook] = None,
    max_attempts: int = 400,
) -> Tuple[EpisodeSpec, int]:
    """Minimize a failing episode; returns ``(smallest spec, attempts)``.

    Schedule first — a repro without faults under the deterministic
    default policy is worth more than a short stream — then ddmin-style
    greedy removal of input rows.  Every candidate re-runs the entire
    differential check, so the result is guaranteed to still fail.
    """
    attempts = 0

    def fails(candidate: EpisodeSpec) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return not check_episode(candidate, bug=bug).ok

    current = spec
    # 1. simplify the schedule: drop faults, then the random policy
    for simpler in (
        replace(current, batch_fault_rate=0.0, exception_rate=0.0),
        replace(current, policy="priority"),
    ):
        if simpler != current and fails(simpler):
            current = simpler
    # 2. shrink the stream (greedy ddmin over row chunks)
    rows = list(current.rows)
    chunk = max(1, len(rows) // 2)
    while True:
        i = 0
        while i < len(rows):
            candidate = rows[:i] + rows[i + chunk :]
            if candidate and fails(replace(current, rows=tuple(candidate))):
                rows = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return replace(current, rows=tuple(rows)), attempts


def render_repro(spec: EpisodeSpec) -> str:
    """The one-line repro printed on failure.

    Paste it back as ``check_episode(EpisodeSpec(...))`` — every field
    that determines the episode is in the line (see ``docs/testing.md``).
    """
    return (
        f"EpisodeSpec(seed={spec.seed}, case={spec.case!r}, "
        f"policy={spec.policy!r}, batch_size={spec.batch_size}, "
        f"time_step={spec.time_step}, "
        f"batch_fault_rate={spec.batch_fault_rate}, "
        f"exception_rate={spec.exception_rate}, "
        f"execution={spec.execution!r}, via_server={spec.via_server}, "
        f"rows={list(spec.rows)!r})"
    )


# ----------------------------------------------------------------------
# window queries: the baselines are the oracle
# ----------------------------------------------------------------------
def run_window_differential(
    size: int,
    slide: int,
    rows: Sequence[int],
    aggregate: str = "sum",
    seed: int = 0,
    policy: str = "random",
    batch_size: int = 4,
    min_tuples: int = 1,
    batch_fault_rate: float = 0.0,
    incremental: bool = True,
    execution: Optional[str] = None,
) -> Tuple[List[float], List[float], EpisodeResult]:
    """Window aggregate through the engine vs the naive per-tuple oracle.

    Returns ``(streaming, naive, episode)`` where both result lists are
    ordered by window index; the naive side is
    :class:`~repro.baselines.reeval.NaiveReEvalWindow` fed the delivered
    stream in basket-ingest order.  Works for any count-window geometry
    the spec accepts (tumbling ``slide == size``, overlapping, ``size
    1``) and any batching — the engine's answers must not depend on how
    activations chop the stream.
    """
    faults = (
        FaultPlan(seed=seed, batch_fault_rate=batch_fault_rate)
        if batch_fault_rate > 0
        else None
    )
    metrics = _quiet_metrics()
    sim = SimScheduler(
        seed=seed, policy=policy, faults=faults, metrics=metrics
    )
    cell = DataCell(clock=sim.clock, scheduler=sim, metrics=metrics)
    cell.create_basket(STREAM, [("v", AtomType.INT)])
    channel: Channel = InMemoryChannel(CHANNEL)
    if faults is not None:
        channel = FaultableChannel(channel, faults, sim.clock)
    cell.add_receptor("tap", [STREAM], channel=channel)
    sim.bind_channel(CHANNEL, channel)
    handle = cell.submit_window_aggregate(
        STREAM,
        "v",
        [aggregate],
        WindowSpec(WindowMode.COUNT, size, slide),
        incremental=incremental,
        execution=execution,
    )
    handle.factory.inputs[0].min_tuples = min_tuples
    events = [
        InputEvent.make(
            at=(i // batch_size) * 0.25,
            channel=CHANNEL,
            events=[(v,) for v in rows[i : i + batch_size]],
        )
        for i in range(0, len(rows), batch_size)
    ]
    episode = sim.run_episode(events)
    if min_tuples > 1:
        # a threshold above the final residue legitimately gates the tail
        # (the paper's min-tuples firing condition); flush it so strict
        # equivalence against the full-stream oracle applies
        handle.factory.inputs[0].min_tuples = 1
        while sim.sim_fire() is not None:
            pass
    # output rows are (window_id, aggregate); order by window index so
    # the comparison is insensitive to delivery batching
    streaming = [
        float(r[1]) for r in sorted(handle.fetch(), key=lambda r: r[0])
    ]
    if isinstance(channel, FaultableChannel):
        delivered = [e[0] for e in channel.delivered]
    else:
        delivered = list(rows)
    naive = NaiveReEvalWindow(size, slide, aggregate)
    for value in delivered:
        naive.insert(value)
    return streaming, [float(v) for v in naive.results], episode
