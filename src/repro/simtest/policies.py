"""Firing policies for the simulated scheduler.

Each policy is one way of resolving the scheduler's nondeterminism: which
enabled transition fires next.  The default engine order
(:class:`~repro.core.scheduler.PriorityPolicy`) lives next to the
scheduler; the policies here deliberately deviate from it — shuffling,
rotating, inverting priorities, starving a victim — so simulation
episodes explore interleavings a well-behaved thread scheduler would
rarely produce.  Every policy draws randomness only from the explicitly
seeded ``random.Random`` it is constructed with, keeping episodes
reproducible from ``(seed, policy)``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.scheduler import FiringPolicy, PriorityPolicy, SchedulableTransition
from ..errors import SchedulerError

__all__ = [
    "RoundRobinPolicy",
    "RandomPolicy",
    "PriorityInvertingPolicy",
    "StarvePolicy",
    "make_policy",
    "policy_names",
]


class RoundRobinPolicy(FiringPolicy):
    """Ignore priorities; rotate the starting transition every decision.

    Fair in the strongest sense — every transition gets the head slot in
    turn — which makes it the policy of choice for checking that query
    semantics do not silently depend on the default priority order.
    """

    def __init__(self) -> None:
        self._cursor = 0

    def sweep_order(
        self, transitions: List[SchedulableTransition]
    ) -> List[SchedulableTransition]:
        if not transitions:
            return []
        k = self._cursor % len(transitions)
        self._cursor += 1
        return list(transitions[k:]) + list(transitions[:k])

    def describe(self) -> str:
        return "round-robin"


class RandomPolicy(FiringPolicy):
    """Uniformly random order, from an explicitly seeded generator."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def sweep_order(
        self, transitions: List[SchedulableTransition]
    ) -> List[SchedulableTransition]:
        out = list(transitions)
        self.rng.shuffle(out)
        return out

    def describe(self) -> str:
        return "random"


class PriorityInvertingPolicy(FiringPolicy):
    """Lowest priority first (registration order breaks ties).

    Adversarial: emitters run before the factories that feed them,
    factories before the receptors — the exact inversion of the engine's
    default.  Correct pipelines must still converge to the same results,
    only later; anything that *requires* the default order to be correct
    is a bug this policy flushes out.
    """

    def sweep_order(
        self, transitions: List[SchedulableTransition]
    ) -> List[SchedulableTransition]:
        indexed = list(enumerate(transitions))
        indexed.sort(key=lambda pair: (pair[1].priority, pair[0]))
        return [t for _, t in indexed]

    def describe(self) -> str:
        return "inverted"


class StarvePolicy(FiringPolicy):
    """Never fire the victim while anything else is enabled.

    Models a maximally unfair thread scheduler that starves one
    transition: in one-firing-at-a-time simulation the victim only runs
    when it is the *only* enabled transition.  Liveness check: results
    must still be complete at quiescence — the victim's work is delayed,
    never lost.
    """

    def __init__(self, victim: str, base: Optional[FiringPolicy] = None):
        self.victim = victim
        self.base = base if base is not None else PriorityPolicy()

    def sweep_order(
        self, transitions: List[SchedulableTransition]
    ) -> List[SchedulableTransition]:
        ordered = self.base.sweep_order(transitions)
        starved = [t for t in ordered if t.name != self.victim]
        victims = [t for t in ordered if t.name == self.victim]
        return starved + victims

    def describe(self) -> str:
        return f"starve:{self.victim}"


def policy_names() -> Tuple[str, ...]:
    """The policy vocabulary accepted by :func:`make_policy`."""
    return ("priority", "round-robin", "random", "inverted")


def make_policy(
    name: str, rng: Optional[random.Random] = None
) -> FiringPolicy:
    """Construct a policy from its textual name (the repro-line format).

    ``starve:<transition>`` starves the named transition; the other
    names are listed by :func:`policy_names`.  ``rng`` is required for
    the ``random`` policy and ignored elsewhere.
    """
    if name == "priority":
        return PriorityPolicy()
    if name == "round-robin":
        return RoundRobinPolicy()
    if name == "inverted":
        return PriorityInvertingPolicy()
    if name == "random":
        if rng is None:
            raise SchedulerError("the random policy needs a seeded rng")
        return RandomPolicy(rng)
    if name.startswith("starve:"):
        return StarvePolicy(name.split(":", 1)[1])
    raise SchedulerError(f"unknown firing policy {name!r}")
