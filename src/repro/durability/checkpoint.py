"""Atomic columnar checkpoints of the whole engine state.

A checkpoint is one directory ``ckpt-<id>/`` under ``checkpoints/``::

    ckpt-00000003/
        state.json     everything structural: per-basket schema order,
                       next-sequence frontiers, reader cursors, stats
                       counters, factory bindings + pickled plan state,
                       emitter high-water marks, clock time, the WAL
                       segment the replay suffix starts at, and a
                       state_digest per basket for post-recovery checks
        columns.bin    magic + one CRC32 frame per column (basket order
                       and column order exactly as listed in state.json,
                       each basket's hidden seq column last)

Atomicity is write-temp-then-rename: the directory is materialized as
``.tmp-ckpt-<id>``, every file fsynced, then renamed into place and the
``MANIFEST.json`` (itself written temp + rename) repointed at it.  A
crash mid-checkpoint leaves either the old manifest (tmp dir garbage is
swept on the next attempt) or the new one — never a half checkpoint.
Loading walks newest-to-oldest and skips any checkpoint that fails
validation (bad JSON, bad frame CRC, wrong column count), so a torn or
corrupt latest falls back to its predecessor.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import DurabilityError
from ..kernel.types import AtomType
from .serde import decode_column, encode_column, pack_frame, unpack_frame

__all__ = [
    "BasketState",
    "CheckpointSnapshot",
    "LoadedCheckpoint",
    "write_checkpoint",
    "load_latest_checkpoint",
    "list_checkpoints",
]

COLUMNS_MAGIC = b"DCCKPT1\n"
MANIFEST = "MANIFEST.json"


@dataclass
class BasketState:
    """One basket inside the consistency cut."""

    columns: List[Tuple[str, AtomType]]  # schema order, incl. dc_time
    arrays: List[np.ndarray]  # aligned with ``columns``
    seqs: np.ndarray  # hidden per-tuple sequence numbers
    next_seq: int
    readers: Dict[str, int]
    total_in: int = 0
    total_out: int = 0
    total_shed: int = 0
    digest: str = ""


@dataclass
class CheckpointSnapshot:
    """Everything a checkpoint persists, captured inside the cut."""

    checkpoint_id: int
    wal_start_segment: int
    clock_now: float
    baskets: Dict[str, BasketState] = field(default_factory=dict)
    factories: Dict[str, dict] = field(default_factory=dict)
    emitters: Dict[str, int] = field(default_factory=dict)


@dataclass
class LoadedCheckpoint:
    """A validated checkpoint read back from disk."""

    checkpoint_id: int
    wal_start_segment: int
    clock_now: float
    baskets: Dict[str, BasketState]
    factories: Dict[str, dict]
    emitters: Dict[str, int]
    path: Path


# ----------------------------------------------------------------------
def _ckpt_dir(root: Path, checkpoint_id: int) -> Path:
    return root / f"ckpt-{checkpoint_id:08d}"


def list_checkpoints(root: Union[str, Path]) -> List[Tuple[int, Path]]:
    """``(checkpoint_id, path)`` pairs, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    found = []
    for entry in root.iterdir():
        if entry.is_dir() and entry.name.startswith("ckpt-"):
            try:
                found.append((int(entry.name[5:]), entry))
            except ValueError:
                continue
    return sorted(found)


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def write_checkpoint(
    root: Union[str, Path],
    snapshot: CheckpointSnapshot,
    keep: int = 2,
) -> Path:
    """Persist a snapshot atomically; prune to the ``keep`` newest."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    final_dir = _ckpt_dir(root, snapshot.checkpoint_id)
    tmp_dir = root / f".tmp-{final_dir.name}"
    if tmp_dir.exists():  # garbage from a crashed earlier attempt
        shutil.rmtree(tmp_dir)
    if final_dir.exists():
        raise DurabilityError(
            f"checkpoint {snapshot.checkpoint_id} already exists"
        )
    tmp_dir.mkdir(parents=True)

    basket_order = sorted(snapshot.baskets)
    state = {
        "format": 1,
        "checkpoint_id": snapshot.checkpoint_id,
        "wal_start_segment": snapshot.wal_start_segment,
        "clock_now": snapshot.clock_now,
        "emitters": dict(snapshot.emitters),
        "factories": snapshot.factories,
        "baskets": {
            name: {
                "columns": [
                    [n, a.value] for n, a in snapshot.baskets[name].columns
                ],
                "next_seq": snapshot.baskets[name].next_seq,
                "readers": snapshot.baskets[name].readers,
                "total_in": snapshot.baskets[name].total_in,
                "total_out": snapshot.baskets[name].total_out,
                "total_shed": snapshot.baskets[name].total_shed,
                "digest": snapshot.baskets[name].digest,
            }
            for name in basket_order
        },
    }
    state_path = tmp_dir / "state.json"
    state_path.write_text(json.dumps(state, indent=1, sort_keys=True))

    columns_path = tmp_dir / "columns.bin"
    with open(columns_path, "wb") as handle:
        handle.write(COLUMNS_MAGIC)
        for name in basket_order:
            basket = snapshot.baskets[name]
            for (_, atom), array in zip(basket.columns, basket.arrays):
                handle.write(pack_frame(encode_column(atom, array)))
            handle.write(
                pack_frame(encode_column(AtomType.LNG, basket.seqs))
            )
    _fsync_file(state_path)
    _fsync_file(columns_path)
    _fsync_dir(tmp_dir)
    os.rename(tmp_dir, final_dir)
    _fsync_dir(root)

    manifest_tmp = root / f".tmp-{MANIFEST}"
    manifest_tmp.write_text(
        json.dumps(
            {
                "latest": final_dir.name,
                "checkpoint_id": snapshot.checkpoint_id,
                "wal_start_segment": snapshot.wal_start_segment,
            }
        )
    )
    _fsync_file(manifest_tmp)
    os.rename(manifest_tmp, root / MANIFEST)
    _fsync_dir(root)

    for checkpoint_id, path in list_checkpoints(root)[:-keep]:
        shutil.rmtree(path, ignore_errors=True)
    return final_dir


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def _load_one(path: Path) -> LoadedCheckpoint:
    state = json.loads((path / "state.json").read_text())
    if state.get("format") != 1:
        raise DurabilityError(f"unsupported checkpoint format in {path}")
    data = (path / "columns.bin").read_bytes()
    if not data.startswith(COLUMNS_MAGIC):
        raise DurabilityError(f"bad columns magic in {path}")
    offset = len(COLUMNS_MAGIC)
    baskets: Dict[str, BasketState] = {}
    for name in sorted(state["baskets"]):
        doc = state["baskets"][name]
        columns = [(n, AtomType(a)) for n, a in doc["columns"]]
        arrays: List[np.ndarray] = []
        for _, atom in columns:
            parsed = unpack_frame(data, offset)
            if parsed is None:
                raise DurabilityError(f"torn column frame in {path}")
            payload, offset = parsed
            arrays.append(decode_column(atom, payload))
        parsed = unpack_frame(data, offset)
        if parsed is None:
            raise DurabilityError(f"torn seq frame in {path}")
        payload, offset = parsed
        seqs = decode_column(AtomType.LNG, payload)
        counts = {len(a) for a in arrays} | {len(seqs)}
        if len(counts) != 1:
            raise DurabilityError(f"misaligned columns in {path}")
        baskets[name] = BasketState(
            columns=columns,
            arrays=arrays,
            seqs=seqs,
            next_seq=int(doc["next_seq"]),
            readers={k: int(v) for k, v in doc["readers"].items()},
            total_in=int(doc.get("total_in", 0)),
            total_out=int(doc.get("total_out", 0)),
            total_shed=int(doc.get("total_shed", 0)),
            digest=doc.get("digest", ""),
        )
    return LoadedCheckpoint(
        checkpoint_id=int(state["checkpoint_id"]),
        wal_start_segment=int(state["wal_start_segment"]),
        clock_now=float(state["clock_now"]),
        baskets=baskets,
        factories=state.get("factories", {}),
        emitters={
            k: int(v) for k, v in state.get("emitters", {}).items()
        },
        path=path,
    )


def load_latest_checkpoint(
    root: Union[str, Path],
) -> Optional[LoadedCheckpoint]:
    """Newest checkpoint that validates, or ``None``.

    The manifest is a hint, not an authority: if it is missing, stale,
    or points at a checkpoint that fails validation, the loader falls
    back to scanning every ``ckpt-*`` directory newest-first.
    """
    root = Path(root)
    candidates = [path for _, path in reversed(list_checkpoints(root))]
    manifest_path = root / MANIFEST
    if manifest_path.is_file():
        try:
            latest = root / json.loads(manifest_path.read_text())["latest"]
            if latest in candidates:
                candidates.remove(latest)
                candidates.insert(0, latest)
        except (ValueError, KeyError, OSError):
            pass
    for path in candidates:
        try:
            return _load_one(path)
        except (DurabilityError, ValueError, KeyError, OSError, json.JSONDecodeError):
            continue
    return None
