"""The basket write-ahead log: segmented, checksummed, replayable.

The WAL records the engine's *non-deterministic inputs* — every batch
ingested into a source basket (at the ``insert_rows``/``insert_columns``
boundary, after arity validation, before load shedding) plus each
emitter's delivery high-water mark.  Everything downstream of ingest is
a deterministic function of the ingest order (the property
``repro.simtest`` checks continuously), so replaying the log through the
normal ingest path reconstructs every derived basket, window buffer,
and output sequence number exactly.

Record kinds (one framed record per event, see
:mod:`repro.durability.serde` for the frame format)::

    INSERT      basket name, batch dc_time stamp, per-column payloads
    EMIT        emitter name, high-water output sequence delivered
    CHECKPOINT  checkpoint id (a marker for post-mortems; recovery uses
                the checkpoint manifest, not this record)

Segments are ``wal-<n>.log`` files under the WAL directory, each opened
with a magic header.  A writer never appends to a pre-crash segment: it
always starts a fresh one, so torn tails stay confined to the segment
that was active when the process died.  ``rotate()`` seals the current
segment and starts the next — the checkpointer calls it inside the
engine-wide cut so "replay everything from segment N" is a well-defined
suffix — and ``truncate_before(n)`` deletes segments the newest
checkpoint made redundant.

Fsync policy (the durability/throughput dial):

``always``
    fsync after every record — survives power loss at single-record
    granularity.
``interval``
    fsync when ``fsync_interval`` seconds passed since the last one —
    bounded loss window after power failure.
``off``
    never fsync (the OS flushes when it pleases).

All three policies ``flush()`` the python buffer to the OS per record,
so a *process* crash (the failure the simulation harness injects) loses
nothing under any policy; fsync only matters when the whole machine
goes down.
"""

from __future__ import annotations

import enum
import json
import os
import re
import struct
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import DurabilityError
from ..kernel.types import AtomType
from .serde import decode_column, encode_column, frames_with_tail, pack_frame

__all__ = [
    "FsyncPolicy",
    "DurabilityConfig",
    "InsertRecord",
    "EmitRecord",
    "FiringRecord",
    "CheckpointRecord",
    "WalWriter",
    "read_wal",
    "list_segments",
]

SEGMENT_MAGIC = b"DCWAL1\n"
SEGMENT_RE = re.compile(r"^wal-(\d{8})\.log$")

_KIND = struct.Struct("<B")
_U32 = struct.Struct("<I")
KIND_INSERT = 1
KIND_EMIT = 2
KIND_CHECKPOINT = 3
KIND_FIRING = 4


class FsyncPolicy(enum.Enum):
    ALWAYS = "always"
    INTERVAL = "interval"
    OFF = "off"


@dataclass
class DurabilityConfig:
    """Knobs of the durability subsystem (``DataCell(durability=...)``).

    ``directory`` is the root; the engine keeps ``<root>/wal/`` and
    ``<root>/checkpoints/`` under it.  ``checkpoint_interval`` (seconds,
    real time) arms the background checkpoint thread in threaded mode;
    ``None`` leaves checkpointing fully manual (``cell.checkpoint()``).
    ``keep_checkpoints`` retains that many newest checkpoints so a
    corrupt latest can fall back to its predecessor.
    """

    directory: Union[str, Path]
    fsync: Union[str, FsyncPolicy] = FsyncPolicy.INTERVAL
    fsync_interval: float = 0.05
    segment_max_bytes: int = 8 * 1024 * 1024
    checkpoint_interval: Optional[float] = None
    keep_checkpoints: int = 2

    def __post_init__(self) -> None:
        if isinstance(self.fsync, str):
            try:
                self.fsync = FsyncPolicy(self.fsync)
            except ValueError:
                raise DurabilityError(
                    f"unknown fsync policy {self.fsync!r}; expected one of "
                    f"{[p.value for p in FsyncPolicy]}"
                ) from None
        if self.segment_max_bytes < 1024:
            raise DurabilityError("segment_max_bytes must be at least 1 KiB")
        if self.keep_checkpoints < 1:
            raise DurabilityError("keep_checkpoints must be at least 1")


# ----------------------------------------------------------------------
# decoded records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InsertRecord:
    """One ingested batch: the unit of replay."""

    basket: str
    stamp: float
    columns: Tuple[Tuple[str, AtomType], ...]
    arrays: Tuple[np.ndarray, ...]

    @property
    def count(self) -> int:
        return len(self.arrays[0]) if self.arrays else 0


@dataclass(frozen=True)
class EmitRecord:
    """An emitter delivered everything up to ``high_water`` (inclusive)."""

    emitter: str
    high_water: int


@dataclass(frozen=True)
class FiringRecord:
    """One factory activation completed after the preceding records.

    Replay re-activates the factory at exactly this point, reproducing
    the original firing schedule.  Without it, replay would coalesce
    every post-checkpoint insert into one giant firing — harmless for
    operators whose output is a per-row function of the input, but
    batching-sensitive operators (the incremental GROUP-BY aggregate
    emits one retract/insert pair per *touched group per firing*) would
    produce a different delta sequence, desynchronizing the emitters'
    sequence-based exactly-once suppression.
    """

    factory: str


@dataclass(frozen=True)
class CheckpointRecord:
    """Marker: checkpoint ``checkpoint_id`` completed after this point."""

    checkpoint_id: int


WalEntry = Union[InsertRecord, EmitRecord, FiringRecord, CheckpointRecord]


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def _encode_insert(record: InsertRecord) -> bytes:
    header = json.dumps(
        {
            "basket": record.basket,
            "stamp": record.stamp,
            "cols": [[n, a.value] for n, a in record.columns],
        },
        separators=(",", ":"),
    ).encode("utf-8")
    parts = [_KIND.pack(KIND_INSERT), _U32.pack(len(header)), header]
    for (name, atom), array in zip(record.columns, record.arrays):
        payload = encode_column(atom, array)
        parts.append(_U32.pack(len(payload)))
        parts.append(payload)
    return b"".join(parts)


def _encode_json_record(kind: int, doc: dict) -> bytes:
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return _KIND.pack(kind) + _U32.pack(len(body)) + body


def decode_record(payload: bytes) -> WalEntry:
    """Decode one frame payload into a typed record."""
    if not payload:
        raise DurabilityError("empty WAL record payload")
    (kind,) = _KIND.unpack_from(payload, 0)
    offset = _KIND.size
    if len(payload) < offset + _U32.size:
        raise DurabilityError("WAL record shorter than its header")
    (header_len,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    if len(payload) < offset + header_len:
        raise DurabilityError("WAL record header truncated")
    doc = json.loads(payload[offset : offset + header_len].decode("utf-8"))
    offset += header_len
    if kind == KIND_EMIT:
        return EmitRecord(doc["emitter"], int(doc["high_water"]))
    if kind == KIND_CHECKPOINT:
        return CheckpointRecord(int(doc["checkpoint"]))
    if kind == KIND_FIRING:
        return FiringRecord(doc["factory"])
    if kind != KIND_INSERT:
        raise DurabilityError(f"unknown WAL record kind {kind}")
    columns = tuple((n, AtomType(a)) for n, a in doc["cols"])
    arrays: List[np.ndarray] = []
    for _, atom in columns:
        if len(payload) < offset + _U32.size:
            raise DurabilityError("WAL insert record column truncated")
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        if len(payload) < offset + length:
            raise DurabilityError("WAL insert record column truncated")
        arrays.append(decode_column(atom, payload[offset : offset + length]))
        offset += length
    return InsertRecord(
        doc["basket"], float(doc["stamp"]), columns, tuple(arrays)
    )


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
def _segment_path(directory: Path, seq: int) -> Path:
    return directory / f"wal-{seq:08d}.log"


def list_segments(directory: Union[str, Path]) -> List[Tuple[int, Path]]:
    """``(segment_seq, path)`` pairs sorted by segment number."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = SEGMENT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    return sorted(found)


class WalWriter:
    """Appends framed records to the active segment (thread-safe)."""

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: FsyncPolicy = FsyncPolicy.INTERVAL,
        fsync_interval: float = 0.05,
        segment_max_bytes: int = 8 * 1024 * 1024,
        on_append: Optional[Callable[[int], None]] = None,
        on_fsync: Optional[Callable[[], None]] = None,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.fsync_interval = float(fsync_interval)
        self.segment_max_bytes = int(segment_max_bytes)
        # observability hooks: bytes appended / fsyncs issued
        self._on_append = on_append
        self._on_fsync = on_fsync
        self._lock = threading.Lock()
        self._last_fsync = time.monotonic()
        self.records_written = 0
        self.bytes_written = 0
        self.fsyncs = 0
        existing = list_segments(self.directory)
        # never reuse a pre-crash segment: its tail may be torn
        self._segment_seq = existing[-1][0] + 1 if existing else 0
        self._file = None
        self._open_segment(self._segment_seq)

    # ------------------------------------------------------------------
    @property
    def current_segment(self) -> int:
        return self._segment_seq

    def _open_segment(self, seq: int) -> None:
        self._segment_seq = seq
        self._file = open(_segment_path(self.directory, seq), "ab")
        if self._file.tell() == 0:
            self._file.write(SEGMENT_MAGIC)
            self._file.flush()

    # ------------------------------------------------------------------
    def append_insert(
        self,
        basket: str,
        stamp: float,
        columns: Sequence[Tuple[str, AtomType]],
        arrays: Sequence[np.ndarray],
    ) -> None:
        self._append(
            _encode_insert(
                InsertRecord(
                    basket, float(stamp), tuple(columns), tuple(arrays)
                )
            )
        )

    def append_emit(self, emitter: str, high_water: int) -> None:
        self._append(
            _encode_json_record(
                KIND_EMIT, {"emitter": emitter, "high_water": int(high_water)}
            )
        )

    def append_firing(self, factory: str) -> None:
        self._append(
            _encode_json_record(KIND_FIRING, {"factory": factory})
        )

    def append_checkpoint_marker(self, checkpoint_id: int) -> None:
        self._append(
            _encode_json_record(
                KIND_CHECKPOINT, {"checkpoint": int(checkpoint_id)}
            )
        )

    def _append(self, payload: bytes) -> None:
        frame = pack_frame(payload)
        with self._lock:
            if self._file is None:
                raise DurabilityError("WAL writer is closed")
            self._file.write(frame)
            # flush to the OS unconditionally: a process crash (kill -9)
            # then loses nothing; fsync below is the power-loss dial
            self._file.flush()
            self.records_written += 1
            self.bytes_written += len(frame)
            if self._on_append is not None:
                self._on_append(len(frame))
            self._maybe_fsync()
            if self._file.tell() >= self.segment_max_bytes:
                self._rotate_locked()

    def _maybe_fsync(self) -> None:
        if self.fsync_policy is FsyncPolicy.OFF:
            return
        if self.fsync_policy is FsyncPolicy.INTERVAL:
            now = time.monotonic()
            if now - self._last_fsync < self.fsync_interval:
                return
            self._last_fsync = now
        os.fsync(self._file.fileno())
        self.fsyncs += 1
        if self._on_fsync is not None:
            self._on_fsync()

    # ------------------------------------------------------------------
    def rotate(self) -> int:
        """Seal the active segment, start the next; returns its number.

        The checkpointer calls this inside the consistency cut: records
        before the cut live in segments ``< rotate()``, records after it
        in ``>= rotate()``, so the manifest's "replay from segment N"
        names an exact suffix.
        """
        with self._lock:
            if self._file is None:
                raise DurabilityError("WAL writer is closed")
            return self._rotate_locked()

    def _rotate_locked(self) -> int:
        self._file.flush()
        if self.fsync_policy is not FsyncPolicy.OFF:
            os.fsync(self._file.fileno())
            self.fsyncs += 1
            if self._on_fsync is not None:
                self._on_fsync()
        self._file.close()
        self._open_segment(self._segment_seq + 1)
        return self._segment_seq

    def truncate_before(self, segment_seq: int) -> int:
        """Delete sealed segments ``< segment_seq``; returns count removed."""
        removed = 0
        for seq, path in list_segments(self.directory):
            if seq < segment_seq and seq != self._segment_seq:
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - races with inspection
                    pass
        return removed

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Flush and fsync regardless of policy (``stop()`` calls this)."""
        with self._lock:
            if self._file is None:
                return
            self._file.flush()
            os.fsync(self._file.fileno())
            self.fsyncs += 1
            if self._on_fsync is not None:
                self._on_fsync()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    def abandon(self) -> None:
        """Drop the file handle without flushing — crash simulation only.

        Everything already ``flush()``-ed per record survives (the OS
        holds it), which is exactly the state a killed process leaves
        behind; since every append flushes, the user-space buffer is
        empty and dropping the handle loses nothing.  Crucially, no
        final fsync happens — the log is left exactly as the OS saw it.
        """
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
def read_wal(
    directory: Union[str, Path],
    start_segment: int = 0,
    stop_segment: Optional[int] = None,
) -> Tuple[List[WalEntry], bool]:
    """Decode all records in segments ``[start_segment, stop_segment)``.

    Returns ``(records, torn)`` where ``torn`` reports whether a torn or
    corrupt tail was truncated away.  A bad frame ends the whole read
    (not just its segment): later segments cannot contain acknowledged
    records if an earlier one is damaged, because segments are written
    strictly in order.
    """
    records: List[WalEntry] = []
    torn = False
    for seq, path in list_segments(directory):
        if seq < start_segment:
            continue
        if stop_segment is not None and seq >= stop_segment:
            break
        data = path.read_bytes()
        if not data.startswith(SEGMENT_MAGIC):
            return records, True
        payloads, segment_torn = frames_with_tail(
            data[len(SEGMENT_MAGIC):]
        )
        for payload in payloads:
            records.append(decode_record(payload))
        if segment_torn:
            torn = True
            break
    return records, torn
