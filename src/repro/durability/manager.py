"""The durability manager: one object wiring WAL + checkpoint + recovery.

:class:`~repro.core.engine.DataCell` owns at most one manager (built
when ``durability=DurabilityConfig(...)`` is passed).  Baskets and
emitters hold it as their ``wal_sink``; every hook they call is a no-op
attribute check when durability is off, which is what keeps the
disabled-path overhead at zero.

The checkpoint consistency cut
------------------------------
``checkpoint()`` acquires *every* basket lock, in global name order —
the same order :meth:`repro.core.factory.Factory._lock_order` uses, so a
concurrent factory activation (which holds all its baskets' locks for
its whole critical section) either completes before the cut or starts
after it, never straddles it.  Receptors and emitters take single
basket locks, so the all-locks cut is a quiescent point of the entire
Petri net: basket contents, factory saved state (only mutated under
those same locks), binding cursors, and emitter high-water marks are
mutually consistent inside it.  The WAL is rotated *inside* the cut,
making "replay from segment N" an exact suffix.  Serialization and file
I/O happen after the locks are released — only memory copies happen
inside the cut.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

import numpy as np

from ..kernel.types import AtomType
from .checkpoint import (
    CheckpointSnapshot,
    list_checkpoints,
    write_checkpoint,
)
from .wal import DurabilityConfig, WalWriter, list_segments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import DataCell
    from .recovery import RecoveryReport

__all__ = ["DurabilityManager"]


class _CheckpointThread(threading.Thread):
    """Background checkpointer, armed by ``checkpoint_interval``.

    Named with the engine's ``datacell-`` prefix so the test suite's
    thread-hermeticity fixture catches a leak (a missing ``stop()``).
    """

    def __init__(self, manager: "DurabilityManager", interval: float):
        super().__init__(name="datacell-checkpointer", daemon=True)
        self._manager = manager
        self._interval = interval
        self._stop_event = threading.Event()

    def run(self) -> None:
        while not self._stop_event.wait(self._interval):
            try:
                self._manager.checkpoint()
            except Exception:
                self._manager.checkpoint_failures += 1

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        self.join(timeout)


class DurabilityManager:
    """Coordinates the WAL, checkpoints, and recovery for one engine."""

    def __init__(self, engine: "DataCell", config: DurabilityConfig):
        self.engine = engine
        self.config = config
        self.root = Path(config.directory)
        self.wal_dir = self.root / "wal"
        self.checkpoint_dir = self.root / "checkpoints"
        self.root.mkdir(parents=True, exist_ok=True)
        metrics = engine.metrics
        self._m_records = metrics.counter(
            "datacell_wal_records_total", "Records appended to the WAL"
        )
        self._m_bytes = metrics.counter(
            "datacell_wal_bytes_total", "Bytes appended to the WAL"
        )
        self._m_fsyncs = metrics.counter(
            "datacell_wal_fsyncs_total", "fsync calls issued by the WAL"
        )
        self._m_checkpoints = metrics.counter(
            "datacell_checkpoints_total", "Checkpoints completed"
        )
        self._m_ckpt_seconds = metrics.histogram(
            "datacell_checkpoint_seconds",
            "Wall time of one checkpoint (cut + serialization + fsync)",
        )
        self._m_recovery_seconds = metrics.histogram(
            "datacell_recovery_seconds",
            "Wall time of one recovery (load checkpoint + replay WAL)",
        )

        def _on_append(nbytes: int) -> None:
            self._m_records.inc()
            self._m_bytes.inc(nbytes)

        self.wal = WalWriter(
            self.wal_dir,
            fsync=config.fsync,
            fsync_interval=config.fsync_interval,
            segment_max_bytes=config.segment_max_bytes,
            on_append=_on_append,
            on_fsync=self._m_fsyncs.inc,
        )
        # recovery must ignore records this process writes after restart:
        # everything before this segment is the pre-crash log
        self._recovery_stop_segment = self.wal.current_segment
        existing = list_checkpoints(self.checkpoint_dir)
        self._next_checkpoint_id = existing[-1][0] + 1 if existing else 1
        self._checkpoint_lock = threading.Lock()
        self._checkpointer: Optional[_CheckpointThread] = None
        self.replaying = False
        self.checkpoints_taken = 0
        self.checkpoint_failures = 0
        self.last_checkpoint_seconds: Optional[float] = None
        self.last_recovery: Optional["RecoveryReport"] = None

    # ------------------------------------------------------------------
    # WAL hooks (called by Basket / Emitter under their own locks)
    # ------------------------------------------------------------------
    def log_insert(
        self,
        basket: str,
        stamp: float,
        columns: Sequence[Tuple[str, AtomType]],
        arrays: Sequence[np.ndarray],
    ) -> None:
        """Record one ingested batch (skipped while replaying that log)."""
        if self.replaying:
            return
        self.wal.append_insert(basket, stamp, columns, arrays)

    def log_emit(self, emitter: str, high_water: int) -> None:
        """Record an emitter's new delivery high-water mark."""
        if self.replaying:
            return
        self.wal.append_emit(emitter, high_water)

    def log_firing(self, factory: str) -> None:
        """Record one factory activation boundary.

        Replay re-activates factories at these exact points so the
        recovered output reproduces the original firing schedule —
        required for batching-sensitive operators (e.g. the incremental
        GROUP-BY aggregate) whose per-firing delta depends on how the
        input was chopped, not just on its content.
        """
        if self.replaying:
            return
        self.wal.append_firing(factory)

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Take one engine-wide checkpoint; returns its id."""
        from ..core.basket import Basket
        from ..core.emitter import Emitter
        from ..core.factory import Factory

        with self._checkpoint_lock:
            started = time.perf_counter()
            checkpoint_id = self._next_checkpoint_id
            # system baskets (sys.*) are derived telemetry: never WAL'd
            # (their wal_sink stays None), never checkpointed — recovery
            # rebuilds them empty and the sampler repopulates them
            baskets = sorted(
                (
                    t
                    for t in self.engine.catalog.baskets()
                    if isinstance(t, Basket) and not t.is_system
                ),
                key=lambda b: b.name.lower(),
            )
            acquired = []
            try:
                for basket in baskets:
                    basket.lock.acquire()
                    acquired.append(basket)
            except BaseException:
                for basket in reversed(acquired):
                    basket.lock.release()
                raise
            try:
                snapshot = CheckpointSnapshot(
                    checkpoint_id=checkpoint_id,
                    wal_start_segment=self.wal.rotate(),
                    clock_now=float(self.engine.clock.now()),
                )
                for basket in baskets:
                    state = basket.export_state()
                    state.digest = basket.state_digest()
                    snapshot.baskets[basket.name] = state
                for transition in self.engine.scheduler.transitions():
                    if isinstance(transition, Factory):
                        snapshot.factories[transition.name] = (
                            transition.export_state()
                        )
                    elif isinstance(transition, Emitter):
                        snapshot.emitters[transition.name] = int(
                            transition.high_water_seq
                        )
            finally:
                for basket in reversed(baskets):
                    basket.lock.release()
            # disk work happens outside the cut: only copies were made
            # while the locks were held
            write_checkpoint(
                self.checkpoint_dir,
                snapshot,
                keep=self.config.keep_checkpoints,
            )
            self.wal.truncate_before(snapshot.wal_start_segment)
            self.wal.append_checkpoint_marker(checkpoint_id)
            self._next_checkpoint_id = checkpoint_id + 1
            self.checkpoints_taken += 1
            elapsed = time.perf_counter() - started
            self.last_checkpoint_seconds = elapsed
            self._m_checkpoints.inc()
            self._m_ckpt_seconds.observe(elapsed)
            self.engine.trace.record(
                "checkpoint",
                "durability",
                id=checkpoint_id,
                seconds=round(elapsed, 6),
            )
            return checkpoint_id

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> "RecoveryReport":
        """Restore the engine from disk (see :mod:`.recovery`)."""
        from .recovery import recover

        started = time.perf_counter()
        report = recover(self, stop_segment=self._recovery_stop_segment)
        report.seconds = time.perf_counter() - started
        self._m_recovery_seconds.observe(report.seconds)
        self.last_recovery = report
        self.engine.trace.record(
            "recovery",
            "durability",
            checkpoint=report.checkpoint_id,
            replayed=report.rows_replayed,
        )
        return report

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_checkpointer(self) -> None:
        if (
            self.config.checkpoint_interval is None
            or self._checkpointer is not None
        ):
            return
        self._checkpointer = _CheckpointThread(
            self, self.config.checkpoint_interval
        )
        self._checkpointer.start()

    def stop_checkpointer(self, timeout: float = 5.0) -> None:
        if self._checkpointer is not None:
            self._checkpointer.stop(timeout)
            self._checkpointer = None

    def flush(self) -> None:
        """Force the WAL to stable storage (``DataCell.stop()`` path)."""
        self.wal.sync()

    def close(self) -> None:
        self.stop_checkpointer()
        self.wal.close()

    def abandon(self) -> None:
        """Simulate a process kill: drop handles, skip every final flush."""
        if self._checkpointer is not None:
            self._checkpointer.stop(0.0)
            self._checkpointer = None
        self.wal.abandon()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Durability section of :meth:`DataCell.stats`."""
        segments = [seq for seq, _ in list_segments(self.wal_dir)]
        return {
            "wal_records": self.wal.records_written,
            "wal_bytes": self.wal.bytes_written,
            "wal_fsyncs": self.wal.fsyncs,
            "wal_segments": len(segments),
            "fsync_policy": self.config.fsync.value,
            "checkpoints": self.checkpoints_taken,
            "checkpoint_failures": self.checkpoint_failures,
            "last_checkpoint_seconds": self.last_checkpoint_seconds,
            "recovered": self.last_recovery is not None,
            "recovery_seconds": (
                self.last_recovery.seconds if self.last_recovery else None
            ),
        }
