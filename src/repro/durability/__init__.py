"""Durability: basket WAL, columnar checkpoints, crash recovery.

The paper's §1/§2 pitch — a stream engine living inside a relational
kernel inherits the DBMS's persistence machinery "for free" — realized
for this kernel: ingested batches are write-ahead logged at the basket
boundary, the whole engine state (basket columns, factory window
buffers, reader cursors, emitter delivery marks) checkpoints
atomically, and a restarted process replays the log suffix through the
normal ingest path to reach exactly the pre-crash state with
exactly-once delivery to emitter clients.  See ``docs/durability.md``.
"""

from .checkpoint import (
    BasketState,
    CheckpointSnapshot,
    LoadedCheckpoint,
    list_checkpoints,
    load_latest_checkpoint,
    write_checkpoint,
)
from .manager import DurabilityManager
from .recovery import RecoveryReport, recover
from .wal import (
    CheckpointRecord,
    DurabilityConfig,
    EmitRecord,
    FsyncPolicy,
    InsertRecord,
    WalWriter,
    list_segments,
    read_wal,
)

__all__ = [
    "DurabilityConfig",
    "DurabilityManager",
    "FsyncPolicy",
    "WalWriter",
    "read_wal",
    "list_segments",
    "InsertRecord",
    "EmitRecord",
    "CheckpointRecord",
    "BasketState",
    "CheckpointSnapshot",
    "LoadedCheckpoint",
    "write_checkpoint",
    "load_latest_checkpoint",
    "list_checkpoints",
    "RecoveryReport",
    "recover",
]
