"""Crash recovery: newest valid checkpoint + WAL suffix replay.

The protocol (see ``docs/durability.md`` for the full argument):

1. **Load** the newest checkpoint that validates (corrupt/torn latest
   falls back to its predecessor; no checkpoint at all means recovery
   starts from an empty engine and replays the whole log).
2. **Restore** every basket's columns/sequence numbers/reader cursors,
   every factory's binding cursors and saved plan state (window
   buffers), and every emitter's delivery high-water mark into an
   engine that was *constructed with the same topology* (same baskets,
   same queries under the same names) — recovery restores state, not
   schema.
3. **Replay** the WAL suffix (segments at or after the checkpoint's
   rotation point) through the normal ingest path
   (``Basket.insert_columns``), with WAL logging suppressed.  A torn
   record ends the replay; everything before it is kept.  ``EMIT``
   records lift emitter high-water marks past the checkpoint, and
   ``FIRING`` records re-activate the named factory at exactly the
   boundary the original run fired it, reproducing the pre-crash firing
   schedule tuple for tuple.
4. The caller then **drives the scheduler** as usual.  Factories
   recompute every output row the crash destroyed — emitted row content
   and sequence numbers are a deterministic function of ingest order
   *and* of the replayed firing schedule (batching-sensitive plans like
   the incremental GROUP-BY aggregate emit per touched group per
   firing; the invariant ``repro.simtest`` checks continuously), so the
   rows regenerate with the same output sequence numbers they had
   before the crash, and each emitter's high-water mark suppresses
   exactly those already delivered: no loss, no duplicates.

Exactly-once holds at activation boundaries (where the simulated crash
fault strikes).  A real process dying *between* an emitter's basket
consumption and its client callbacks can deliver-then-forget at most
one batch per emitter — the classic delivery/ack race, documented as
the at-most-once edge in ``docs/durability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from ..errors import DurabilityError
from .checkpoint import load_latest_checkpoint
from .wal import (
    CheckpointRecord,
    EmitRecord,
    FiringRecord,
    InsertRecord,
    read_wal,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .manager import DurabilityManager

__all__ = ["RecoveryReport", "recover"]


@dataclass
class RecoveryReport:
    """What one recovery did."""

    checkpoint_id: Optional[int]  # None when no checkpoint was usable
    wal_records: int = 0
    rows_replayed: int = 0
    emit_marks: int = 0
    firings_replayed: int = 0
    torn_tail: bool = False
    baskets_restored: int = 0
    factories_restored: int = 0
    seconds: float = 0.0


def recover(
    manager: "DurabilityManager", stop_segment: Optional[int] = None
) -> RecoveryReport:
    """Restore ``manager.engine`` from its durability directory.

    ``stop_segment`` bounds the replay to pre-crash segments (the
    manager passes its own first segment, so records this process wrote
    after restart are never replayed into themselves).
    """
    from ..core.basket import Basket
    from ..core.emitter import Emitter
    from ..core.factory import Factory

    engine = manager.engine
    report = RecoveryReport(checkpoint_id=None)
    loaded = load_latest_checkpoint(manager.checkpoint_dir)
    start_segment = 0
    if loaded is not None:
        report.checkpoint_id = loaded.checkpoint_id
        start_segment = loaded.wal_start_segment
        for name, state in loaded.baskets.items():
            table = (
                engine.catalog.get(name)
                if engine.catalog.has(name)
                else None
            )
            if not isinstance(table, Basket):
                raise DurabilityError(
                    f"checkpoint has basket {name!r} but the engine does "
                    "not — recovery needs the pre-crash topology rebuilt "
                    "first"
                )
            table.import_state(state)
            report.baskets_restored += 1
        transitions: Dict[str, object] = {
            t.name: t for t in engine.scheduler.transitions()
        }
        for name, state in loaded.factories.items():
            factory = transitions.get(name)
            if not isinstance(factory, Factory):
                raise DurabilityError(
                    f"checkpoint has factory {name!r} but the engine does "
                    "not — re-register the query before recovering"
                )
            factory.import_state(state)
            report.factories_restored += 1
        for name, high_water in loaded.emitters.items():
            emitter = transitions.get(name)
            if not isinstance(emitter, Emitter):
                raise DurabilityError(
                    f"checkpoint has emitter {name!r} but the engine does "
                    "not — re-register the query before recovering"
                )
            emitter.high_water_seq = max(
                emitter.high_water_seq, int(high_water)
            )

    records, torn = read_wal(
        manager.wal_dir, start_segment, stop_segment=stop_segment
    )
    report.wal_records = len(records)
    report.torn_tail = torn
    max_stamp = loaded.clock_now if loaded is not None else None
    manager.replaying = True
    try:
        for record in records:
            if isinstance(record, InsertRecord):
                basket = (
                    engine.catalog.get(record.basket)
                    if engine.catalog.has(record.basket)
                    else None
                )
                if not isinstance(basket, Basket):
                    raise DurabilityError(
                        f"WAL insert targets unknown basket "
                        f"{record.basket!r}"
                    )
                basket.insert_columns(
                    {
                        name: array
                        for (name, _), array in zip(
                            record.columns, record.arrays
                        )
                    },
                    timestamp=record.stamp,
                )
                report.rows_replayed += record.count
                if max_stamp is None or record.stamp > max_stamp:
                    max_stamp = record.stamp
            elif isinstance(record, EmitRecord):
                emitter = next(
                    (
                        t
                        for t in engine.scheduler.transitions()
                        if t.name == record.emitter
                    ),
                    None,
                )
                if not isinstance(emitter, Emitter):
                    raise DurabilityError(
                        f"WAL emit record names unknown emitter "
                        f"{record.emitter!r}"
                    )
                emitter.high_water_seq = max(
                    emitter.high_water_seq, record.high_water
                )
                report.emit_marks += 1
            elif isinstance(record, FiringRecord):
                factory = next(
                    (
                        t
                        for t in engine.scheduler.transitions()
                        if t.name == record.factory
                    ),
                    None,
                )
                if not isinstance(factory, Factory):
                    raise DurabilityError(
                        f"WAL firing record names unknown factory "
                        f"{record.factory!r}"
                    )
                # re-activate at the recorded boundary: the factory sees
                # exactly the basket state the original firing saw (all
                # earlier records are applied), so it consumes and emits
                # the same tuples with the same output sequence numbers
                # — the alignment the emitters' high-water suppression
                # depends on, even for batching-sensitive plans
                factory.activate()
                report.firings_replayed += 1
            elif isinstance(record, CheckpointRecord):
                continue
    finally:
        manager.replaying = False

    # lift a settable clock to the recovered frontier so post-recovery
    # stamps never run behind replayed ones (time-window monotonicity)
    clock_set = getattr(engine.clock, "set", None)
    if (
        max_stamp is not None
        and clock_set is not None
        and max_stamp > engine.clock.now()
    ):
        clock_set(max_stamp)
    return report
