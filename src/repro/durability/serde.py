"""Binary columnar serialization for the durability subsystem.

Both the WAL and the checkpoint store basket columns in the same framed
columnar encoding, built directly on the kernel's atom storage
(:mod:`repro.kernel.types`):

* fixed-width atoms (``OID``/``BOOL``/``INT``/``LNG``/``DBL``/
  ``TIMESTAMP``) are written as ``<u64 count>`` followed by the raw
  little-endian array bytes — NIL sentinels are in-domain values, so
  they round-trip without any validity bitmap;
* ``STR`` tails are object arrays of python strings (or ``None`` for
  NIL), written as ``<u64 count>`` then, per value, ``<u32 byte
  length><utf-8 bytes>`` with length ``0xFFFFFFFF`` reserved for NIL.

Every record on disk is a *frame*::

    <u32 crc32 of payload> <u64 payload length> <payload bytes>

A frame whose length field runs past the end of the file, or whose CRC
does not match, marks the torn tail of a log cut short by a crash;
readers stop there and keep the valid prefix (see
:func:`iter_frames`).
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import DurabilityError
from ..kernel.types import AtomType, numpy_dtype

__all__ = [
    "encode_column",
    "decode_column",
    "pack_frame",
    "unpack_frame",
    "iter_frames",
    "frames_with_tail",
    "FRAME_HEADER",
]

FRAME_HEADER = struct.Struct("<IQ")  # crc32, payload length
_COUNT = struct.Struct("<Q")
_STRLEN = struct.Struct("<I")
STR_NIL_LENGTH = 0xFFFFFFFF

# on-disk byte order is fixed little-endian regardless of platform
_WIRE_DTYPES = {
    AtomType.OID: np.dtype("<i8"),
    AtomType.BOOL: np.dtype("<i1"),
    AtomType.INT: np.dtype("<i4"),
    AtomType.LNG: np.dtype("<i8"),
    AtomType.DBL: np.dtype("<f8"),
    AtomType.TIMESTAMP: np.dtype("<f8"),
}


# ----------------------------------------------------------------------
# columns
# ----------------------------------------------------------------------
def encode_column(atom: AtomType, values: np.ndarray) -> bytes:
    """Serialize one column tail (storage representation) to bytes."""
    values = np.asarray(values)
    if atom is AtomType.STR:
        parts: List[bytes] = [_COUNT.pack(len(values))]
        for value in values:
            if value is None:
                parts.append(_STRLEN.pack(STR_NIL_LENGTH))
                continue
            raw = str(value).encode("utf-8")
            if len(raw) >= STR_NIL_LENGTH:
                raise DurabilityError(
                    f"string of {len(raw)} bytes exceeds the wire format"
                )
            parts.append(_STRLEN.pack(len(raw)))
            parts.append(raw)
        return b"".join(parts)
    wire = _WIRE_DTYPES[atom]
    array = np.ascontiguousarray(values, dtype=wire)
    return _COUNT.pack(len(array)) + array.tobytes()


def decode_column(atom: AtomType, payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_column`; returns a storage-dtype array."""
    if len(payload) < _COUNT.size:
        raise DurabilityError("column payload shorter than its count header")
    (count,) = _COUNT.unpack_from(payload, 0)
    offset = _COUNT.size
    if atom is AtomType.STR:
        out = np.empty(count, dtype=object)
        for i in range(count):
            if len(payload) < offset + _STRLEN.size:
                raise DurabilityError("truncated STR column payload")
            (length,) = _STRLEN.unpack_from(payload, offset)
            offset += _STRLEN.size
            if length == STR_NIL_LENGTH:
                out[i] = None
                continue
            if len(payload) < offset + length:
                raise DurabilityError("truncated STR column payload")
            out[i] = payload[offset : offset + length].decode("utf-8")
            offset += length
        return out
    wire = _WIRE_DTYPES[atom]
    expected = offset + count * wire.itemsize
    if len(payload) < expected:
        raise DurabilityError(
            f"{atom.value} column payload holds fewer than {count} values"
        )
    array = np.frombuffer(payload, dtype=wire, count=count, offset=offset)
    return array.astype(numpy_dtype(atom), copy=True)


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def pack_frame(payload: bytes) -> bytes:
    """Wrap a payload in the CRC32-checksummed on-disk frame."""
    return FRAME_HEADER.pack(
        zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    ) + payload


def unpack_frame(buffer: bytes, offset: int) -> Optional[Tuple[bytes, int]]:
    """Parse one frame at ``offset``; ``None`` on a torn/corrupt frame.

    Returns ``(payload, next_offset)`` for a complete, checksum-valid
    frame.  A short header, short payload, or CRC mismatch all return
    ``None`` — the caller treats everything from ``offset`` on as the
    torn tail.
    """
    if len(buffer) < offset + FRAME_HEADER.size:
        return None
    crc, length = FRAME_HEADER.unpack_from(buffer, offset)
    start = offset + FRAME_HEADER.size
    end = start + length
    if len(buffer) < end:
        return None
    payload = buffer[start:end]
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return None
    return payload, end


def iter_frames(buffer: bytes, offset: int = 0) -> Iterator[bytes]:
    """Yield checksum-valid payloads until EOF or the first bad frame.

    The prefix property of an append-only log makes this safe: a frame
    after a corrupt one cannot have been durable before it, so stopping
    at the first failure never drops acknowledged data.
    """
    while offset < len(buffer):
        parsed = unpack_frame(buffer, offset)
        if parsed is None:
            return
        payload, offset = parsed
        yield payload


def frames_with_tail(buffer: bytes) -> Tuple[List[bytes], bool]:
    """All valid payloads plus whether a torn/corrupt tail was cut off."""
    payloads: List[bytes] = []
    offset = 0
    while offset < len(buffer):
        parsed = unpack_frame(buffer, offset)
        if parsed is None:
            return payloads, True
        payload, offset = parsed
        payloads.append(payload)
    return payloads, False
