"""Per-client session state: bounded output queues and subscriptions.

Everything here is transport-agnostic and thread-safe: the emitter fires
on a scheduler thread (or inline under the simulated scheduler) and
pushes encoded ``DATA`` frames into the session's :class:`OutputQueue`;
the asyncio writer (or a fake transport in tests) drains it.  The queue
is where the backpressure policy dial lives:

``block``
    The *delivering* thread waits until the client drains below the
    bound — lossless, and because the emitter thread is the one
    blocked, backpressure propagates naturally into the scheduler (a
    slow client slows its queries, not the whole engine... unless they
    share a factory).  A ``block_timeout`` bounds the wait; timing out
    escalates to disconnect so one dead client cannot wedge an emitter
    forever.
``drop-oldest``
    The oldest queued ``DATA`` frame is shed to make room — bounded
    memory, freshest results win, drops are counted on the session,
    the emitter (:meth:`~repro.core.emitter.Emitter.note_dropped`), and
    ``sys.events``.
``disconnect``
    The session is closed with an ``ERROR`` frame — strict clients that
    would rather re-subscribe than miss rows.

Control frames (``ACK``/``ERROR``/``PONG``/``BYE``) bypass the bound:
they are small, finite, and dropping them would deadlock the protocol.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..errors import ServerError
from .protocol import (
    MAX_FRAME_BYTES,
    ColumnSpec,
    Message,
    data_message,
    encode_message,
    error_message,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "BackpressurePolicy",
    "ServerConfig",
    "OutputQueue",
    "ClientSession",
    "SubscriptionBinding",
]

#: The three positions of the backpressure dial.
BACKPRESSURE_POLICIES = ("block", "drop-oldest", "disconnect")

BackpressurePolicy = str  # one of BACKPRESSURE_POLICIES


@dataclass
class ServerConfig:
    """Tunable server behavior (transport + admission + backpressure)."""

    #: policy applied when a client's output queue is full
    backpressure: BackpressurePolicy = "block"
    #: bound on queued DATA frames per client
    queue_frames: int = 1024
    #: how long ``block`` may stall a delivery before escalating to
    #: disconnect (seconds)
    block_timeout: float = 30.0
    #: total session cap; HELLO beyond it is refused
    max_sessions: int = 1024
    #: per-tenant session cap (None = unlimited)
    max_sessions_per_tenant: Optional[int] = None
    #: per-tenant ingest watermark: past this many queued-but-unapplied
    #: rows the reader stops reading the socket (TCP backpressure)
    max_pending_rows_per_tenant: int = 200_000
    #: how long a budget breach throttles a tenant's ingest (seconds)
    admission_cooldown: float = 0.5
    #: reader poll interval while paused on admission (seconds)
    admission_poll: float = 0.02
    #: ingest batches applied per pump activation
    ingest_batch: int = 64
    #: frames the writer drains per wakeup
    drain_frames: int = 256
    #: decoder limit per frame
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: stop()/close() budget for flushing client output queues
    shutdown_drain_timeout: float = 5.0

    def validate(self) -> None:
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ServerError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.queue_frames < 1:
            raise ServerError("queue_frames must be >= 1")


class OutputQueue:
    """A bounded, policy-governed FIFO of encoded frames.

    Producers are emitter/scheduler threads; the consumer is the
    transport's writer.  ``offer_data`` returns what happened —
    ``"queued"``, ``"dropped"`` (drop-oldest shed a frame),
    ``"disconnect"`` (policy or block timeout demands closing), or
    ``"closed"`` (the session is already gone).
    """

    def __init__(
        self,
        policy: BackpressurePolicy,
        capacity: int,
        block_timeout: float,
    ):
        self.policy = policy
        self.capacity = capacity
        self.block_timeout = block_timeout
        # (is_data, frame bytes, row count)
        self._frames: Deque[Tuple[bool, bytes, int]] = deque()
        self._data_depth = 0
        self._cond = threading.Condition()
        self._closed = False
        self.dropped_frames = 0
        self.dropped_rows = 0
        self.blocks = 0

    # -- producers -----------------------------------------------------
    def offer_control(self, frame: bytes) -> str:
        with self._cond:
            if self._closed:
                return "closed"
            self._frames.append((False, frame, 0))
            return "queued"

    def offer_data(self, frame: bytes, rows: int) -> str:
        with self._cond:
            if self._closed:
                return "closed"
            shed = False
            if self._data_depth >= self.capacity:
                if self.policy == "drop-oldest":
                    self._shed_oldest_locked()
                    shed = True
                elif self.policy == "disconnect":
                    return "disconnect"
                else:  # block
                    self.blocks += 1
                    deadline = time.monotonic() + self.block_timeout
                    while (
                        self._data_depth >= self.capacity
                        and not self._closed
                    ):
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            return "disconnect"
                        self._cond.wait(remaining)
                    if self._closed:
                        return "closed"
            self._frames.append((True, frame, rows))
            self._data_depth += 1
            return "dropped" if shed else "queued"

    def _shed_oldest_locked(self) -> None:
        for i, (is_data, _, rows) in enumerate(self._frames):
            if is_data:
                del self._frames[i]
                self._data_depth -= 1
                self.dropped_frames += 1
                self.dropped_rows += rows
                return

    # -- the consumer --------------------------------------------------
    def drain(self, limit: int = 256) -> List[bytes]:
        """Pop up to ``limit`` frames (transport writer only)."""
        with self._cond:
            out: List[bytes] = []
            while self._frames and len(out) < limit:
                is_data, frame, _ = self._frames.popleft()
                if is_data:
                    self._data_depth -= 1
                out.append(frame)
            if out:
                self._cond.notify_all()
            return out

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._frames)

    @property
    def data_depth(self) -> int:
        return self._data_depth


class ClientSession:
    """One connected client: identity, output queue, subscriptions.

    The transport layer (asyncio server, or a fake in tests) installs
    two callbacks: ``wake`` (new frames are queued — schedule a writer
    drain) and ``request_close`` (policy demands disconnecting).  Both
    must be safe to call from any thread.
    """

    def __init__(
        self,
        session_id: int,
        config: ServerConfig,
        tenant: str = "default",
        client: str = "?",
        remote: str = "?",
        wake: Optional[Callable[[], None]] = None,
        request_close: Optional[Callable[[str], None]] = None,
    ):
        self.id = session_id
        self.config = config
        self.tenant = tenant
        self.client = client
        self.remote = remote
        self.queue = OutputQueue(
            config.backpressure, config.queue_frames, config.block_timeout
        )
        self.wake = wake or (lambda: None)
        self.request_close = request_close or (lambda reason: None)
        self.hello_done = False
        self.closed = False
        # name -> (handle or None, binding, owned-by-this-session)
        self.subscriptions: Dict[str, Tuple[Any, "SubscriptionBinding", bool]] = {}
        self._lock = threading.Lock()
        # counters (read by stats()/sys.events; single-writer per field)
        self.frames_in = 0
        self.frames_out = 0
        self.rows_in = 0
        self.rows_out = 0

    # -- outgoing ------------------------------------------------------
    def send(self, message: Message) -> str:
        """Queue a control frame and wake the writer."""
        outcome = self.queue.offer_control(encode_message(message))
        if outcome == "queued":
            self.wake()
        return outcome

    def send_error(
        self, code: str, text: str, seq: Optional[int] = None
    ) -> str:
        return self.send(error_message(code, text, seq))

    def deliver_data(self, frame: bytes, rows: int) -> str:
        """Queue a DATA frame under the backpressure policy."""
        outcome = self.queue.offer_data(frame, rows)
        if outcome in ("queued", "dropped"):
            self.rows_out += rows
            self.wake()
        elif outcome == "disconnect":
            self.send_error(
                "backpressure",
                f"output queue overflowed under policy "
                f"{self.queue.policy!r}",
            )
            self.request_close("backpressure")
        return outcome

    # -- subscriptions -------------------------------------------------
    def add_subscription(
        self, name: str, handle: Any, binding: "SubscriptionBinding",
        owned: bool,
    ) -> None:
        with self._lock:
            self.subscriptions[name] = (handle, binding, owned)

    def remove_subscription(
        self, name: str
    ) -> Optional[Tuple[Any, "SubscriptionBinding", bool]]:
        with self._lock:
            return self.subscriptions.pop(name, None)

    def drain_subscriptions(
        self,
    ) -> List[Tuple[str, Any, "SubscriptionBinding", bool]]:
        with self._lock:
            out = [
                (name, handle, binding, owned)
                for name, (handle, binding, owned) in
                self.subscriptions.items()
            ]
            self.subscriptions = {}
            return out

    def close(self) -> None:
        self.closed = True
        self.queue.close()

    def stats(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "client": self.client,
            "remote": self.remote,
            "subscriptions": len(self.subscriptions),
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "dropped_frames": self.dropped_frames,
            "dropped_rows": self.queue.dropped_rows,
            "queue_depth": self.queue.depth,
            "blocks": self.queue.blocks,
        }

    @property
    def dropped_frames(self) -> int:
        return self.queue.dropped_frames

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClientSession(id={self.id}, tenant={self.tenant!r}, "
            f"subs={len(self.subscriptions)})"
        )


class SubscriptionBinding:
    """The emitter-side callable attaching a session to a query.

    Subscribed via :meth:`Emitter.subscribe`; each delivery encodes the
    rows as one ``DATA`` frame and offers it to the session queue.
    Never raises into the emitter — queue overflow is resolved by the
    session's policy, and drops are folded back into the emitter's
    ``deliveries_dropped`` accounting.
    """

    def __init__(
        self,
        session: ClientSession,
        query: str,
        columns: List[ColumnSpec],
        emitter: Any = None,
        on_drop: Optional[Callable[[str, int, str], None]] = None,
    ):
        self.session = session
        self.query = query
        self.columns = columns
        self.emitter = emitter
        self.on_drop = on_drop
        self.deliveries = 0
        self.rows_delivered = 0

    def __call__(self, rows: List[Tuple[Any, ...]]) -> None:
        if not rows or self.session.closed:
            return
        frame = encode_message(data_message(self.query, self.columns, rows))
        outcome = self.session.deliver_data(frame, len(rows))
        if outcome in ("queued", "dropped"):
            self.deliveries += 1
            self.rows_delivered += len(rows)
        if outcome in ("dropped", "disconnect") and self.on_drop is not None:
            self.on_drop(self.query, len(rows), outcome)
        if outcome in ("dropped", "disconnect") and self.emitter is not None:
            self.emitter.note_dropped(len(rows))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubscriptionBinding({self.query!r} -> "
            f"session {self.session.id})"
        )
