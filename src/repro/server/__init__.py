"""repro.server — the DataCell's network front door (ROADMAP item 4).

The paper's receptors and emitters are explicitly network-facing: the
periphery "listens" for incoming stream tuples and "delivers" results to
registered clients.  This package gives the reproduction that transport:

* :mod:`repro.server.protocol` — the framed wire format (CRC frames from
  :mod:`repro.durability.serde`, columnar tuple payloads, JSON metadata);
* :mod:`repro.server.session` — per-client state: the bounded output
  queue with the block / drop-oldest / disconnect backpressure dial, and
  the subscription binding that attaches a session to an
  :class:`~repro.core.emitter.Emitter`;
* :mod:`repro.server.ingest` — the single ingest-queue seam bridging the
  asyncio loop to the threaded (or simulated) scheduler;
* :mod:`repro.server.server` — the asyncio TCP listener with a thin
  WebSocket upgrade on the same framing, plus tenant admission control
  wired into :class:`~repro.obs.resources.ResourceBudget` breaches;
* :mod:`repro.server.client` — the synchronous library/CLI client used
  by tests and benchmarks.

See ``docs/server.md`` for the protocol reference.
"""

from .client import DataCellClient
from .ingest import IngestQueue, ServerIngestPump
from .protocol import (
    PROTOCOL_VERSION,
    Command,
    FrameDecoder,
    Message,
    decode_payload,
    encode_message,
)
from .server import DataCellServer
from .session import BackpressurePolicy, ClientSession, ServerConfig

__all__ = [
    "BackpressurePolicy",
    "ClientSession",
    "Command",
    "DataCellClient",
    "DataCellServer",
    "FrameDecoder",
    "IngestQueue",
    "Message",
    "PROTOCOL_VERSION",
    "ServerConfig",
    "ServerIngestPump",
    "decode_payload",
    "encode_message",
]
