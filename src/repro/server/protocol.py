"""The repro.server wire protocol: CRC frames around columnar payloads.

Every message on the wire is one :func:`repro.durability.serde.pack_frame`
frame — ``<u32 crc32><u64 length><payload>`` — exactly the format the WAL
uses on disk, so torn and corrupt frames are detected the same way at
both edges of the engine.  Inside the frame::

    <u8 command> <u32 meta length> <meta JSON, utf-8> <column blocks...>

``meta`` is a small JSON object (command arguments: basket names, SQL
text, sequence numbers).  Commands that carry tuples (``INSERT`` and
``DATA``) append one block per column — ``<u32 byte length>`` followed by
:func:`repro.durability.serde.encode_column` output — with the column
names and atom types listed in ``meta["columns"]`` as ``[name, atom]``
pairs.  Integers are little-endian throughout, like the durability
formats.

The :class:`FrameDecoder` is the stateful inverse: feed it arbitrary
byte chunks from a socket and it yields complete messages, raising
:class:`~repro.errors.ProtocolError` on a corrupt frame (a *stream* has
no torn-tail recovery — a bad CRC means the connection is poisoned).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..durability.serde import (
    FRAME_HEADER,
    decode_column,
    encode_column,
    pack_frame,
)
from ..errors import ProtocolError
from ..kernel.types import AtomType, numpy_dtype, python_value

__all__ = [
    "PROTOCOL_VERSION",
    "Command",
    "Message",
    "FrameDecoder",
    "encode_message",
    "decode_payload",
    "arrays_from_rows",
    "rows_from_arrays",
    "data_message",
    "insert_message",
    "error_message",
]

PROTOCOL_VERSION = 1

#: Refuse frames larger than this before buffering them: a corrupt
#: length field must not make the decoder allocate unbounded memory.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("<BI")  # command, meta length
_COLUMN = struct.Struct("<I")  # encoded column block length

Row = Tuple[Any, ...]
ColumnSpec = Tuple[str, AtomType]


class Command(IntEnum):
    """Wire opcodes (see docs/server.md for the command table)."""

    HELLO = 1  # client → server: version + tenant + client name
    HELLO_OK = 2  # server → client: session granted
    CREATE = 3  # client → server: DDL (create basket/table)
    INSERT = 4  # client → server: batched columnar ingest
    SUBSCRIBE = 5  # client → server: register/attach a continuous query
    UNSUBSCRIBE = 6  # client → server: detach a subscription
    PING = 7  # client → server: liveness probe
    PONG = 8  # server → client: probe reply
    DATA = 9  # server → client: delivered result rows
    ACK = 10  # server → client: command completed
    ERROR = 11  # server → client: command failed / session fault
    BYE = 12  # either direction: orderly close


@dataclass
class Message:
    """One decoded protocol message.

    ``columns``/``arrays`` are only populated for tuple-bearing commands
    (``INSERT``/``DATA``); arrays hold the kernel's storage
    representation, exactly what :mod:`repro.durability.serde` encodes.
    """

    command: Command
    meta: Dict[str, Any] = field(default_factory=dict)
    columns: Optional[List[ColumnSpec]] = None
    arrays: Optional[List[np.ndarray]] = None

    def rows(self) -> List[Row]:
        """Tuple payload as python rows (NILs become ``None``)."""
        if not self.columns or self.arrays is None:
            return []
        return rows_from_arrays(self.columns, self.arrays)

    @property
    def row_count(self) -> int:
        if self.arrays:
            return int(len(self.arrays[0]))
        return 0


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_message(message: Message) -> bytes:
    """Serialize a message into one complete CRC frame."""
    meta = dict(message.meta)
    if message.columns is not None:
        meta["columns"] = [
            [name, atom.value] for name, atom in message.columns
        ]
    raw_meta = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    parts = [_HEADER.pack(int(message.command), len(raw_meta)), raw_meta]
    if message.columns is not None:
        arrays = message.arrays if message.arrays is not None else []
        if len(arrays) != len(message.columns):
            raise ProtocolError(
                f"message carries {len(message.columns)} column specs "
                f"but {len(arrays)} arrays"
            )
        for (_, atom), array in zip(message.columns, arrays):
            block = encode_column(atom, array)
            parts.append(_COLUMN.pack(len(block)))
            parts.append(block)
    return pack_frame(b"".join(parts))


def decode_payload(payload: bytes) -> Message:
    """Inverse of :func:`encode_message` (payload = frame contents)."""
    if len(payload) < _HEADER.size:
        raise ProtocolError("frame payload shorter than its header")
    opcode, meta_len = _HEADER.unpack_from(payload, 0)
    try:
        command = Command(opcode)
    except ValueError:
        raise ProtocolError(f"unknown command opcode {opcode}") from None
    offset = _HEADER.size
    if len(payload) < offset + meta_len:
        raise ProtocolError("frame payload shorter than its metadata")
    try:
        meta = json.loads(payload[offset : offset + meta_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame metadata: {exc}") from None
    if not isinstance(meta, dict):
        raise ProtocolError("frame metadata must be a JSON object")
    offset += meta_len
    columns: Optional[List[ColumnSpec]] = None
    arrays: Optional[List[np.ndarray]] = None
    if "columns" in meta:
        try:
            columns = [
                (str(name), AtomType(atom))
                for name, atom in meta.pop("columns")
            ]
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad column spec: {exc}") from None
        arrays = []
        for name, atom in columns:
            if len(payload) < offset + _COLUMN.size:
                raise ProtocolError(f"truncated column block {name!r}")
            (length,) = _COLUMN.unpack_from(payload, offset)
            offset += _COLUMN.size
            if len(payload) < offset + length:
                raise ProtocolError(f"truncated column block {name!r}")
            try:
                arrays.append(
                    decode_column(atom, payload[offset : offset + length])
                )
            except Exception as exc:
                raise ProtocolError(
                    f"bad column block {name!r}: {exc}"
                ) from None
            offset += length
        counts = {len(a) for a in arrays}
        if len(counts) > 1:
            raise ProtocolError(f"misaligned column blocks: {counts}")
    return Message(command, meta, columns, arrays)


# ----------------------------------------------------------------------
# row ↔ array conversion
# ----------------------------------------------------------------------
def arrays_from_rows(
    columns: Sequence[ColumnSpec], rows: Sequence[Sequence[Any]]
) -> List[np.ndarray]:
    """Python rows → storage arrays, one per column.

    ``None`` is accepted for STR columns only; numeric NILs must be
    passed as their in-domain sentinel values (the serde contract).
    """
    if rows:
        pivot = list(zip(*rows))
        if len(pivot) != len(columns):
            raise ProtocolError(
                f"rows have {len(pivot)} fields, schema has {len(columns)}"
            )
    else:
        pivot = [() for _ in columns]
    out: List[np.ndarray] = []
    for (name, atom), values in zip(columns, pivot):
        try:
            if atom is AtomType.STR:
                array = np.empty(len(values), dtype=object)
                for i, value in enumerate(values):
                    array[i] = None if value is None else str(value)
            else:
                array = np.asarray(values, dtype=numpy_dtype(atom))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                f"column {name!r} rejects the given values: {exc}"
            ) from None
        out.append(array)
    return out


def rows_from_arrays(
    columns: Sequence[ColumnSpec], arrays: Sequence[np.ndarray]
) -> List[Row]:
    """Storage arrays → python rows (inverse of :func:`arrays_from_rows`)."""
    cols = [
        [python_value(atom, value) for value in array]
        for (_, atom), array in zip(columns, arrays)
    ]
    if not cols or not cols[0]:
        return []
    return list(zip(*cols))


# ----------------------------------------------------------------------
# message builders (the handful used on hot paths)
# ----------------------------------------------------------------------
def insert_message(
    basket: str,
    columns: Sequence[ColumnSpec],
    rows: Sequence[Sequence[Any]],
    seq: Optional[int] = None,
) -> Message:
    meta: Dict[str, Any] = {"basket": basket}
    if seq is not None:
        meta["seq"] = int(seq)
    return Message(
        Command.INSERT, meta, list(columns), arrays_from_rows(columns, rows)
    )


def data_message(
    query: str,
    columns: Sequence[ColumnSpec],
    rows: Sequence[Sequence[Any]],
) -> Message:
    return Message(
        Command.DATA,
        {"query": query},
        list(columns),
        arrays_from_rows(columns, rows),
    )


def error_message(
    code: str, text: str, seq: Optional[int] = None
) -> Message:
    meta: Dict[str, Any] = {"code": code, "message": text}
    if seq is not None:
        meta["seq"] = int(seq)
    return Message(Command.ERROR, meta)


class FrameDecoder:
    """Incremental frame reassembly over a byte stream.

    Unlike the durability readers (which treat a bad frame as the torn
    tail of a crashed log), a live stream has no valid continuation
    after a corrupt frame — :meth:`feed` raises
    :class:`~repro.errors.ProtocolError` and the connection should be
    dropped.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES):
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data: bytes) -> List[Message]:
        """Absorb ``data``; return every newly completed message."""
        self._buffer.extend(data)
        self.bytes_fed += len(data)
        out: List[Message] = []
        offset = 0
        buffer = self._buffer
        while len(buffer) - offset >= FRAME_HEADER.size:
            crc, length = FRAME_HEADER.unpack_from(buffer, offset)
            if length > self.max_frame_bytes:
                raise ProtocolError(
                    f"frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            start = offset + FRAME_HEADER.size
            if len(buffer) < start + length:
                break  # incomplete: wait for more bytes
            payload = bytes(buffer[start : start + length])
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise ProtocolError("frame CRC mismatch")
            out.append(decode_payload(payload))
            self.frames_decoded += 1
            offset = start + length
        if offset:
            del buffer[:offset]
        return out

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
