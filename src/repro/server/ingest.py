"""The ingest-queue seam: where the asyncio loop meets the scheduler.

Network readers never touch baskets.  A decoded ``INSERT`` becomes an
:class:`IngestBatch` on the thread-safe :class:`IngestQueue`; the
:class:`ServerIngestPump` — an ordinary Petri-net transition, priority
10 like a receptor — drains the queue *inside* the scheduler and applies
each batch with :meth:`~repro.core.basket.Basket.insert_columns` (the
columnar fast path, which also WAL-logs under the basket lock).  The
``ACK`` is enqueued only after the apply, so an acknowledged batch is
exactly as durable as any other logged insert.

Because the pump is a normal transition, the seam works identically
under the threaded scheduler, the synchronous driver, and the simulated
scheduler — which is how ``repro.simtest`` covers the network path
(:mod:`repro.simtest.server_episode`) without sockets.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

import numpy as np

from ..core.factory import ActivationResult
from .protocol import (
    ColumnSpec,
    Command,
    Message,
)

__all__ = ["IngestBatch", "IngestQueue", "ServerIngestPump"]


class IngestBatch:
    """One decoded INSERT waiting to be applied by the pump."""

    __slots__ = (
        "basket", "columns", "arrays", "rows", "seq", "tenant", "reply",
    )

    def __init__(
        self,
        basket: str,
        columns: List[ColumnSpec],
        arrays: List[np.ndarray],
        rows: int,
        seq: Optional[int] = None,
        tenant: str = "default",
        reply: Optional[Callable[[Message], Any]] = None,
    ):
        self.basket = basket
        self.columns = columns
        self.arrays = arrays
        self.rows = rows
        self.seq = seq
        self.tenant = tenant
        self.reply = reply


class IngestQueue:
    """Thread-safe FIFO of batches with per-tenant pending-row counts.

    The pending-row watermark is the admission-control lever: a reader
    coroutine checks :meth:`pending_rows` for its tenant before reading
    more socket bytes, so an over-watermark tenant is throttled by TCP
    flow control instead of unbounded queueing.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._batches: Deque[IngestBatch] = deque()
        self._pending_rows: Dict[str, int] = {}
        self.total_batches = 0
        self.total_rows = 0

    def put(self, batch: IngestBatch) -> None:
        with self._lock:
            self._batches.append(batch)
            self._pending_rows[batch.tenant] = (
                self._pending_rows.get(batch.tenant, 0) + batch.rows
            )
            self.total_batches += 1
            self.total_rows += batch.rows

    def take(self, limit: int) -> List[IngestBatch]:
        with self._lock:
            out: List[IngestBatch] = []
            while self._batches and len(out) < limit:
                batch = self._batches.popleft()
                remaining = (
                    self._pending_rows.get(batch.tenant, 0) - batch.rows
                )
                if remaining > 0:
                    self._pending_rows[batch.tenant] = remaining
                else:
                    self._pending_rows.pop(batch.tenant, None)
                out.append(batch)
            return out

    def pending(self) -> int:
        with self._lock:
            return len(self._batches)

    def pending_rows(self, tenant: str) -> int:
        with self._lock:
            return self._pending_rows.get(tenant, 0)


class ServerIngestPump:
    """The scheduler-side transition applying queued ingest batches.

    Mirrors the receptor contract (priority 10: ingest drains ahead of
    queries); its "input place" is the ingest queue.  A batch whose
    basket has vanished, or whose arrays mismatch the schema, is
    answered with an ``ERROR`` reply and skipped — the stream outlives
    malformed input, like a receptor skipping bad tuples.
    """

    def __init__(
        self,
        cell: Any,
        queue: IngestQueue,
        batch_limit: int = 64,
        name: str = "server_ingest",
        priority: int = 10,
    ):
        self.cell = cell
        self.queue = queue
        self.batch_limit = batch_limit
        self.name = name
        self.priority = priority
        self.activations = 0
        self.total_rows = 0
        self.total_errors = 0
        self._m_rows = cell.metrics.counter(
            "datacell_server_ingested_rows_total",
            "Rows applied to baskets through the server ingest seam",
        )
        self._m_errors = cell.metrics.counter(
            "datacell_server_ingest_errors_total",
            "Ingest batches rejected at apply time",
        )

    # ------------------------------------------------------------------
    def enabled(self) -> bool:
        return self.queue.pending() > 0

    def activate(self) -> ActivationResult:
        started = time.perf_counter()
        batches = self.queue.take(self.batch_limit)
        applied = 0
        for batch in batches:
            try:
                basket = self.cell.basket(batch.basket)
                inserted = basket.insert_columns(
                    {
                        name: array
                        for (name, _), array in zip(
                            batch.columns, batch.arrays
                        )
                    }
                )
            except Exception as exc:
                self.total_errors += 1
                self._m_errors.inc()
                if batch.reply is not None:
                    batch.reply(
                        Message(
                            Command.ERROR,
                            {
                                "code": "ingest",
                                "message": str(exc),
                                "seq": batch.seq,
                            },
                        )
                    )
                continue
            applied += inserted
            if batch.reply is not None:
                batch.reply(
                    Message(
                        Command.ACK,
                        {"seq": batch.seq, "rows": inserted},
                    )
                )
        self.activations += 1
        self.total_rows += applied
        if applied:
            self._m_rows.inc(applied)
        return ActivationResult(
            fired=True,
            tuples_in=sum(b.rows for b in batches),
            tuples_out=applied,
            consumed=sum(b.rows for b in batches),
            elapsed=time.perf_counter() - started,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ServerIngestPump(pending={self.queue.pending()}, "
            f"rows={self.total_rows})"
        )
