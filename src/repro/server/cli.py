"""``datacell-serve`` — boot a DataCell and open the network front door.

Example::

    datacell-serve --port 9462 --init schema.sql --sys --http 8080

``--init`` takes a file of semicolon-separated SQL executed at boot
(DDL plus any standing queries clients will attach to with
``SUBSCRIBE {"query": name}``).  The process runs until interrupted,
then shuts down in the documented order (server → scheduler →
durability → httpd).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from ..core.engine import DataCell
from ..durability import DurabilityConfig
from .session import BACKPRESSURE_POLICIES, ServerConfig

__all__ = ["main"]


def _run_init(cell: DataCell, path: Path) -> int:
    # drop whole-line comments first: a comment above a statement must
    # not swallow the statement when the file is split on semicolons
    text = "\n".join(
        line
        for line in path.read_text().splitlines()
        if not line.lstrip().startswith("--")
    )
    statements = [s.strip() for s in text.split(";") if s.strip()]
    for sql in statements:
        cell.execute(sql)
    return len(statements)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="datacell-serve",
        description="Serve a DataCell engine over TCP/WebSocket.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=9462,
        help="listen port (0 = any free port; default 9462)",
    )
    parser.add_argument(
        "--init", type=Path, default=None,
        help="file of semicolon-separated SQL to execute at boot",
    )
    parser.add_argument(
        "--backpressure", choices=BACKPRESSURE_POLICIES, default="block",
        help="per-client output-queue policy (default block)",
    )
    parser.add_argument(
        "--queue-frames", type=int, default=1024,
        help="per-client DATA frame bound (default 1024)",
    )
    parser.add_argument(
        "--execution", choices=("reeval", "incremental"), default="reeval",
    )
    parser.add_argument(
        "--durability", type=Path, default=None, metavar="DIR",
        help="enable WAL + checkpoints in DIR (recovers on boot)",
    )
    parser.add_argument(
        "--sys", action="store_true",
        help="enable the sys.* self-monitoring streams",
    )
    parser.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="also serve the HTTP telemetry endpoint on PORT",
    )
    opts = parser.parse_args(argv)

    cell = DataCell(
        execution=opts.execution,
        durability=(
            DurabilityConfig(directory=str(opts.durability))
            if opts.durability is not None
            else None
        ),
        system_streams=bool(opts.sys),
    )
    if opts.durability is not None:
        report = cell.recover()
        print(f"recovered: {report}", file=sys.stderr)
    if opts.init is not None:
        count = _run_init(cell, opts.init)
        print(f"executed {count} init statements", file=sys.stderr)
    cell.start()
    config = ServerConfig(
        backpressure=opts.backpressure, queue_frames=opts.queue_frames
    )
    server = cell.serve(host=opts.host, port=opts.port, config=config)
    assert server.address is not None
    print(f"datacell listening on {server.address[0]}:{server.address[1]}")
    if opts.http is not None:
        httpd = cell.serve_http(host=opts.host, port=opts.http)
        print(f"telemetry at {httpd.url}", file=sys.stderr)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("shutting down...", file=sys.stderr)
    finally:
        cell.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
