"""The asyncio network front door: TCP + WebSocket on one framing.

One background thread (``datacell-server-loop``) runs an asyncio event
loop; each connection gets a reader coroutine (socket → frame decoder →
dispatch) and a writer coroutine (session output queue → socket).  The
only seam into the engine is the :class:`~repro.server.ingest
.IngestQueue` — the reader never touches baskets, the scheduler-side
pump applies batches and sends the ``ACK``s — plus a control lock
serializing DDL/subscription registration.

Admission control happens at the socket:

* connection and per-tenant session caps refuse ``HELLO``;
* a per-tenant pending-ingest watermark pauses the reader coroutine
  (TCP flow control throttles the peer) until the pump drains;
* tenant-scoped :class:`~repro.obs.resources.ResourceBudget` breaches
  (reported by the accountant's breach-listener seam) throttle the
  tenant's readers for ``admission_cooldown`` seconds per breach.

This module is the one place the server may read the wall clock
(session timestamps in ``HELLO_OK`` and ``sys.events``) — it is on the
engine-invariant linter's approved list for exactly that.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProtocolError, ReproError, ServerError
from ..sql.ast_nodes import CreateBasket, CreateTable
from ..sql.parser import parse_statement
from .ingest import IngestBatch, IngestQueue, ServerIngestPump
from .protocol import (
    PROTOCOL_VERSION,
    Command,
    FrameDecoder,
    Message,
    encode_message,
    error_message,
)
from .session import ClientSession, ServerConfig, SubscriptionBinding
from .ws import WebSocketCodec, handshake_response, parse_http_headers

__all__ = ["DataCellServer"]


class _RawTransport:
    """Plain TCP: the socket carries protocol frames directly."""

    kind = "tcp"

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        initial: bytes = b"",
    ):
        self._reader = reader
        self._writer = writer
        self._initial = initial

    async def read(self) -> bytes:
        if self._initial:
            head, self._initial = self._initial, b""
            return head
        return await self._reader.read(65536)

    def send_frames(self, frames: List[bytes]) -> int:
        data = b"".join(frames)
        self._writer.write(data)
        return len(data)

    async def drain(self) -> None:
        await self._writer.drain()

    def close(self) -> None:
        if not self._writer.is_closing():
            self._writer.close()


class _WsTransport:
    """WebSocket: each protocol frame rides one binary WS message."""

    kind = "websocket"

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_message_bytes: int,
    ):
        self._reader = reader
        self._writer = writer
        self._codec = WebSocketCodec(max_message_bytes)

    async def read(self) -> bytes:
        while True:
            data = await self._reader.read(65536)
            if not data:
                return b""
            messages, replies = self._codec.feed(data)
            if replies:
                self._writer.write(b"".join(replies))
                await self._writer.drain()
            if self._codec.closed:
                return b""
            if messages:
                return b"".join(messages)

    def send_frames(self, frames: List[bytes]) -> int:
        data = b"".join(
            WebSocketCodec.encode_binary(frame) for frame in frames
        )
        self._writer.write(data)
        return len(data)

    async def drain(self) -> None:
        await self._writer.drain()

    def close(self) -> None:
        if not self._writer.is_closing():
            try:
                self._writer.write(WebSocketCodec.encode_close())
            except Exception:
                pass
            self._writer.close()


class _Connection:
    """Loop-side bookkeeping for one live session."""

    __slots__ = ("session", "transport", "wakeup", "writer_task")

    def __init__(self, session, transport, wakeup):
        self.session = session
        self.transport = transport
        self.wakeup = wakeup
        self.writer_task: Optional[asyncio.Task] = None


class DataCellServer:
    """The network front door of one :class:`~repro.core.engine.DataCell`.

    Normally built through :meth:`DataCell.serve`.  The engine should be
    in threaded mode (``cell.start()``) so the ingest pump and the
    subscribed queries actually fire; the server only moves frames.
    """

    def __init__(
        self,
        cell: Any,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServerConfig] = None,
    ):
        self.cell = cell
        self.config = config or ServerConfig()
        self.config.validate()
        self.host = host
        self.port = port
        self.ingest = IngestQueue()
        self.pump = ServerIngestPump(
            cell, self.ingest, batch_limit=self.config.ingest_batch
        )
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._closed = False
        self._conns: Dict[int, _Connection] = {}
        self._conns_lock = threading.Lock()
        self._session_counter = 0
        # serializes engine mutations (DDL, query registration) issued
        # from the event loop against application threads
        self._control = threading.Lock()
        # tenant -> monotonic deadline until which ingest is throttled
        self._throttled: Dict[str, float] = {}
        self._throttle_lock = threading.Lock()
        self.connections_total = 0
        self.tenants_throttled = 0
        m = cell.metrics
        self._m_sessions = m.gauge(
            "datacell_server_sessions", "Open client sessions"
        )
        self._m_connections = m.counter(
            "datacell_server_connections_total",
            "Accepted client connections",
        )
        self._m_frames_in = m.counter(
            "datacell_server_frames_in_total",
            "Protocol frames received from clients",
        )
        self._m_frames_out = m.counter(
            "datacell_server_frames_out_total",
            "Protocol frames written to clients",
        )
        self._m_bytes_in = m.counter(
            "datacell_server_bytes_in_total", "Bytes read from clients"
        )
        self._m_bytes_out = m.counter(
            "datacell_server_bytes_out_total", "Bytes written to clients"
        )
        self._m_dropped = m.counter(
            "datacell_server_dropped_frames_total",
            "DATA frames shed by per-client queues, per policy",
            ("policy",),
        )
        self._m_blocks = m.counter(
            "datacell_server_backpressure_blocks_total",
            "Deliveries that had to wait on a full client queue",
        )
        self._m_throttled = m.counter(
            "datacell_server_throttled_total",
            "Tenant ingest throttles from budget breaches",
            ("tenant",),
        )
        self._m_errors = m.counter(
            "datacell_server_errors_total",
            "ERROR frames sent to clients, per code",
            ("code",),
        )
        cell.scheduler.register(self.pump)
        if cell.resources.enabled:
            cell.resources.add_breach_listener(self._on_breach)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DataCellServer":
        """Bind and start accepting; returns once the port is resolved."""
        if self._thread is not None:
            raise ServerError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="datacell-server-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(10.0):
            raise ServerError("server event loop failed to start")
        if self._start_error is not None:
            self._thread.join(5.0)
            self._thread = None
            raise ServerError(
                f"server failed to bind {self.host}:{self.port}: "
                f"{self._start_error}"
            )
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self._open())
            except BaseException as exc:
                self._start_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
            # drain cancellations left behind by close()
            pending = [
                t for t in asyncio.all_tasks(loop) if not t.done()
            ]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _open(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])

    def close(self, timeout: Optional[float] = None) -> None:
        """Stop accepting, drain client output queues, close sessions.

        Part of the engine shutdown order (server → scheduler →
        durability → httpd, see ``docs/server.md``): queued ``DATA``
        frames are flushed to sockets within ``timeout`` before
        transports close; queued-but-unapplied ingest batches are left
        un-ACKed (the at-least-once contract — an unacknowledged INSERT
        may or may not have been applied).
        """
        if self._closed:
            return
        self._closed = True
        budget = (
            timeout
            if timeout is not None
            else self.config.shutdown_drain_timeout
        )
        loop = self._loop
        if loop is not None and loop.is_running():
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown_sessions(budget), loop
            )
            try:
                future.result(budget + 5.0)
            except Exception:
                pass
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(budget + 5.0)
            self._thread = None
        # the pump unregisters after sockets are gone: nothing new can
        # arrive, and whatever the scheduler already drained is applied
        self.cell.scheduler.unregister(self.pump.name)
        if self.cell.resources.enabled:
            self.cell.resources.remove_breach_listener(self._on_breach)

    async def _shutdown_sessions(self, budget: float) -> None:
        if self._server is not None:
            self._server.close()
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            conn.session.send(Message(Command.BYE, {"reason": "shutdown"}))
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            if all(c.session.queue.depth == 0 for c in conns):
                break
            await asyncio.sleep(0.01)
        for conn in conns:
            conn.session.close()
            conn.wakeup.set()
            self._release(conn)

    # ------------------------------------------------------------------
    # per-connection machinery
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        remote = f"{peer[0]}:{peer[1]}" if peer else "?"
        transport: Any = None
        try:
            head = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        try:
            if head == b"GET ":
                raw = head + await reader.readuntil(b"\r\n\r\n")
                _, headers = parse_http_headers(raw)
                writer.write(handshake_response(headers))
                await writer.drain()
                transport = _WsTransport(
                    reader, writer, self.config.max_frame_bytes
                )
            else:
                transport = _RawTransport(reader, writer, initial=head)
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            try:
                writer.write(
                    b"HTTP/1.1 400 Bad Request\r\n"
                    b"Content-Length: 0\r\n\r\n"
                )
                await writer.drain()
            except Exception:
                pass
            writer.close()
            return
        await self._session_loop(transport, remote)

    async def _session_loop(self, transport: Any, remote: str) -> None:
        config = self.config
        with self._conns_lock:
            at_capacity = (
                self._closed or len(self._conns) >= config.max_sessions
            )
            if not at_capacity:
                self._session_counter += 1
                session_id = self._session_counter
        if at_capacity:
            self._refuse(
                transport, "admission",
                "server is at max_sessions or shutting down",
            )
            await transport.drain()
            transport.close()
            return
        loop = asyncio.get_running_loop()
        wakeup = asyncio.Event()

        def wake() -> None:
            try:
                loop.call_soon_threadsafe(wakeup.set)
            except RuntimeError:
                pass  # loop already closed; frames die with the session

        session = ClientSession(
            session_id,
            config,
            remote=remote,
            wake=wake,
            request_close=lambda reason: wake_and_close(),
        )
        conn = _Connection(session, transport, wakeup)

        def wake_and_close() -> None:
            session.close()
            try:
                loop.call_soon_threadsafe(self._abort_connection, conn)
            except RuntimeError:
                pass

        with self._conns_lock:
            self._conns[session_id] = conn
        self.connections_total += 1
        self._m_connections.inc()
        self._m_sessions.inc()
        conn.writer_task = asyncio.ensure_future(
            self._writer_loop(conn)
        )
        decoder = FrameDecoder(config.max_frame_bytes)
        try:
            await self._reader_loop(session, transport, decoder)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except ProtocolError as exc:
            self._send_error(session, "protocol", str(exc))
        finally:
            await self._teardown(conn)

    def _abort_connection(self, conn: _Connection) -> None:
        conn.wakeup.set()
        conn.transport.close()

    async def _teardown(self, conn: _Connection) -> None:
        session = conn.session
        # flush what the writer can still deliver, then close the queue
        session.closed = True
        conn.wakeup.set()
        try:
            if conn.writer_task is not None:
                try:
                    await asyncio.wait_for(conn.writer_task, 2.0)
                except (asyncio.TimeoutError, asyncio.CancelledError):
                    conn.writer_task.cancel()
        finally:
            # the release is synchronous and runs even if the reader
            # task is cancelled out from under us at loop shutdown —
            # a session must never leave its bindings on an emitter
            self._release(conn)

    def _release(self, conn: _Connection) -> None:
        """Detach a session from the engine (idempotent)."""
        session = conn.session
        with self._conns_lock:
            if self._conns.pop(session.id, None) is None:
                return  # already released
        session.close()
        conn.transport.close()
        for _name, handle, binding, owned in session.drain_subscriptions():
            try:
                handle.emitter.unsubscribe(binding)
                if owned:
                    with self._control:
                        self.cell.remove_continuous(handle)
            except ReproError:
                pass  # engine already tore the query down
        self._m_sessions.dec()
        self._emit_event(
            "client_disconnect",
            session=session.id,
            tenant=session.tenant,
            **{
                k: v
                for k, v in session.stats().items()
                if k not in ("tenant",)
            },
        )

    async def _writer_loop(self, conn: _Connection) -> None:
        session, transport, wakeup = (
            conn.session, conn.transport, conn.wakeup,
        )
        drain_frames = self.config.drain_frames
        try:
            while True:
                await wakeup.wait()
                wakeup.clear()
                while True:
                    frames = session.queue.drain(drain_frames)
                    if not frames:
                        break
                    nbytes = transport.send_frames(frames)
                    session.frames_out += len(frames)
                    self._m_frames_out.inc(len(frames))
                    self._m_bytes_out.inc(nbytes)
                    await transport.drain()
                if session.closed and session.queue.depth == 0:
                    return
        except (ConnectionError, RuntimeError):
            session.close()

    async def _reader_loop(
        self, session: ClientSession, transport: Any, decoder: FrameDecoder
    ) -> None:
        while not session.closed and not self._closed:
            await self._admission_pause(session)
            if session.closed or self._closed:
                return
            data = await transport.read()
            if not data:
                return
            self._m_bytes_in.inc(len(data))
            for message in decoder.feed(data):
                session.frames_in += 1
                self._m_frames_in.inc()
                if not self._dispatch(session, message):
                    return

    async def _admission_pause(self, session: ClientSession) -> None:
        """Hold the reader while the tenant is throttled or over the
        pending-ingest watermark — TCP flow control does the rest."""
        if not session.hello_done:
            return
        config = self.config
        while not session.closed and not self._closed:
            throttled = self._throttle_remaining(session.tenant)
            over = (
                self.ingest.pending_rows(session.tenant)
                > config.max_pending_rows_per_tenant
            )
            if throttled <= 0.0 and not over:
                return
            await asyncio.sleep(
                min(max(throttled, config.admission_poll), 0.1)
            )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, session: ClientSession, message: Message) -> bool:
        """Handle one decoded message; False ends the session."""
        command = message.command
        if not session.hello_done:
            if command != Command.HELLO:
                self._send_error(
                    session, "hello-required",
                    f"first frame must be HELLO, got {command.name}",
                )
                return False
            return self._do_hello(session, message)
        if command == Command.INSERT:
            return self._do_insert(session, message)
        if command == Command.SUBSCRIBE:
            return self._do_subscribe(session, message)
        if command == Command.UNSUBSCRIBE:
            return self._do_unsubscribe(session, message)
        if command == Command.CREATE:
            return self._do_create(session, message)
        if command == Command.PING:
            session.send(Message(Command.PONG, dict(message.meta)))
            return True
        if command == Command.BYE:
            session.send(Message(Command.BYE, {}))
            return False
        self._send_error(
            session, "bad-command",
            f"clients may not send {command.name}",
        )
        return True

    def _do_hello(self, session: ClientSession, message: Message) -> bool:
        version = message.meta.get("version")
        if version != PROTOCOL_VERSION:
            self._send_error(
                session, "version",
                f"protocol version {version!r} unsupported "
                f"(server speaks {PROTOCOL_VERSION})",
            )
            return False
        tenant = str(message.meta.get("tenant", "default"))
        cap = self.config.max_sessions_per_tenant
        if cap is not None:
            with self._conns_lock:
                held = sum(
                    1
                    for c in self._conns.values()
                    if c.session.hello_done and c.session.tenant == tenant
                )
            if held >= cap:
                self._send_error(
                    session, "admission",
                    f"tenant {tenant!r} is at its session cap ({cap})",
                )
                return False
        session.tenant = tenant
        session.client = str(message.meta.get("client", "?"))
        session.hello_done = True
        session.send(
            Message(
                Command.HELLO_OK,
                {
                    "session": session.id,
                    "tenant": tenant,
                    "version": PROTOCOL_VERSION,
                    "server_time": time.time(),
                    "backpressure": self.config.backpressure,
                },
            )
        )
        self._emit_event(
            "client_connect",
            session=session.id,
            tenant=tenant,
            client=session.client,
            remote=session.remote,
        )
        return True

    def _do_insert(self, session: ClientSession, message: Message) -> bool:
        seq = message.meta.get("seq")
        basket = message.meta.get("basket")
        if not basket or message.columns is None or message.arrays is None:
            self._send_error(
                session, "insert",
                "INSERT needs meta.basket and column blocks", seq,
            )
            return True
        if not self.cell.catalog.has(str(basket)):
            self._send_error(
                session, "unknown-basket",
                f"no basket named {basket!r}", seq,
            )
            return True
        rows = message.row_count
        self.ingest.put(
            IngestBatch(
                str(basket),
                message.columns,
                message.arrays,
                rows,
                seq=seq,
                tenant=session.tenant,
                reply=session.send,
            )
        )
        session.rows_in += rows
        return True

    def _do_subscribe(self, session: ClientSession, message: Message) -> bool:
        seq = message.meta.get("seq")
        sql = message.meta.get("sql")
        existing = message.meta.get("query")
        try:
            with self._control:
                if existing is not None:
                    handle = self._find_query(str(existing))
                    owned = False
                elif sql is not None:
                    handle = self.cell.submit_continuous(
                        str(sql),
                        name=message.meta.get("name"),
                        tenant=session.tenant,
                    )
                    owned = True
                else:
                    raise ServerError(
                        "SUBSCRIBE needs meta.sql or meta.query"
                    )
        except ReproError as exc:
            self._send_error(session, "subscribe", str(exc), seq)
            return True
        if handle.name in session.subscriptions:
            self._send_error(
                session, "subscribe",
                f"already subscribed to {handle.name!r}", seq,
            )
            return True
        columns = [
            (c.name, c.atom)
            for c in handle.output_basket.user_columns
        ]
        binding = SubscriptionBinding(
            session,
            handle.name,
            columns,
            emitter=handle.emitter,
            on_drop=self._note_drop,
        )
        session.add_subscription(handle.name, handle, binding, owned)
        handle.emitter.subscribe(binding)
        session.send(
            Message(
                Command.ACK,
                {
                    "seq": seq,
                    "query": handle.name,
                    # "schema", not "columns": the latter marks a frame
                    # as tuple-bearing for the decoder
                    "schema": [[n, a.value] for n, a in columns],
                    "owned": owned,
                },
            )
        )
        return True

    def _find_query(self, name: str):
        for handle in self.cell.continuous_queries():
            if handle.name == name:
                return handle
        raise ServerError(f"no continuous query named {name!r}")

    def _do_unsubscribe(
        self, session: ClientSession, message: Message
    ) -> bool:
        seq = message.meta.get("seq")
        name = message.meta.get("query")
        entry = (
            session.remove_subscription(str(name))
            if name is not None
            else None
        )
        if entry is None:
            self._send_error(
                session, "unknown-subscription",
                f"session holds no subscription {name!r}", seq,
            )
            return True
        handle, binding, owned = entry
        handle.emitter.unsubscribe(binding)
        if owned:
            try:
                with self._control:
                    self.cell.remove_continuous(handle)
            except ReproError as exc:
                self._send_error(session, "unsubscribe", str(exc), seq)
                return True
        session.send(Message(Command.ACK, {"seq": seq, "query": name}))
        return True

    def _do_create(self, session: ClientSession, message: Message) -> bool:
        seq = message.meta.get("seq")
        sql = message.meta.get("sql")
        if not sql:
            self._send_error(session, "create", "CREATE needs meta.sql", seq)
            return True
        try:
            stmt = parse_statement(str(sql))
            if not isinstance(stmt, (CreateBasket, CreateTable)):
                raise ServerError(
                    "only CREATE BASKET / CREATE TABLE may cross the wire"
                )
            with self._control:
                self.cell.execute(str(sql))
        except ReproError as exc:
            self._send_error(session, "create", str(exc), seq)
            return True
        session.send(Message(Command.ACK, {"seq": seq}))
        return True

    # ------------------------------------------------------------------
    # admission / throttling
    # ------------------------------------------------------------------
    def throttle_tenant(self, tenant: str, seconds: float) -> None:
        """Pause ``tenant``'s ingest readers for ``seconds`` from now."""
        deadline = time.monotonic() + seconds
        with self._throttle_lock:
            if deadline > self._throttled.get(tenant, 0.0):
                self._throttled[tenant] = deadline
        self.tenants_throttled += 1
        self._m_throttled.labels(tenant).inc()
        self._emit_event(
            "tenant_throttled", tenant=tenant, seconds=seconds
        )

    def _throttle_remaining(self, tenant: str) -> float:
        with self._throttle_lock:
            deadline = self._throttled.get(tenant)
            if deadline is None:
                return 0.0
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                del self._throttled[tenant]
                return 0.0
            return remaining

    def _on_breach(self, budget: Any, record: Dict[str, Any]) -> None:
        """Accountant breach listener: over-budget tenants lose socket
        admission for a cooldown, throttling them at the edge instead of
        inside the engine."""
        if budget.tenant is None:
            return
        self.throttle_tenant(
            budget.tenant, self.config.admission_cooldown
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _refuse(self, transport: Any, code: str, text: str) -> None:
        self._m_errors.labels(code).inc()
        try:
            transport.send_frames([encode_message(error_message(code, text))])
        except Exception:
            pass

    def _send_error(
        self,
        session: ClientSession,
        code: str,
        text: str,
        seq: Optional[int] = None,
    ) -> None:
        self._m_errors.labels(code).inc()
        session.send_error(code, text, seq)

    def _note_drop(self, query: str, rows: int, outcome: str) -> None:
        """Session-queue overflow accounting (called by bindings)."""
        policy = self.config.backpressure
        self._m_dropped.labels(policy).inc()
        self._emit_event(
            "queue_full", query=query, rows=rows,
            policy=policy, outcome=outcome,
        )

    def _emit_event(self, kind: str, **detail: Any) -> None:
        sampler = self.cell.sys
        if sampler is not None:
            try:
                sampler.emit_event(kind, "server", **detail)
            except ReproError:  # pragma: no cover - sampler torn down
                pass

    def sessions(self) -> List[ClientSession]:
        with self._conns_lock:
            return [c.session for c in self._conns.values()]

    def stats(self) -> Dict[str, Any]:
        """Structured snapshot for ``DataCell.stats()["server"]``."""
        sessions = self.sessions()
        with self._throttle_lock:
            throttled = {
                tenant: round(deadline - time.monotonic(), 3)
                for tenant, deadline in self._throttled.items()
                if deadline > time.monotonic()
            }
        return {
            "address": (
                f"{self.address[0]}:{self.address[1]}"
                if self.address
                else None
            ),
            "backpressure": self.config.backpressure,
            "sessions_open": len(sessions),
            "connections_total": self.connections_total,
            "sessions": {s.id: s.stats() for s in sessions},
            "ingest": {
                "pending_batches": self.ingest.pending(),
                "batches_total": self.ingest.total_batches,
                "rows_total": self.ingest.total_rows,
                "applied_rows": self.pump.total_rows,
                "errors": self.pump.total_errors,
            },
            "dropped_frames": sum(s.dropped_frames for s in sessions),
            "backpressure_blocks": sum(s.queue.blocks for s in sessions),
            "throttled_tenants": throttled,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DataCellServer({self.address}, "
            f"sessions={len(self._conns)})"
        )
