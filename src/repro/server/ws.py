"""Minimal RFC 6455 WebSocket support for the server's frame transport.

The server speaks one frame format (:mod:`repro.server.protocol`); a
WebSocket client simply wraps each protocol frame in one *binary*
WebSocket message.  This module implements just enough of RFC 6455 for
that: the HTTP upgrade handshake (``Sec-WebSocket-Accept``), masked
client-to-server frame decoding with fragment reassembly, unmasked
server-to-client binary frames, and ping/pong/close handling.  Text
frames are a protocol error — the payload is binary by construction.
"""

from __future__ import annotations

import base64
import hashlib
import struct
from typing import Dict, List, Tuple

from ..errors import ProtocolError

__all__ = [
    "WS_GUID",
    "accept_key",
    "handshake_response",
    "parse_http_headers",
    "WebSocketCodec",
]

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA


def accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def parse_http_headers(raw: bytes) -> Tuple[str, Dict[str, str]]:
    """Parse an HTTP request head; returns (request line, lowercase
    header map).  ``raw`` must end at the blank line."""
    try:
        text = raw.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ProtocolError(f"bad HTTP request: {exc}") from None
    lines = text.split("\r\n")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return lines[0] if lines else "", headers


def handshake_response(headers: Dict[str, str]) -> bytes:
    """The 101 Switching Protocols reply, or raise on a bad upgrade."""
    if headers.get("upgrade", "").lower() != "websocket":
        raise ProtocolError("not a WebSocket upgrade request")
    key = headers.get("sec-websocket-key")
    if not key:
        raise ProtocolError("upgrade request lacks Sec-WebSocket-Key")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
        "\r\n"
    ).encode("ascii")


class WebSocketCodec:
    """Stateful decoder of client frames / encoder of server frames."""

    def __init__(self, max_message_bytes: int = 64 * 1024 * 1024):
        self.max_message_bytes = max_message_bytes
        self._buffer = bytearray()
        self._fragments: List[bytes] = []
        self.closed = False

    # -- decoding (client → server; frames are masked) -----------------
    def feed(self, data: bytes) -> Tuple[List[bytes], List[bytes]]:
        """Absorb bytes; returns ``(messages, replies)`` where
        ``messages`` are complete binary payloads and ``replies`` are
        control frames (pong/close echoes) to write back."""
        self._buffer.extend(data)
        messages: List[bytes] = []
        replies: List[bytes] = []
        while True:
            parsed = self._parse_frame()
            if parsed is None:
                break
            fin, opcode, payload = parsed
            if opcode == OP_PING:
                replies.append(self._encode(OP_PONG, payload))
            elif opcode == OP_CLOSE:
                if not self.closed:
                    replies.append(self._encode(OP_CLOSE, payload[:2]))
                self.closed = True
            elif opcode in (OP_BINARY, OP_CONT):
                if opcode == OP_BINARY and self._fragments:
                    raise ProtocolError("interleaved WebSocket message")
                if opcode == OP_CONT and not self._fragments:
                    raise ProtocolError("WebSocket continuation w/o start")
                self._fragments.append(payload)
                if sum(len(f) for f in self._fragments) \
                        > self.max_message_bytes:
                    raise ProtocolError("WebSocket message too large")
                if fin:
                    messages.append(b"".join(self._fragments))
                    self._fragments = []
            elif opcode == OP_TEXT:
                raise ProtocolError(
                    "text WebSocket frames are not part of the protocol "
                    "(send protocol frames as binary messages)"
                )
            elif opcode == OP_PONG:
                pass  # unsolicited pongs are legal no-ops
            else:
                raise ProtocolError(f"bad WebSocket opcode {opcode:#x}")
        return messages, replies

    def _parse_frame(self):
        buf = self._buffer
        if len(buf) < 2:
            return None
        b0, b1 = buf[0], buf[1]
        fin = bool(b0 & 0x80)
        if b0 & 0x70:
            raise ProtocolError("WebSocket RSV bits set without extension")
        opcode = b0 & 0x0F
        masked = bool(b1 & 0x80)
        if not masked:
            raise ProtocolError("client WebSocket frames must be masked")
        length = b1 & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return None
            (length,) = struct.unpack_from(">H", buf, offset)
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return None
            (length,) = struct.unpack_from(">Q", buf, offset)
            offset += 8
        if length > self.max_message_bytes:
            raise ProtocolError("WebSocket frame too large")
        if len(buf) < offset + 4 + length:
            return None
        mask = bytes(buf[offset : offset + 4])
        offset += 4
        payload = bytes(buf[offset : offset + length])
        del buf[: offset + length]
        unmasked = bytes(
            b ^ mask[i % 4] for i, b in enumerate(payload)
        )
        return fin, opcode, unmasked

    # -- encoding (server → client; frames are unmasked) ---------------
    @staticmethod
    def _encode(opcode: int, payload: bytes) -> bytes:
        head = bytearray([0x80 | opcode])
        n = len(payload)
        if n < 126:
            head.append(n)
        elif n < 1 << 16:
            head.append(126)
            head.extend(struct.pack(">H", n))
        else:
            head.append(127)
            head.extend(struct.pack(">Q", n))
        return bytes(head) + payload

    @classmethod
    def encode_binary(cls, payload: bytes) -> bytes:
        return cls._encode(OP_BINARY, payload)

    @classmethod
    def encode_close(cls, code: int = 1000) -> bytes:
        return cls._encode(OP_CLOSE, struct.pack(">H", code))

    @staticmethod
    def mask_client_frame(opcode: int, payload: bytes, mask: bytes) -> bytes:
        """Build a masked client-side frame (tests and the CLI client)."""
        if len(mask) != 4:
            raise ProtocolError("WebSocket mask must be 4 bytes")
        head = bytearray([0x80 | opcode])
        n = len(payload)
        if n < 126:
            head.append(0x80 | n)
        elif n < 1 << 16:
            head.append(0x80 | 126)
            head.extend(struct.pack(">H", n))
        else:
            head.append(0x80 | 127)
            head.extend(struct.pack(">Q", n))
        head.extend(mask)
        return bytes(head) + bytes(
            b ^ mask[i % 4] for i, b in enumerate(payload)
        )
