"""A synchronous client for the repro.server wire protocol.

Library use::

    from repro.server.client import DataCellClient

    with DataCellClient("127.0.0.1", 9462, tenant="acme") as db:
        db.create("create basket trades (price int, sym str)")
        db.subscribe("select t.price, t.sym from "
                     "[select * from trades where trades.price > 100] as t",
                     name="big")
        db.insert("trades", [("price", AtomType.INT),
                             ("sym", AtomType.STR)],
                  [(120, "X"), (90, "Y")])
        rows = db.poll("big", timeout=2.0)

One socket, one thread: commands block until their ``ACK``/``ERROR``
arrives (matched by ``seq``); ``DATA`` frames arriving in between are
filed into per-query inboxes read with :meth:`poll`.  The same class is
the CLI used in the README quickstart (``python -m repro.server.client``).
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ProtocolError, ServerError
from ..kernel.types import AtomType
from .protocol import (
    PROTOCOL_VERSION,
    ColumnSpec,
    Command,
    FrameDecoder,
    Message,
    encode_message,
    insert_message,
)

__all__ = ["DataCellClient", "main"]

Row = Tuple[Any, ...]


class DataCellClient:
    """Blocking TCP client; one instance per connection, not thread-safe."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        client: str = "repro-client",
        timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.client = client
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder()
        self._seq = 0
        self._inbox: Dict[str, List[Row]] = {}
        self._events: List[Message] = []
        self.session: Optional[int] = None
        self.server_meta: Dict[str, Any] = {}
        #: columns of each subscribed query, filled from SUBSCRIBE acks
        self.columns: Dict[str, List[ColumnSpec]] = {}

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> Dict[str, Any]:
        """Open the socket and complete the HELLO handshake."""
        if self._sock is not None:
            raise ServerError("client already connected")
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._send(
            Message(
                Command.HELLO,
                {
                    "version": PROTOCOL_VERSION,
                    "tenant": self.tenant,
                    "client": self.client,
                },
            )
        )
        reply = self._wait(
            lambda m: m.command in (Command.HELLO_OK, Command.ERROR)
        )
        if reply.command is Command.ERROR:
            self.close(send_bye=False)
            raise ServerError(
                f"server refused session: {reply.meta.get('code')}: "
                f"{reply.meta.get('message')}"
            )
        self.session = reply.meta.get("session")
        self.server_meta = dict(reply.meta)
        return self.server_meta

    def close(self, send_bye: bool = True) -> None:
        sock, self._sock = self._sock, None
        if sock is None:
            return
        if send_bye:
            try:
                sock.sendall(encode_message(Message(Command.BYE, {})))
            except OSError:
                pass
        try:
            sock.close()
        except OSError:
            pass

    def __enter__(self) -> "DataCellClient":
        self.connect()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # commands (each blocks for its ACK)
    # ------------------------------------------------------------------
    def create(self, sql: str) -> Dict[str, Any]:
        return self._command(Message(Command.CREATE, {"sql": sql}))

    def insert(
        self,
        basket: str,
        columns: Sequence[ColumnSpec],
        rows: Sequence[Sequence[Any]],
        wait: bool = True,
    ) -> Optional[Dict[str, Any]]:
        """Send one columnar INSERT batch.

        ``wait=False`` streams without waiting for the ACK (the soak
        bench's pipelined mode); ACKs are still consumed lazily by later
        waits, keeping the sequence numbers matched.
        """
        seq = self._next_seq()
        message = insert_message(basket, columns, rows, seq=seq)
        self._send(message)
        if not wait:
            return None
        return self._await_ack(seq)

    def subscribe(
        self,
        sql: Optional[str] = None,
        query: Optional[str] = None,
        name: Optional[str] = None,
    ) -> str:
        """Register (``sql=``) or attach to (``query=``) a continuous
        query; returns the query name rows will arrive under."""
        meta: Dict[str, Any] = {}
        if sql is not None:
            meta["sql"] = sql
        if query is not None:
            meta["query"] = query
        if name is not None:
            meta["name"] = name
        ack = self._command(Message(Command.SUBSCRIBE, meta))
        qname = str(ack["query"])
        self.columns[qname] = [
            (str(n), AtomType(a)) for n, a in ack.get("schema", [])
        ]
        self._inbox.setdefault(qname, [])
        return qname

    def unsubscribe(self, query: str) -> Dict[str, Any]:
        return self._command(
            Message(Command.UNSUBSCRIBE, {"query": query})
        )

    def ping(self) -> float:
        """Round-trip a PING; returns elapsed seconds."""
        seq = self._next_seq()
        started = time.perf_counter()
        self._send(Message(Command.PING, {"seq": seq}))
        self._wait(
            lambda m: m.command is Command.PONG
            and m.meta.get("seq") == seq
        )
        return time.perf_counter() - started

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def poll(
        self, query: str, timeout: float = 0.0, min_rows: int = 1
    ) -> List[Row]:
        """Drain delivered rows for ``query``; waits up to ``timeout``
        seconds for at least ``min_rows`` of them."""
        deadline = time.monotonic() + timeout
        inbox = self._inbox.setdefault(query, [])
        while len(inbox) < min_rows:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            self._pump(remaining)
        rows, self._inbox[query] = inbox, []
        return rows

    def drain_events(self) -> List[Message]:
        """Out-of-band frames received so far (server ERROR/BYE)."""
        events, self._events = self._events, []
        return events

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _send(self, message: Message) -> None:
        if self._sock is None:
            raise ServerError("client is not connected")
        self._sock.sendall(encode_message(message))

    def _command(self, message: Message) -> Dict[str, Any]:
        seq = self._next_seq()
        message.meta["seq"] = seq
        self._send(message)
        return self._await_ack(seq)

    def _await_ack(self, seq: int) -> Dict[str, Any]:
        reply = self._wait(
            lambda m: m.command in (Command.ACK, Command.ERROR)
            and m.meta.get("seq") == seq
        )
        if reply.command is Command.ERROR:
            raise ServerError(
                f"{reply.meta.get('code')}: {reply.meta.get('message')}"
            )
        return dict(reply.meta)

    def _wait(self, accept: Any) -> Message:
        """Pump frames until ``accept(message)`` matches one."""
        deadline = time.monotonic() + self.timeout
        while True:
            for message in self._pump(deadline - time.monotonic()):
                if accept(message):
                    return message

    def _pump(self, timeout: float) -> List[Message]:
        """Read once from the socket, routing DATA frames to inboxes;
        returns the non-DATA messages decoded from this read."""
        if self._sock is None:
            raise ServerError("client is not connected")
        if timeout <= 0:
            raise ServerError("timed out waiting for the server")
        self._sock.settimeout(timeout)
        try:
            data = self._sock.recv(65536)
        except socket.timeout:
            raise ServerError(
                "timed out waiting for the server"
            ) from None
        if not data:
            raise ServerError("server closed the connection")
        out: List[Message] = []
        for message in self._decoder.feed(data):
            if message.command is Command.DATA:
                query = str(message.meta.get("query"))
                self._inbox.setdefault(query, []).extend(message.rows())
            elif message.command in (Command.ERROR, Command.BYE) and (
                message.meta.get("seq") is None
            ):
                self._events.append(message)
                out.append(message)
            else:
                out.append(message)
        return out


# ----------------------------------------------------------------------
# CLI: python -m repro.server.client
# ----------------------------------------------------------------------
def _parse_atom(text: str) -> AtomType:
    try:
        return AtomType(text.strip().lower())
    except ValueError:
        raise SystemExit(f"unknown atom type {text!r}") from None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.client",
        description="Interact with a running DataCell server.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--tenant", default="default")
    sub = parser.add_subparsers(dest="verb", required=True)
    p = sub.add_parser("create", help="run CREATE BASKET/TABLE ddl")
    p.add_argument("sql")
    p = sub.add_parser("insert", help="insert rows from json lines")
    p.add_argument("basket")
    p.add_argument(
        "--columns", required=True,
        help="comma list of name:atom, e.g. price:int,sym:str",
    )
    p.add_argument(
        "--rows", required=True,
        help="JSON array of rows, e.g. '[[120,\"X\"],[90,\"Y\"]]'",
    )
    p = sub.add_parser("subscribe", help="subscribe and print deliveries")
    p.add_argument("sql")
    p.add_argument("--name")
    p.add_argument(
        "--for", dest="duration", type=float, default=10.0,
        help="seconds to keep printing rows (default 10)",
    )
    p = sub.add_parser("ping", help="measure a protocol round trip")
    opts = parser.parse_args(argv)

    with DataCellClient(opts.host, opts.port, tenant=opts.tenant) as db:
        if opts.verb == "create":
            db.create(opts.sql)
            print("ok")
        elif opts.verb == "insert":
            columns = []
            for part in opts.columns.split(","):
                name, _, atom = part.partition(":")
                columns.append((name.strip(), _parse_atom(atom)))
            rows = json.loads(opts.rows)
            ack = db.insert(opts.basket, columns, rows)
            print(f"inserted {ack.get('rows')} rows")
        elif opts.verb == "subscribe":
            qname = db.subscribe(opts.sql, name=opts.name)
            print(f"subscribed to {qname}; streaming...", file=sys.stderr)
            deadline = time.monotonic() + opts.duration
            while time.monotonic() < deadline:
                try:
                    for row in db.poll(qname, timeout=0.5):
                        print(json.dumps(list(row)))
                except ServerError:
                    break
        elif opts.verb == "ping":
            print(f"{db.ping() * 1000:.3f} ms")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
