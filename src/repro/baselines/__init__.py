"""Baseline comparators for the benchmarks (tuple-at-a-time DSMS, naive
window re-evaluation)."""

from .reeval import NaiveReEvalWindow
from .tuple_engine import (
    MapOperator,
    Operator,
    ProjectOperator,
    SelectOperator,
    SinkOperator,
    TupleEngine,
    WindowAggregateOperator,
)

__all__ = [
    "NaiveReEvalWindow",
    "TupleEngine",
    "Operator",
    "SelectOperator",
    "ProjectOperator",
    "MapOperator",
    "WindowAggregateOperator",
    "SinkOperator",
]
