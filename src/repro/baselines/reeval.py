"""Naive per-tuple window re-evaluation baseline.

The worst-case route of §3.1: after *every* arriving tuple, re-evaluate
the full window from scratch (no batching, no summaries).  The DataCell's
re-evaluation plan already batches per activation; this baseline removes
even that, bounding the other end of the W1 benchmark's spectrum.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..errors import DataCellError

__all__ = ["NaiveReEvalWindow"]


class NaiveReEvalWindow:
    """Count-based sliding window, fully recomputed on every insert."""

    def __init__(self, size: int, slide: int, aggregate: str = "sum"):
        if size <= 0 or slide <= 0 or slide > size:
            raise DataCellError("bad window geometry")
        if aggregate not in ("sum", "count", "avg", "min", "max"):
            raise DataCellError(f"unknown aggregate {aggregate!r}")
        self.size = size
        self.slide = slide
        self.aggregate = aggregate
        self._buffer: Deque[float] = deque()
        self._since_emit = 0
        self.results: List[float] = []
        self.values_processed = 0

    def insert(self, value: float) -> Optional[float]:
        """Feed one tuple; returns the emitted aggregate, if any."""
        self._buffer.append(float(value))
        if len(self._buffer) > self.size:
            self._buffer.popleft()
        self._since_emit += 1
        if len(self._buffer) == self.size and self._since_emit >= self.slide:
            self._since_emit = 0
            result = self._evaluate()
            self.results.append(result)
            return result
        return None

    def _evaluate(self) -> float:
        # full rescan — this is the point of the baseline
        self.values_processed += len(self._buffer)
        if self.aggregate == "count":
            return float(len(self._buffer))
        if self.aggregate == "sum":
            return sum(self._buffer)
        if self.aggregate == "avg":
            return sum(self._buffer) / len(self._buffer)
        if self.aggregate == "min":
            return min(self._buffer)
        return max(self._buffer)
