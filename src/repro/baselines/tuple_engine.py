"""A tuple-at-a-time DSMS baseline.

The specialized stream engines DataCell argues against (§4: "tuple-at-a-
time processing, used in other systems, incurs a significant overhead
while batch processing provides the flexibility for better query
scheduling") process each event through an operator pipeline individually.
This module implements that model honestly — per-tuple python dispatch
through operator objects, no columnar batching — so the batch-vs-tuple
benchmark compares the two architectures on the same substrate.

The operator vocabulary mirrors what the DataCell benchmarks use:
selection, projection, map, grouped sliding-window aggregation.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import DataCellError

__all__ = [
    "Operator",
    "SelectOperator",
    "ProjectOperator",
    "MapOperator",
    "WindowAggregateOperator",
    "SinkOperator",
    "TupleEngine",
]

Row = Tuple[Any, ...]


class Operator:
    """One pipeline stage: receives a tuple, pushes results downstream."""

    def __init__(self) -> None:
        self.downstream: Optional[Operator] = None
        self.tuples_seen = 0

    def then(self, op: "Operator") -> "Operator":
        """Chain ``op`` after this one; returns ``op`` for fluent wiring."""
        self.downstream = op
        return op

    def push(self, row: Row) -> None:
        self.tuples_seen += 1
        self.process(row)

    def process(self, row: Row) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def emit(self, row: Row) -> None:
        if self.downstream is not None:
            self.downstream.push(row)


class SelectOperator(Operator):
    """Per-tuple predicate filter."""

    def __init__(self, predicate: Callable[[Row], bool]):
        super().__init__()
        self.predicate = predicate

    def process(self, row: Row) -> None:
        if self.predicate(row):
            self.emit(row)


class ProjectOperator(Operator):
    """Keep a subset of fields by position."""

    def __init__(self, positions: Sequence[int]):
        super().__init__()
        self.positions = list(positions)

    def process(self, row: Row) -> None:
        self.emit(tuple(row[i] for i in self.positions))


class MapOperator(Operator):
    """Per-tuple transformation."""

    def __init__(self, fn: Callable[[Row], Row]):
        super().__init__()
        self.fn = fn

    def process(self, row: Row) -> None:
        self.emit(self.fn(row))


class WindowAggregateOperator(Operator):
    """Per-group sliding count-window aggregate, tuple at a time.

    Emits ``(group, aggregate)`` every ``slide`` tuples per group once the
    window is full — the conventional DSMS incremental operator, but paying
    per-tuple dispatch cost.
    """

    def __init__(
        self,
        key_position: int,
        value_position: int,
        size: int,
        slide: int,
        aggregate: str = "sum",
    ):
        super().__init__()
        if aggregate not in ("sum", "count", "avg", "min", "max"):
            raise DataCellError(f"unknown aggregate {aggregate!r}")
        self.key_position = key_position
        self.value_position = value_position
        self.size = size
        self.slide = slide
        self.aggregate = aggregate
        self._windows: Dict[Any, Deque[float]] = defaultdict(deque)
        self._since_emit: Dict[Any, int] = defaultdict(int)

    def process(self, row: Row) -> None:
        key = row[self.key_position]
        value = row[self.value_position]
        window = self._windows[key]
        window.append(float(value))
        if len(window) > self.size:
            window.popleft()
        self._since_emit[key] += 1
        if len(window) == self.size and self._since_emit[key] >= self.slide:
            self._since_emit[key] = 0
            self.emit((key, self._evaluate(window)))

    def _evaluate(self, window: Deque[float]) -> float:
        if self.aggregate == "count":
            return float(len(window))
        if self.aggregate == "sum":
            return sum(window)
        if self.aggregate == "avg":
            return sum(window) / len(window)
        if self.aggregate == "min":
            return min(window)
        return max(window)


class SinkOperator(Operator):
    """Terminal stage collecting results."""

    def __init__(self) -> None:
        super().__init__()
        self.rows: List[Row] = []

    def process(self, row: Row) -> None:
        self.rows.append(row)


class TupleEngine:
    """A registry of per-query operator pipelines fed tuple by tuple.

    Every incoming event is dispatched to every registered pipeline — the
    "throw each incoming tuple against its relevant queries" model the
    paper inverts.
    """

    def __init__(self) -> None:
        self._pipelines: Dict[str, Operator] = {}
        self._sinks: Dict[str, SinkOperator] = {}
        self.tuples_ingested = 0

    def register(self, name: str, head: Operator) -> SinkOperator:
        """Register a pipeline; a sink is appended and returned."""
        if name in self._pipelines:
            raise DataCellError(f"pipeline {name!r} already registered")
        sink = SinkOperator()
        tail = head
        while tail.downstream is not None:
            tail = tail.downstream
        tail.then(sink)
        self._pipelines[name] = head
        self._sinks[name] = sink
        return sink

    def push(self, row: Row) -> None:
        """Dispatch one tuple through every pipeline."""
        self.tuples_ingested += 1
        for head in self._pipelines.values():
            head.push(row)

    def push_many(self, rows: Sequence[Row]) -> None:
        for row in rows:
            self.push(row)

    def results(self, name: str) -> List[Row]:
        try:
            return self._sinks[name].rows
        except KeyError:
            raise DataCellError(f"unknown pipeline {name!r}") from None
