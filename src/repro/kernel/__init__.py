"""The column-store kernel: the "modern database kernel" DataCell builds on.

A from-scratch MonetDB stand-in: BATs (virtual-oid columns), candidate
lists, a MAL-style operator algebra, a catalog, and a MAL interpreter that
executes compiled query plans.  See DESIGN.md §"System inventory" item 1.
"""

from .aggregate import AggregateState, grouped_aggregate, scalar_aggregate
from .bat import BAT, bat_from_values, check_aligned, empty_bat
from .catalog import Catalog, ColumnDef, Schema, Table
from .interpreter import MalInterpreter
from .mal import Const, Instr, Program, ResultSet, Var
from .types import AtomType

__all__ = [
    "AtomType",
    "BAT",
    "bat_from_values",
    "empty_bat",
    "check_aligned",
    "Catalog",
    "ColumnDef",
    "Schema",
    "Table",
    "Const",
    "Instr",
    "Program",
    "ResultSet",
    "Var",
    "MalInterpreter",
    "AggregateState",
    "scalar_aggregate",
    "grouped_aggregate",
]
