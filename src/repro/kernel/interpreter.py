"""The MAL virtual machine: executes :class:`~repro.kernel.mal.Program`.

The interpreter resolves each instruction's ``module.fn`` against a registry
of primitives that wrap the kernel operator modules.  The environment maps
variable names to values (BATs, candidate arrays, scalars, tables,
result sets).  Factories re-execute the same program against fresh basket
snapshots on every activation; the interpreter itself is stateless.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..errors import MalError
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.spans import SpanRecorder
from . import aggregate as _aggregate
from . import calc as _calc
from . import candidates as _cand
from . import group as _group
from . import join as _join
from . import select as _select
from . import sort as _sort
from .bat import BAT, bat_from_values
from .catalog import Catalog, Table
from .mal import Const, Instr, Program, ResultSet, Var
from .types import AtomType

__all__ = ["MalInterpreter", "MalContext"]

Primitive = Callable[..., Any]

_REGISTRY: Dict[str, Primitive] = {}


def primitive(name: str) -> Callable[[Primitive], Primitive]:
    """Register ``fn`` as the implementation of MAL ``module.fn``."""

    def wrap(fn: Primitive) -> Primitive:
        if name in _REGISTRY:
            raise MalError(f"duplicate primitive {name}")
        _REGISTRY[name] = fn
        return fn

    return wrap


class MalContext:
    """Runtime context passed to primitives: catalog plus statistics."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.instructions_executed = 0


class MalInterpreter:
    """Executes MAL programs against a catalog.

    When built against an enabled metrics registry the interpreter keeps
    an opcode profile: per-``module.fn`` invocation counts and cumulative
    wall time, accumulated locally per ``execute`` and flushed once, so
    the per-instruction overhead is two ``perf_counter`` calls and a dict
    update.  :meth:`render_profile` is the ``explain``-style view.
    """

    def __init__(
        self,
        catalog: Catalog,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanRecorder] = None,
        accountant: Optional[Any] = None,
    ):
        self.catalog = catalog
        self.metrics = metrics if metrics is not None else default_registry()
        self._profiling = self.metrics.enabled
        self.tracer = tracer
        self._tracing = tracer is not None and tracer.enabled
        # resource accounting: when enabled, per-instruction thread-CPU
        # deltas are captured alongside wall time and folded into the
        # currently-firing query's account (accountant.current()).
        self.accountant = (
            accountant
            if accountant is not None and accountant.enabled
            else None
        )
        self._profile_lock = threading.Lock()
        # [calls, wall seconds, thread-CPU seconds]
        self._opcode_stats: Dict[str, List[float]] = {}
        self._m_calls = self.metrics.counter(
            "datacell_mal_opcode_invocations_total",
            "MAL primitive invocations, per opcode",
            ("opcode",),
        )
        self._m_seconds = self.metrics.counter(
            "datacell_mal_opcode_seconds_total",
            "Cumulative wall time inside each MAL primitive",
            ("opcode",),
        )
        self._m_cpu_seconds = self.metrics.counter(
            "datacell_mal_opcode_cpu_seconds_total",
            "Cumulative thread CPU inside each MAL primitive",
            ("opcode",),
        )

    def execute(
        self,
        program: Program,
        env: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Run ``program``; returns the final environment.

        ``env`` must provide every name in ``program.inputs``.
        """
        env = dict(env or {})
        missing = [name for name in program.inputs if name not in env]
        if missing:
            raise MalError(f"missing program inputs: {missing}")
        ctx = MalContext(self.catalog)
        if not self._profiling:
            for ins in program.instructions:
                self._step(ctx, ins, env)
            return env
        local: Dict[str, List[float]] = {}
        # per-plan-node accumulation: [calls, seconds, last rows-out].
        # rows-out overwrites rather than sums within one execution — a
        # node's row count is what its *final* instruction produced.
        node_local: Dict[Optional[int], List[float]] = {}
        stage = self.tracer.current_stage() if self._tracing else None
        # opcode thread-CPU is only sampled when a resource account is on
        # the thread (i.e. inside an accounted continuous-query firing);
        # readings are chained — one clock call per instruction boundary —
        # so interpreter bookkeeping between steps stays inside the plan's
        # attributed total instead of leaking out of it
        account = (
            self.accountant.current() if self.accountant is not None else None
        )
        measure_cpu = account is not None
        cpu_prev = time.thread_time() if measure_cpu else 0.0
        for ins in program.instructions:
            started = time.perf_counter()
            self._step(ctx, ins, env)
            elapsed = time.perf_counter() - started
            if measure_cpu:
                cpu_now = time.thread_time()
                cpu_elapsed = cpu_now - cpu_prev
                cpu_prev = cpu_now
            else:
                cpu_elapsed = 0.0
            key = f"{ins.module}.{ins.fn}"
            slot = local.get(key)
            if slot is None:
                local[key] = [1, elapsed, cpu_elapsed]
            else:
                slot[0] += 1
                slot[1] += elapsed
                slot[2] += cpu_elapsed
            node_slot = node_local.get(ins.node)
            if node_slot is None:
                node_local[ins.node] = node_slot = [0, 0.0, 0.0]
            node_slot[0] += 1
            node_slot[1] += elapsed
            rows = self._rows_out(ins, env)
            if rows is not None:
                node_slot[2] = rows
            if stage is not None:
                self.tracer.add_opcode(
                    stage, key, started, elapsed,
                    node=ins.node,
                )
        self._flush_profile(local)
        self._flush_node_stats(program, node_local)
        if measure_cpu:
            cpu_by_op = {k: v[2] for k, v in local.items() if v[2]}
            self.accountant.fold_opcode_cpu(
                account, cpu_by_op, sum(cpu_by_op.values())
            )
        return env

    @staticmethod
    def _rows_out(ins: Instr, env: Dict[str, Any]) -> Optional[float]:
        """Row-count estimate of an instruction's primary result."""
        if not ins.results:
            return None
        value = env.get(ins.results[0])
        if isinstance(value, (BAT, ResultSet)):
            return float(value.count)
        if isinstance(value, np.ndarray):
            return float(len(value))
        return None

    def _flush_node_stats(
        self,
        program: Program,
        node_local: Dict[Optional[int], List[float]],
    ) -> None:
        """Fold one execution's per-node timings into the program.

        The program object is the natural per-query aggregation point: a
        continuous query owns its compiled program, so cumulative node
        stats *are* the query's EXPLAIN ANALYZE state.
        """
        with self._profile_lock:
            stats = program.node_stats
            for node_id, (calls, seconds, rows) in node_local.items():
                slot = stats.get(node_id)
                if slot is None:
                    stats[node_id] = [calls, seconds, rows]
                else:
                    slot[0] += calls
                    slot[1] += seconds
                    slot[2] += rows

    def _flush_profile(self, local: Dict[str, List[float]]) -> None:
        with self._profile_lock:
            for key, (calls, seconds, cpu) in local.items():
                slot = self._opcode_stats.setdefault(key, [0, 0.0, 0.0])
                slot[0] += calls
                slot[1] += seconds
                slot[2] += cpu
        for key, (calls, seconds, cpu) in local.items():
            self._m_calls.labels(key).inc(calls)
            self._m_seconds.labels(key).inc(seconds)
            if cpu:
                self._m_cpu_seconds.labels(key).inc(cpu)

    # ------------------------------------------------------------------
    # opcode profile surface
    # ------------------------------------------------------------------
    def profile(self) -> Dict[str, Dict[str, float]]:
        """Per-opcode invocation counts and cumulative seconds.

        ``cpu_seconds`` stays 0.0 unless resource accounting is on —
        thread-CPU deltas are only captured with an enabled accountant.
        """
        with self._profile_lock:
            return {
                key: {
                    "calls": int(calls),
                    "seconds": seconds,
                    "cpu_seconds": cpu,
                }
                for key, (calls, seconds, cpu) in sorted(
                    self._opcode_stats.items()
                )
            }

    def render_profile(self) -> str:
        """Aligned text profile, hottest opcode first (explain-style)."""
        profile = self.profile()
        if not profile:
            return "(no MAL instructions profiled)"
        ranked = sorted(
            profile.items(), key=lambda kv: -kv[1]["seconds"]
        )
        width = max(len(op) for op, _ in ranked)
        lines = [f"{'opcode'.ljust(width)}  {'calls':>10}  {'total ms':>12}"]
        for op, stats in ranked:
            lines.append(
                f"{op.ljust(width)}  {stats['calls']:>10}  "
                f"{stats['seconds'] * 1e3:>12.3f}"
            )
        return "\n".join(lines)

    def reset_profile(self) -> None:
        with self._profile_lock:
            self._opcode_stats.clear()

    def run(self, program: Program, env: Optional[Dict[str, Any]] = None) -> Any:
        """Execute and return the program's declared output value."""
        final = self.execute(program, env)
        if program.output is None:
            return None
        try:
            return final[program.output]
        except KeyError:
            raise MalError(
                f"program never bound output {program.output!r}"
            ) from None

    def _step(self, ctx: MalContext, ins: Instr, env: Dict[str, Any]) -> None:
        fn = _REGISTRY.get(f"{ins.module}.{ins.fn}")
        if fn is None:
            raise MalError(f"unknown MAL primitive {ins.module}.{ins.fn}")
        args = []
        for arg in ins.args:
            if isinstance(arg, Var):
                try:
                    args.append(env[arg.name])
                except KeyError:
                    raise MalError(
                        f"undefined variable {arg.name!r} in {ins.render()}"
                    ) from None
            elif isinstance(arg, Const):
                args.append(arg.value)
            else:  # pragma: no cover - defensive
                raise MalError(f"bad argument {arg!r}")
        try:
            value = fn(ctx, *args)
        except MalError:
            raise
        except Exception as exc:
            raise MalError(f"primitive failed in {ins.render()}: {exc}") from exc
        ctx.instructions_executed += 1
        if len(ins.results) == 1:
            env[ins.results[0]] = value
        elif len(ins.results) > 1:
            if not isinstance(value, tuple) or len(value) != len(ins.results):
                raise MalError(
                    f"{ins.module}.{ins.fn} returned wrong arity for "
                    f"{ins.results}"
                )
            for name, item in zip(ins.results, value):
                env[name] = item


# ----------------------------------------------------------------------
# sql module: catalog access and result construction
# ----------------------------------------------------------------------
@primitive("sql.bind")
def _sql_bind(ctx: MalContext, table: Any, column: str) -> BAT:
    """Bind a column BAT from the catalog (or directly from a Table)."""
    tbl = table if isinstance(table, Table) else ctx.catalog.get(table)
    return tbl.bat(column)


@primitive("sql.bind_table")
def _sql_bind_table(ctx: MalContext, name: str) -> Table:
    return ctx.catalog.get(name)


@primitive("sql.resultset")
def _sql_resultset(ctx: MalContext, names: Any, *bats: BAT) -> ResultSet:
    return ResultSet(list(names), list(bats))


@primitive("sql.single_row")
def _sql_single_row(ctx: MalContext, names: Any, atoms: Any, *values: Any) -> ResultSet:
    """Build a one-row result from scalar values (scalar aggregates)."""
    out = [
        bat_from_values(AtomType(atom), [value])
        for atom, value in zip(atoms, values)
    ]
    return ResultSet(list(names), out)


# ----------------------------------------------------------------------
# algebra module: selections, projections, joins, ordering
# ----------------------------------------------------------------------
@primitive("algebra.select")
def _algebra_select(
    ctx: MalContext,
    bat: BAT,
    cands: Optional[np.ndarray],
    low: Any,
    high: Any,
    li: bool,
    hi: bool,
    anti: bool,
) -> np.ndarray:
    return _select.range_select(bat, low, high, cands, li, hi, anti)


@primitive("algebra.thetaselect")
def _algebra_thetaselect(
    ctx: MalContext, bat: BAT, cands: Optional[np.ndarray], op: str, value: Any
) -> np.ndarray:
    return _select.theta_select(bat, op, value, cands)


@primitive("algebra.selectnil")
def _algebra_selectnil(
    ctx: MalContext, bat: BAT, cands: Optional[np.ndarray]
) -> np.ndarray:
    return _select.select_nil(bat, cands)


@primitive("algebra.selectnotnil")
def _algebra_selectnotnil(
    ctx: MalContext, bat: BAT, cands: Optional[np.ndarray]
) -> np.ndarray:
    return _select.select_non_nil(bat, cands)


@primitive("algebra.projection")
def _algebra_projection(ctx: MalContext, cands: np.ndarray, bat: BAT) -> BAT:
    return _join.projection(cands, bat)


@primitive("algebra.join")
def _algebra_join(ctx: MalContext, left: BAT, right: BAT):
    return _join.hash_join(left, right)


@primitive("algebra.thetajoin")
def _algebra_thetajoin(ctx: MalContext, left: BAT, right: BAT, op: str):
    return _join.theta_join(left, right, op)


@primitive("algebra.leftouterjoin")
def _algebra_leftouterjoin(ctx: MalContext, left: BAT, right: BAT):
    return _join.left_outer_join(left, right)


@primitive("algebra.sort")
def _algebra_sort(
    ctx: MalContext, bat: BAT, cands: Optional[np.ndarray], descending: bool
) -> np.ndarray:
    return _sort.order(bat, cands, descending)


@primitive("algebra.refine")
def _algebra_refine(
    ctx: MalContext, bat: BAT, ordered: np.ndarray, descending: bool
) -> np.ndarray:
    return _sort.refine(bat, ordered, descending)


@primitive("algebra.firstn")
def _algebra_firstn(
    ctx: MalContext, cands: np.ndarray, n: int
) -> np.ndarray:
    return np.asarray(cands, dtype=np.int64)[: max(int(n), 0)]


@primitive("algebra.slice")
def _algebra_slice(ctx: MalContext, bat: BAT, start: int, stop: int) -> BAT:
    return bat.slice(int(start), int(stop))


@primitive("algebra.mask2cand")
def _algebra_mask2cand(ctx: MalContext, mask: BAT) -> np.ndarray:
    """Candidates where a bool BAT is true (NULL counts as false)."""
    return _cand.from_mask(mask, mask.tail == 1)


@primitive("algebra.densecands")
def _algebra_densecands(ctx: MalContext, bat: BAT) -> np.ndarray:
    return _cand.all_candidates(bat)


@primitive("algebra.compose")
def _algebra_compose(ctx, outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Compose candidate lists: positions-of-positions.

    ``outer`` maps an intermediate relation back to the base; ``inner``
    selects positions of the intermediate.  Result: base positions.
    """
    outer = np.asarray(outer, dtype=np.int64)
    inner = np.asarray(inner, dtype=np.int64)
    return outer[inner]


@primitive("algebra.crossproduct")
def _algebra_crossproduct(ctx, left: BAT, right: BAT):
    """Cross-product position pairs for two dense-0 relations."""
    return _join.cross_positions(left.count, right.count)


@primitive("sql.result_column")
def _sql_result_column(ctx, result: ResultSet, index: int) -> BAT:
    return result.bats[int(index)]


# ----------------------------------------------------------------------
# candidate-list algebra
# ----------------------------------------------------------------------
@primitive("cand.intersect")
def _cand_intersect(ctx, left, right):
    return _cand.intersect(left, right)


@primitive("cand.union")
def _cand_union(ctx, left, right):
    return _cand.union(left, right)


@primitive("cand.difference")
def _cand_difference(ctx, left, right):
    return _cand.difference(left, right)


# ----------------------------------------------------------------------
# batcalc module
# ----------------------------------------------------------------------
def _register_batcalc() -> None:
    for op in ("+", "-", "*", "/", "%"):
        def make(o):
            def fn(ctx, left, right):
                return _calc.calc_binary(o, left, right)

            return fn

        _REGISTRY[f"batcalc.{op}"] = make(op)
    for op in ("==", "!=", "<", "<=", ">", ">="):
        def make_cmp(o):
            def fn(ctx, left, right):
                return _calc.calc_compare(o, left, right)

            return fn

        _REGISTRY[f"batcalc.{op}"] = make_cmp(op)


_register_batcalc()


@primitive("batcalc.and")
def _batcalc_and(ctx, left, right):
    return _calc.calc_and(left, right)


@primitive("batcalc.or")
def _batcalc_or(ctx, left, right):
    return _calc.calc_or(left, right)


@primitive("batcalc.not")
def _batcalc_not(ctx, operand):
    return _calc.calc_not(operand)


@primitive("batcalc.isnil")
def _batcalc_isnil(ctx, operand):
    return _calc.calc_isnil(operand)


@primitive("batcalc.neg")
def _batcalc_neg(ctx, operand):
    return _calc.calc_neg(operand)


@primitive("batcalc.ifthenelse")
def _batcalc_ifthenelse(ctx, cond, then_val, else_val):
    return _calc.calc_ifthenelse(cond, then_val, else_val)


@primitive("batcalc.cast")
def _batcalc_cast(ctx, operand: BAT, atom: str) -> BAT:
    """Cast a column to another atom type (NULL-preserving)."""
    from .types import nil_value, numpy_dtype, python_value

    target = AtomType(atom)
    out = BAT(target, hseqbase=operand.hseqbase, capacity=max(operand.count, 1))
    out.append_many(
        python_value(operand.atom, v) for v in operand.tail
    )
    return out


@primitive("batcalc.const")
def _batcalc_const(ctx, value, like, atom=None):
    atom_type = AtomType(atom) if atom else None
    return _calc.const_bat(value, like, atom_type)


# ----------------------------------------------------------------------
# group / aggr modules
# ----------------------------------------------------------------------
@primitive("group.group")
def _group_group(ctx, bat, cands=None):
    return _group.group(bat, cands)


@primitive("group.subgroup")
def _group_subgroup(ctx, bat, prev_groups, cands=None):
    return _group.subgroup(bat, prev_groups, cands)


def _register_aggr() -> None:
    for name in _aggregate.AGGREGATE_NAMES:
        def make_scalar(agg):
            def fn(ctx, bat, cands=None):
                return _aggregate.scalar_aggregate(agg, bat, cands)

            return fn

        def make_grouped(agg):
            def fn(ctx, bat, groups, ngroups, cands=None):
                return _aggregate.grouped_aggregate(
                    agg, bat, groups, int(ngroups), cands
                )

            return fn

        _REGISTRY[f"aggr.{name}"] = make_scalar(name)
        _REGISTRY[f"aggr.sub{name}"] = make_grouped(name)


_register_aggr()


# ----------------------------------------------------------------------
# batstr / batmath modules — scalar functions over columns
# ----------------------------------------------------------------------
def _register_strings() -> None:
    from . import strings as _strings

    _REGISTRY["batstr.upper"] = lambda ctx, b: _strings.str_upper(b)
    _REGISTRY["batstr.lower"] = lambda ctx, b: _strings.str_lower(b)
    _REGISTRY["batstr.trim"] = lambda ctx, b: _strings.str_trim(b)
    _REGISTRY["batstr.length"] = lambda ctx, b: _strings.str_length(b)
    _REGISTRY["batstr.substring"] = (
        lambda ctx, b, start, length=None: _strings.str_substring(
            b, int(start), None if length is None else int(length)
        )
    )
    _REGISTRY["batstr.like"] = (
        lambda ctx, b, pattern, negated=False: _strings.like_mask(
            b, pattern, bool(negated)
        )
    )
    _REGISTRY["algebra.likeselect"] = (
        lambda ctx, b, cands, pattern, negated=False: _strings.like_select(
            b, pattern, cands, bool(negated)
        )
    )


_register_strings()


def _register_math() -> None:
    from . import mathops as _mathops

    for fn_name in _mathops.MATH_FUNCTIONS:
        def make(n):
            def fn(ctx, bat, digits=0):
                return _mathops.math_unary(n, bat, int(digits))

            return fn

        _REGISTRY[f"batmath.{fn_name}"] = make(fn_name)


_register_math()


# ----------------------------------------------------------------------
# basket module — Algorithm 1's primitives, operating on basket Tables.
# ----------------------------------------------------------------------
@primitive("basket.bind")
def _basket_bind(ctx, name: str) -> Table:
    table = ctx.catalog.get(name)
    return table


@primitive("basket.lock")
def _basket_lock(ctx, table: Table) -> Table:
    table.lock.acquire()
    return table


@primitive("basket.unlock")
def _basket_unlock(ctx, table: Table) -> Table:
    table.lock.release()
    return table


@primitive("basket.count")
def _basket_count(ctx, table: Table) -> int:
    return table.count


@primitive("basket.empty")
def _basket_empty(ctx, table: Table) -> int:
    return table.truncate()


@primitive("basket.append")
def _basket_append(ctx, table: Table, result: ResultSet) -> int:
    for col, bat in zip(table.schema, result.bats):
        table.bat(col.name).append_bat(bat)
    table.check_alignment()
    return result.count


@primitive("basket.snapshot")
def _basket_snapshot(ctx, table: Table, column: str) -> BAT:
    return table.bat(column)


@primitive("bat.concat")
def _bat_concat(ctx, left: BAT, right: BAT) -> BAT:
    """Concatenate two columns (UNION ALL building block)."""
    out = BAT(left.atom, hseqbase=0, capacity=max(left.count + right.count, 1))
    out.append_bat(left)
    out.append_bat(right)
    return out


# ----------------------------------------------------------------------
# delta module — weighted (Z-set) relations for incremental execution
# ----------------------------------------------------------------------
def _register_delta() -> None:
    from . import delta as _delta
    from .bat import BAT as _BAT

    _REGISTRY["delta.canonicalize"] = (
        lambda ctx, result: _delta.canonicalize(result)
    )
    _REGISTRY["delta.expand"] = lambda ctx, result: _delta.expand(result)

    def _wsum(ctx, values: _BAT, weights: _BAT, gids, ngroups: int):
        sums = _delta.weighted_grouped_sum(
            values.tail, weights.tail, gids.tail, int(ngroups)
        )
        out = _BAT(AtomType.DBL, capacity=max(len(sums), 1))
        out.append_array(sums)
        return out

    def _wcount(ctx, weights: _BAT, gids, ngroups: int):
        counts = _delta.weighted_grouped_count(
            weights.tail, gids.tail, int(ngroups)
        )
        out = _BAT(AtomType.LNG, capacity=max(len(counts), 1))
        out.append_array(counts)
        return out

    _REGISTRY["delta.subsum"] = _wsum
    _REGISTRY["delta.subcount"] = _wcount


_register_delta()


# ----------------------------------------------------------------------
# language niceties
# ----------------------------------------------------------------------
@primitive("language.pass")
def _language_pass(ctx, value=None):
    return value
