"""Join primitives: fetch (projection) joins and value joins.

``projection`` is MonetDB's ``algebra.projection`` (a.k.a. leftfetchjoin):
given a candidate list of head oids and a tail BAT, fetch tail values in
candidate order, producing a new dense-headed BAT.  It is the workhorse of
column-at-a-time execution: selections produce oids, projections turn them
back into columns.

``hash_join`` / ``theta_join`` are value-based joins returning *pairs of
position arrays* into the left and right inputs, like MonetDB's
``algebra.join`` returning two oid BATs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Tuple

import numpy as np

from ..errors import KernelError, TypeMismatchError
from .bat import BAT
from .candidates import resolve_positions
from .types import AtomType, nil_mask

__all__ = [
    "projection",
    "hash_join",
    "left_outer_join",
    "theta_join",
    "cross_positions",
]


def projection(candidates: np.ndarray, tail: BAT, hseqbase: int = 0) -> BAT:
    """Fetch ``tail`` values for each candidate oid, in candidate order."""
    return tail.take_oids(np.asarray(candidates, dtype=np.int64), hseqbase=hseqbase)


def _join_tails(
    left: BAT,
    right: BAT,
    left_cands: Optional[np.ndarray],
    right_cands: Optional[np.ndarray],
):
    if left.atom is not right.atom and not (
        left.atom.is_numeric and right.atom.is_numeric
    ):
        raise TypeMismatchError(
            f"cannot join {left.atom.value} with {right.atom.value}"
        )
    lpos = resolve_positions(left, left_cands)
    rpos = resolve_positions(right, right_cands)
    return lpos, left.tail[lpos], rpos, right.tail[rpos]


def hash_join(
    left: BAT,
    right: BAT,
    left_cands: Optional[np.ndarray] = None,
    right_cands: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Equi-join on tail values.

    Returns ``(left_oids, right_oids)``: parallel arrays such that
    ``left[left_oids[i]] == right[right_oids[i]]``.  NULLs never match.
    The smaller side is hashed; output order follows the probe side scan
    order (left side), matching MonetDB's join result properties closely
    enough for plan correctness.
    """
    lpos, ltail, rpos, rtail = _join_tails(left, right, left_cands, right_cands)
    lnil = nil_mask(left.atom, ltail)
    rnil = nil_mask(right.atom, rtail)
    table = defaultdict(list)
    for idx in np.flatnonzero(~rnil):
        table[rtail[idx]].append(idx)
    out_l, out_r = [], []
    for idx in np.flatnonzero(~lnil):
        matches = table.get(ltail[idx])
        if matches:
            for ridx in matches:
                out_l.append(lpos[idx])
                out_r.append(rpos[ridx])
    left_oids = np.asarray(out_l, dtype=np.int64) + left.hseqbase
    right_oids = np.asarray(out_r, dtype=np.int64) + right.hseqbase
    return left_oids, right_oids


def left_outer_join(
    left: BAT,
    right: BAT,
    left_cands: Optional[np.ndarray] = None,
    right_cands: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Left outer equi-join.

    Like :func:`hash_join` but every left tuple appears at least once;
    unmatched left tuples pair with right oid ``-1`` (the caller projects
    NULL for those).
    """
    lpos, ltail, rpos, rtail = _join_tails(left, right, left_cands, right_cands)
    rnil = nil_mask(right.atom, rtail)
    lnil = nil_mask(left.atom, ltail)
    table = defaultdict(list)
    for idx in np.flatnonzero(~rnil):
        table[rtail[idx]].append(idx)
    out_l, out_r = [], []
    for idx in range(len(lpos)):
        matches = None if lnil[idx] else table.get(ltail[idx])
        if matches:
            for ridx in matches:
                out_l.append(lpos[idx])
                out_r.append(rpos[ridx])
        else:
            out_l.append(lpos[idx])
            out_r.append(-1 - left.hseqbase)  # sentinel, corrected below
    left_oids = np.asarray(out_l, dtype=np.int64) + left.hseqbase
    right_oids = np.asarray(out_r, dtype=np.int64)
    matched = right_oids >= 0
    right_oids[matched] += right.hseqbase
    right_oids[~matched] = -1
    return left_oids, right_oids


def theta_join(
    left: BAT,
    right: BAT,
    op: str,
    left_cands: Optional[np.ndarray] = None,
    right_cands: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """General theta join (``< <= > >= != ==``) via sorted-side pruning.

    For inequality operators the right side is sorted so each left value
    finds its matching run with a binary search; equality delegates to the
    hash join.
    """
    if op in ("==", "="):
        return hash_join(left, right, left_cands, right_cands)
    lpos, ltail, rpos, rtail = _join_tails(left, right, left_cands, right_cands)
    lnil = nil_mask(left.atom, ltail)
    rnil = nil_mask(right.atom, rtail)
    rvalid = np.flatnonzero(~rnil)
    if left.atom is AtomType.STR:
        order = sorted(rvalid, key=lambda i: rtail[i])
        rsorted = np.asarray(order, dtype=np.int64)
        rvals = [rtail[i] for i in rsorted]
    else:
        rvals_raw = rtail[rvalid].astype(np.float64)
        order = np.argsort(rvals_raw, kind="stable")
        rsorted = rvalid[order]
        rvals = rvals_raw[order]
    out_l, out_r = [], []
    import bisect

    for idx in np.flatnonzero(~lnil):
        val = ltail[idx]
        if left.atom is not AtomType.STR:
            val = float(val)
        if op == "<":
            start = bisect.bisect_right(rvals, val)
            chosen = rsorted[start:]
        elif op == "<=":
            start = bisect.bisect_left(rvals, val)
            chosen = rsorted[start:]
        elif op == ">":
            stop = bisect.bisect_left(rvals, val)
            chosen = rsorted[:stop]
        elif op == ">=":
            stop = bisect.bisect_right(rvals, val)
            chosen = rsorted[:stop]
        elif op in ("!=", "<>"):
            lo = bisect.bisect_left(rvals, val)
            hi = bisect.bisect_right(rvals, val)
            chosen = np.concatenate([rsorted[:lo], rsorted[hi:]])
        else:
            raise KernelError(f"unknown join operator {op!r}")
        for ridx in chosen:
            out_l.append(lpos[idx])
            out_r.append(rpos[ridx])
    left_oids = np.asarray(out_l, dtype=np.int64) + left.hseqbase
    right_oids = np.asarray(out_r, dtype=np.int64) + right.hseqbase
    return left_oids, right_oids


def cross_positions(left_count: int, right_count: int) -> Tuple[np.ndarray, np.ndarray]:
    """Position pairs for a cross product (used by nested-loop fallbacks)."""
    lidx = np.repeat(np.arange(left_count, dtype=np.int64), right_count)
    ridx = np.tile(np.arange(right_count, dtype=np.int64), left_count)
    return lidx, ridx
