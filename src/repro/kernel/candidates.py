"""Candidate lists: sorted oid arrays threaded through kernel operators.

MonetDB's operators accept an optional *candidate list* restricting which
head oids participate.  We represent candidates as sorted ``int64`` numpy
arrays of oids.  ``None`` means "all tuples of the BAT".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .bat import BAT

__all__ = [
    "all_candidates",
    "resolve_positions",
    "from_mask",
    "intersect",
    "union",
    "difference",
    "validate",
]


def all_candidates(bat: BAT) -> np.ndarray:
    """Candidate list covering every tuple of ``bat``."""
    return bat.head_oids()


def resolve_positions(bat: BAT, candidates: Optional[np.ndarray]) -> np.ndarray:
    """0-based tail positions selected by ``candidates`` (None = all)."""
    if candidates is None:
        return np.arange(bat.count, dtype=np.int64)
    return np.asarray(candidates, dtype=np.int64) - bat.hseqbase


def from_mask(bat: BAT, mask: np.ndarray) -> np.ndarray:
    """Candidate list of the tuples whose mask position is True."""
    return np.flatnonzero(mask).astype(np.int64) + bat.hseqbase


def intersect(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Sorted intersection of two candidate lists."""
    return np.intersect1d(left, right, assume_unique=True)


def union(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Sorted union of two candidate lists."""
    return np.union1d(left, right)


def difference(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Sorted candidates in ``left`` but not ``right``."""
    return np.setdiff1d(left, right, assume_unique=True)


def validate(bat: BAT, candidates: Optional[np.ndarray]) -> None:
    """Raise if any candidate oid falls outside the BAT's head range."""
    if candidates is None or len(candidates) == 0:
        return
    lo, hi = int(candidates[0]), int(candidates[-1])
    if lo < bat.hseqbase or hi >= bat.hseq_end:
        from ..errors import KernelError

        raise KernelError(
            f"candidate oids [{lo},{hi}] outside head range "
            f"[{bat.hseqbase},{bat.hseq_end})"
        )
