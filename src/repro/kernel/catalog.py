"""Catalog: schemas, tables, and the registry the SQL binder resolves against.

A :class:`Table` is the relational view over ``k`` tuple-order-aligned BATs.
Baskets (the DataCell's stream buffers) are registered in the same catalog —
the paper keeps "the syntax and semantics of baskets aligned with the table
definition in SQL'03 as much as possible" — but carry a flag so the binder
can tell continuous from one-time scans.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CatalogError
from .bat import BAT, check_aligned
from .types import AtomType, python_value

__all__ = ["ColumnDef", "Schema", "Table", "Catalog"]


@dataclass(frozen=True)
class ColumnDef:
    """A column name/type pair in a schema."""

    name: str
    atom: AtomType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"bad column name {self.name!r}")


class Schema:
    """An ordered list of column definitions with case-insensitive lookup."""

    def __init__(self, columns: Sequence[ColumnDef]):
        if not columns:
            raise CatalogError("a schema needs at least one column")
        self.columns: Tuple[ColumnDef, ...] = tuple(columns)
        self._index: Dict[str, int] = {}
        for i, col in enumerate(self.columns):
            key = col.name.lower()
            if key in self._index:
                raise CatalogError(f"duplicate column {col.name!r}")
            self._index[key] = i

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def names(self) -> List[str]:
        return [col.name for col in self.columns]

    def has(self, name: str) -> bool:
        return name.lower() in self._index

    def position(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def column(self, name: str) -> ColumnDef:
        return self.columns[self.position(name)]

    def atom(self, name: str) -> AtomType:
        return self.column(name).atom

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name} {c.atom.value}" for c in self.columns)
        return f"Schema({cols})"


class Table:
    """A named collection of tuple-order-aligned BATs.

    Thread-compatible: mutation is guarded by ``lock`` (an RLock); the
    DataCell's baskets build their exclusive-access protocol on top of it.
    """

    def __init__(self, name: str, schema: Schema, is_basket: bool = False):
        self.name = name
        self.schema = schema
        self.is_basket = is_basket
        self.lock = threading.RLock()
        self._bats: Dict[str, BAT] = {
            col.name.lower(): BAT(col.atom) for col in schema
        }

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        first = next(iter(self._bats.values()))
        return first.count

    def __len__(self) -> int:
        return self.count

    def bat(self, column: str) -> BAT:
        """The BAT storing ``column`` (KeyError-safe)."""
        try:
            return self._bats[column.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def bats(self) -> List[BAT]:
        """All column BATs in schema order."""
        return [self._bats[c.name.lower()] for c in self.schema]

    def check_alignment(self) -> None:
        """Verify the tuple-order alignment invariant across all columns."""
        check_aligned(*self.bats())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def append_row(self, values: Sequence[Any]) -> None:
        """Append one tuple given in schema order."""
        if len(values) != len(self.schema):
            raise CatalogError(
                f"row arity {len(values)} != schema arity {len(self.schema)}"
            )
        with self.lock:
            for col, value in zip(self.schema, values):
                self._bats[col.name.lower()].append(value)

    def append_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many tuples; returns the number appended."""
        rows = list(rows)
        with self.lock:
            for row in rows:
                self.append_row(row)
        return len(rows)

    def append_columns(self, columns: Dict[str, np.ndarray]) -> int:
        """Columnar bulk append: dict of column name → storage array.

        All provided arrays must have equal length and cover the full
        schema — the cheap path receptors use for batched ingest.
        """
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise CatalogError("column arrays have differing lengths")
        if set(c.lower() for c in columns) != set(self._bats):
            raise CatalogError("bulk append must cover all columns")
        n = lengths.pop() if lengths else 0
        with self.lock:
            for name, values in columns.items():
                self._bats[name.lower()].append_array(np.asarray(values))
        return n

    def truncate(self) -> int:
        """Remove all tuples; returns how many were removed.

        New BAT generations start at the old ``hseq_end`` so oids stay
        globally unique across consume cycles (baskets rely on this).
        """
        with self.lock:
            removed = self.count
            for key, bat in list(self._bats.items()):
                self._bats[key] = BAT(bat.atom, hseqbase=bat.hseq_end)
            return removed

    def replace_bats(self, bats: Dict[str, BAT]) -> None:
        """Swap in a new aligned generation of column BATs (consume path)."""
        if set(bats) != set(self._bats):
            raise CatalogError("replacement must cover all columns")
        check_aligned(*bats.values())
        with self.lock:
            self._bats = dict(bats)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def rows(self, limit: Optional[int] = None) -> List[Tuple[Any, ...]]:
        """Materialize tuples as python values (testing/emission helper)."""
        with self.lock:
            bats = self.bats()
            n = self.count if limit is None else min(limit, self.count)
            cols = [
                [python_value(b.atom, v) for v in b.tail[:n]] for b in bats
            ]
        return list(zip(*cols)) if cols and n else []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "basket" if self.is_basket else "table"
        return f"Table({self.name!r}, {kind}, rows={self.count})"


class Catalog:
    """Name → table registry with case-insensitive lookup.

    ``lock_observer`` is the dev/simtest lock-order seam: when set (any
    object with ``wrap(name, lock) -> lock``, see
    :class:`repro.analysis.lockorder.LockOrderRecorder`), every table
    registered afterwards gets its lock wrapped so acquisitions feed the
    acquisition-graph recorder.  The kernel stays ignorant of the
    recorder's type — production runs carry a single ``None`` check.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}
        self._lock = threading.RLock()
        self.lock_observer = None

    def create_table(
        self,
        name: str,
        columns: Sequence[Tuple[str, AtomType]],
        is_basket: bool = False,
    ) -> Table:
        """Create and register a table (or basket) by column specs."""
        schema = Schema([ColumnDef(n, a) for n, a in columns])
        table = Table(name, schema, is_basket=is_basket)
        self.register(table)
        return table

    def register(self, table: Table) -> None:
        with self._lock:
            key = table.name.lower()
            if key in self._tables:
                raise CatalogError(f"table {table.name!r} already exists")
            if self.lock_observer is not None:
                table.lock = self.lock_observer.wrap(key, table.lock)
            self._tables[key] = table

    def drop(self, name: str) -> None:
        with self._lock:
            if name.lower() not in self._tables:
                raise CatalogError(f"unknown table {name!r}")
            del self._tables[name.lower()]

    def get(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def baskets(self) -> List[Table]:
        return [t for t in self._tables.values() if t.is_basket]
