"""String primitives (``batstr``) and LIKE-pattern selection.

MonetDB ships a ``str``/``pcre`` module family; we provide the subset the
SQL layer exposes: case mapping, length, substring, trim, concat (in
calc), and SQL LIKE matching with ``%``/``_`` wildcards compiled to
python regexes.
"""

from __future__ import annotations

import re
from typing import Optional

import numpy as np

from ..errors import TypeMismatchError
from .bat import BAT
from .candidates import resolve_positions
from .types import AtomType

__all__ = [
    "str_upper",
    "str_lower",
    "str_length",
    "str_substring",
    "str_trim",
    "like_pattern_to_regex",
    "like_select",
    "like_mask",
]


def _require_str(bat: BAT, op: str) -> None:
    if bat.atom is not AtomType.STR:
        raise TypeMismatchError(f"{op} requires a str column")


def _map_str(bat: BAT, fn) -> BAT:
    out = BAT(AtomType.STR, hseqbase=bat.hseqbase, capacity=max(bat.count, 1))
    out.append_many(None if v is None else fn(v) for v in bat.tail)
    return out


def str_upper(bat: BAT) -> BAT:
    """UPPER(column) — NULL-preserving."""
    _require_str(bat, "upper")
    return _map_str(bat, str.upper)


def str_lower(bat: BAT) -> BAT:
    """LOWER(column) — NULL-preserving."""
    _require_str(bat, "lower")
    return _map_str(bat, str.lower)


def str_trim(bat: BAT) -> BAT:
    """TRIM(column) — strips ASCII whitespace, NULL-preserving."""
    _require_str(bat, "trim")
    return _map_str(bat, str.strip)


def str_length(bat: BAT) -> BAT:
    """LENGTH(column) — an INT column; NULL for NULL input."""
    _require_str(bat, "length")
    out = BAT(AtomType.INT, hseqbase=bat.hseqbase, capacity=max(bat.count, 1))
    out.append_many(None if v is None else len(v) for v in bat.tail)
    return out


def str_substring(bat: BAT, start: int, length: Optional[int] = None) -> BAT:
    """SUBSTRING(column, start[, length]) — 1-based start, SQL style."""
    _require_str(bat, "substring")
    begin = max(0, int(start) - 1)
    if length is None:
        return _map_str(bat, lambda v: v[begin:])
    stop = begin + max(0, int(length))
    return _map_str(bat, lambda v: v[begin:stop])


def like_pattern_to_regex(pattern: str, escape: str = "\\") -> "re.Pattern":
    """Compile a SQL LIKE pattern to an anchored python regex.

    ``%`` matches any run (including empty), ``_`` any single character;
    ``escape`` (default backslash) escapes either wildcard.
    """
    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == escape and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("".join(out) + r"\Z", re.DOTALL)


def like_mask(bat: BAT, pattern: str, negated: bool = False) -> BAT:
    """Bool BAT: 1 where the tail matches the LIKE pattern.

    NULL inputs yield NULL (three-valued logic, as for any predicate).
    """
    _require_str(bat, "like")
    regex = like_pattern_to_regex(pattern)
    from .types import BOOL_NIL

    stored = np.empty(bat.count, dtype=np.int8)
    for i, value in enumerate(bat.tail):
        if value is None:
            stored[i] = BOOL_NIL
        else:
            hit = regex.match(value) is not None
            stored[i] = np.int8((not hit) if negated else hit)
    out = BAT(AtomType.BOOL, hseqbase=bat.hseqbase, capacity=max(bat.count, 1))
    out.append_array(stored)
    return out


def like_select(
    bat: BAT,
    pattern: str,
    candidates: Optional[np.ndarray] = None,
    negated: bool = False,
) -> np.ndarray:
    """Oids of tuples matching (or, negated, not matching) the pattern.

    NULLs never qualify either way.
    """
    _require_str(bat, "like")
    regex = like_pattern_to_regex(pattern)
    positions = resolve_positions(bat, candidates)
    hits = []
    for pos in positions:
        value = bat.tail[pos]
        if value is None:
            continue
        matched = regex.match(value) is not None
        if matched != negated:
            hits.append(pos)
    return np.asarray(hits, dtype=np.int64) + bat.hseqbase
