"""Delta-aware columnar kernels: weighted (Z-set) column operations.

The incremental execution mode (``repro.incremental``) represents change
streams as rows carrying an integer weight column (+1 insert / −1
retract).  These kernels are the columnar counterparts of the Z-set
algebra — they operate on whole weight-annotated relations at BAT
granularity, so the MAL layer can manipulate deltas without dropping to
per-row python:

``canonicalize``
    combine duplicate rows by summing weights and drop zero-weight rows —
    the normal form every delta should be in before crossing an operator
    boundary.

``expand``
    turn a canonical positive delta back into a plain multiset relation
    (``np.repeat`` by weight); refuses negative weights, mirroring
    :meth:`repro.incremental.zset.ZSet.to_rows`.

``weighted_grouped_sum`` / ``weighted_grouped_count``
    per-group Σ(value·weight) and Σ(weight) via ``np.bincount`` — the
    delta-aggregate inner loop.

All are registered as MAL primitives under the ``delta.*`` module (see
:mod:`repro.kernel.interpreter`), making them first-class opcodes that
show up in opcode profiles and EXPLAIN ANALYZE like any other kernel
operation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..errors import KernelError
from .bat import BAT, bat_from_values
from .mal import ResultSet
from .types import AtomType

__all__ = [
    "canonicalize",
    "expand",
    "weighted_grouped_sum",
    "weighted_grouped_count",
]


def _weights_of(result: ResultSet) -> np.ndarray:
    """The weight column (last) of a delta ResultSet, as int64."""
    if not result.bats:
        raise KernelError("delta relation has no columns")
    wbat = result.bats[-1]
    if wbat.atom is not AtomType.LNG:
        raise KernelError(
            f"weight column must be LNG, got {wbat.atom}"
        )
    return wbat.tail.astype(np.int64)


def canonicalize(result: ResultSet) -> ResultSet:
    """Merge duplicate rows (summing weights), drop zero-weight rows.

    The last column is the weight.  Output rows appear in first-occurrence
    order of their key — deterministic, which the durability digests rely
    on.  NULLs participate in row identity (two NULL-keyed rows merge).
    """
    weights = _weights_of(result)
    key_cols: List[List[Any]] = [
        bat.python_list() for bat in result.bats[:-1]
    ]
    acc: Dict[Tuple[Any, ...], int] = {}
    for i in range(len(weights)):
        key = tuple(col[i] for col in key_cols)
        w = acc.get(key, 0) + int(weights[i])
        if w == 0:
            # keep the slot so first-occurrence order is stable even if
            # the row later reappears with non-zero net weight
            acc[key] = 0
        else:
            acc[key] = w
    rows = [(key, w) for key, w in acc.items() if w != 0]
    atoms = [bat.atom for bat in result.bats]
    out_bats = []
    for c, atom in enumerate(atoms[:-1]):
        out_bats.append(
            bat_from_values(atom, [key[c] for key, _ in rows])
        )
    out_bats.append(
        bat_from_values(AtomType.LNG, [w for _, w in rows])
    )
    return ResultSet(list(result.names), out_bats)


def expand(result: ResultSet) -> ResultSet:
    """Expand a positive delta into a plain relation (weight stripped).

    Each row is repeated ``weight`` times.  Negative weights are an
    error: a retraction cannot be represented in a non-weighted relation.
    """
    weights = _weights_of(result)
    if np.any(weights < 0):
        bad = int(weights[weights < 0][0])
        raise KernelError(
            f"cannot expand delta with negative weight {bad}"
        )
    positions = np.repeat(
        np.arange(len(weights), dtype=np.int64), weights
    )
    out_bats = []
    for bat in result.bats[:-1]:
        nb = BAT(bat.atom, capacity=max(len(positions), 1))
        nb.append_array(bat.tail[positions])
        out_bats.append(nb)
    return ResultSet(list(result.names[:-1]), out_bats)


def weighted_grouped_sum(
    values: np.ndarray,
    weights: np.ndarray,
    gids: np.ndarray,
    ngroups: int,
) -> np.ndarray:
    """Per-group Σ(value·weight) — the incremental SUM inner loop."""
    if not (len(values) == len(weights) == len(gids)):
        raise KernelError("weighted sum inputs not aligned")
    return np.bincount(
        gids,
        weights=values.astype(np.float64) * weights.astype(np.float64),
        minlength=ngroups,
    )


def weighted_grouped_count(
    weights: np.ndarray, gids: np.ndarray, ngroups: int
) -> np.ndarray:
    """Per-group Σ(weight) — the incremental COUNT inner loop."""
    if len(weights) != len(gids):
        raise KernelError("weighted count inputs not aligned")
    return np.bincount(
        gids, weights=weights.astype(np.float64), minlength=ngroups
    ).astype(np.int64)
