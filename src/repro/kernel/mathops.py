"""Numeric scalar functions (``batmath``): abs, floor, ceil, round, sqrt.

Element-wise over numeric BATs, NULL-preserving; sqrt of a negative value
yields NULL (SQL would raise — NULL keeps streams flowing, same policy as
division by zero in :mod:`repro.kernel.calc`).
"""

from __future__ import annotations


import numpy as np

from ..errors import TypeMismatchError
from .bat import BAT
from .types import AtomType, nil_value, numpy_dtype

__all__ = ["math_unary", "MATH_FUNCTIONS"]

MATH_FUNCTIONS = ("abs", "floor", "ceil", "round", "sqrt")


def math_unary(name: str, bat: BAT, digits: int = 0) -> BAT:
    """Apply ``name`` element-wise; see module docstring for NULL rules.

    ``floor``/``ceil``/``round`` return LNG for integral inputs and DBL
    otherwise (``round`` with ``digits > 0`` is always DBL); ``abs`` keeps
    the input type; ``sqrt`` is always DBL.
    """
    if name not in MATH_FUNCTIONS:
        raise TypeMismatchError(f"unknown math function {name!r}")
    if not bat.atom.is_numeric:
        raise TypeMismatchError(f"{name} requires a numeric column")
    nils = bat.nil_positions()
    values = np.where(nils, 0.0, bat.tail.astype(np.float64))
    if name == "abs":
        result = np.abs(values)
        out_atom = bat.atom
    elif name == "floor":
        result = np.floor(values)
        out_atom = AtomType.LNG if bat.atom.is_integral else AtomType.DBL
    elif name == "ceil":
        result = np.ceil(values)
        out_atom = AtomType.LNG if bat.atom.is_integral else AtomType.DBL
    elif name == "round":
        result = np.round(values, int(digits))
        out_atom = AtomType.DBL if digits else (
            AtomType.LNG if bat.atom.is_integral else AtomType.DBL
        )
    else:  # sqrt
        with np.errstate(invalid="ignore"):
            result = np.sqrt(values)
        nils = nils | (values < 0)
        out_atom = AtomType.DBL
    out = BAT(out_atom, hseqbase=bat.hseqbase, capacity=max(bat.count, 1))
    if out_atom is AtomType.DBL:
        result = result.astype(np.float64)
        result[nils] = np.nan
        out.append_array(result)
    else:
        stored = np.where(nils, 0.0, result).astype(numpy_dtype(out_atom))
        stored[nils] = nil_value(out_atom)
        out.append_array(stored)
    return out
