"""Selection primitives: the kernel's ``select`` family.

Selections take a BAT (and an optional candidate list) and return a
*candidate list* of qualifying head oids — they never materialize values.
This mirrors MonetDB's ``algebra.select`` / ``algebra.thetaselect`` and is
what lets the DataCell evaluate predicate windows lazily.

NULL semantics: NULL tail values never qualify for any comparison except the
explicit :func:`select_nil` / inverse selections.
"""

from __future__ import annotations

import operator
from typing import Any, Optional

import numpy as np

from ..errors import KernelError
from .bat import BAT
from .candidates import resolve_positions
from .types import AtomType, coerce_scalar, nil_mask

__all__ = ["range_select", "theta_select", "select_nil", "select_non_nil"]

_THETA_OPS = {
    "==": operator.eq,
    "=": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _masked_tail(bat: BAT, candidates: Optional[np.ndarray]):
    positions = resolve_positions(bat, candidates)
    return positions, bat.tail[positions]


def range_select(
    bat: BAT,
    low: Any,
    high: Any,
    candidates: Optional[np.ndarray] = None,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
    anti: bool = False,
) -> np.ndarray:
    """Oids of tuples with tail value in the range ``[low, high]``.

    ``None`` for either bound means unbounded on that side.  ``anti=True``
    inverts the range (but still never matches NULLs).
    """
    positions, tail = _masked_tail(bat, candidates)
    mask = np.ones(len(tail), dtype=bool)
    if bat.atom is AtomType.STR:
        # Object arrays: compare via python, skipping Nones.
        nils = np.fromiter((v is None for v in tail), bool, count=len(tail))
        if low is not None:
            cmp_lo = operator.ge if low_inclusive else operator.gt
            mask &= np.fromiter(
                (v is not None and cmp_lo(v, low) for v in tail),
                bool,
                count=len(tail),
            )
        if high is not None:
            cmp_hi = operator.le if high_inclusive else operator.lt
            mask &= np.fromiter(
                (v is not None and cmp_hi(v, high) for v in tail),
                bool,
                count=len(tail),
            )
    else:
        nils = nil_mask(bat.atom, tail)
        if low is not None:
            low = coerce_scalar(bat.atom, low)
            mask &= (tail >= low) if low_inclusive else (tail > low)
        if high is not None:
            high = coerce_scalar(bat.atom, high)
            mask &= (tail <= high) if high_inclusive else (tail < high)
    if anti:
        mask = ~mask
    mask &= ~nils
    return positions[np.flatnonzero(mask)] + bat.hseqbase


def theta_select(
    bat: BAT,
    op: str,
    value: Any,
    candidates: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Oids of tuples whose tail compares ``op`` against ``value``.

    ``op`` is one of ``== != < <= > >=`` (SQL spellings ``=`` and ``<>``
    accepted).  Comparing against NULL yields the empty candidate list.
    """
    if op not in _THETA_OPS:
        raise KernelError(f"unknown theta operator {op!r}")
    if value is None:
        return np.empty(0, dtype=np.int64)
    positions, tail = _masked_tail(bat, candidates)
    fn = _THETA_OPS[op]
    if bat.atom is AtomType.STR:
        mask = np.fromiter(
            (v is not None and fn(v, value) for v in tail),
            bool,
            count=len(tail),
        )
    else:
        value = coerce_scalar(bat.atom, value)
        mask = fn(tail, value) & ~nil_mask(bat.atom, tail)
    return positions[np.flatnonzero(mask)] + bat.hseqbase


def select_nil(
    bat: BAT, candidates: Optional[np.ndarray] = None
) -> np.ndarray:
    """Oids of tuples whose tail is NULL (``IS NULL``)."""
    positions, tail = _masked_tail(bat, candidates)
    mask = nil_mask(bat.atom, tail)
    return positions[np.flatnonzero(mask)] + bat.hseqbase


def select_non_nil(
    bat: BAT, candidates: Optional[np.ndarray] = None
) -> np.ndarray:
    """Oids of tuples whose tail is not NULL (``IS NOT NULL``)."""
    positions, tail = _masked_tail(bat, candidates)
    mask = ~nil_mask(bat.atom, tail)
    return positions[np.flatnonzero(mask)] + bat.hseqbase
