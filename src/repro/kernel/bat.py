"""Binary Association Tables (BATs) — the kernel's only collection type.

A BAT is a two-column structure ``(head, tail)``.  As in modern MonetDB the
head is *virtual*: a dense, ascending ``oid`` sequence starting at
``hseqbase`` that is never materialized.  The tail is a typed array.  A
relational table of ``k`` attributes is ``k`` BATs that share the same head
sequence — the *tuple-order alignment* the paper relies on for cheap tuple
reconstruction.

BATs are append-only at this level; deletion happens by creating new BATs
(which is exactly how baskets "consume" tuples: the basket swaps in a new,
emptied BAT generation).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import AlignmentError, KernelError, TypeMismatchError
from .types import AtomType, coerce_scalar, nil_mask, numpy_dtype, python_value

__all__ = ["BAT", "bat_from_values", "empty_bat", "check_aligned"]

_INITIAL_CAPACITY = 16


class BAT:
    """A single column: virtual dense head + typed tail.

    Parameters
    ----------
    atom:
        The tail's atom type.
    hseqbase:
        First head oid.  ``head[i] == hseqbase + i``.

    The tail grows amortized-O(1) via a capacity-doubling backing array, so
    receptors can append tuple batches cheaply.
    """

    __slots__ = ("atom", "hseqbase", "_data", "_count")

    def __init__(self, atom: AtomType, hseqbase: int = 0, capacity: int = 0):
        self.atom = atom
        self.hseqbase = int(hseqbase)
        self._data = np.empty(
            max(capacity, _INITIAL_CAPACITY), dtype=numpy_dtype(atom)
        )
        self._count = 0

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        """Number of tuples in the BAT."""
        return self._count

    @property
    def tail(self) -> np.ndarray:
        """A view of the valid portion of the tail array (do not mutate)."""
        return self._data[: self._count]

    @property
    def hseq_end(self) -> int:
        """One past the last head oid."""
        return self.hseqbase + self._count

    def element_nbytes(self) -> int:
        """Estimated bytes per tail element.

        Fixed-width atoms report the numpy itemsize exactly; object
        (string) tails use a flat per-element estimate because walking
        every python string would be O(n).
        """
        if self._data.dtype == object:
            from ..obs.resources import OBJECT_ELEMENT_BYTES

            return OBJECT_ELEMENT_BYTES
        return self._data.itemsize

    def nbytes(self) -> int:
        """Estimated tail-payload bytes, O(1) by contract.

        ``count * element_nbytes()``; spare capacity beyond ``count`` is
        not charged — it measures data held, not arena size.  See
        docs/observability.md, "Resource accounting".
        """
        return self._count * self.element_nbytes()

    def head_oids(self) -> np.ndarray:
        """Materialize the (normally virtual) head as an oid array."""
        return np.arange(
            self.hseqbase, self.hseqbase + self._count, dtype=np.int64
        )

    def value(self, position: int) -> Any:
        """Tail value at *position* (0-based, not oid)."""
        if not 0 <= position < self._count:
            raise KernelError(
                f"position {position} out of range [0, {self._count})"
            )
        return self._data[position]

    def value_at_oid(self, oid: int) -> Any:
        """Tail value for head oid ``oid``."""
        return self.value(int(oid) - self.hseqbase)

    def python_list(self) -> List[Any]:
        """Tail as plain python values (NULLs become ``None``)."""
        return [python_value(self.atom, v) for v in self.tail]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.tail)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(repr(v) for v in self.tail[:5])
        suffix = ", ..." if self._count > 5 else ""
        return (
            f"BAT({self.atom.value}, hseqbase={self.hseqbase}, "
            f"count={self._count}, [{preview}{suffix}])"
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _reserve(self, extra: int) -> None:
        needed = self._count + extra
        if needed <= len(self._data):
            return
        new_cap = max(len(self._data) * 2, needed)
        grown = np.empty(new_cap, dtype=self._data.dtype)
        grown[: self._count] = self._data[: self._count]
        self._data = grown

    def append(self, value: Any) -> None:
        """Append one (coerced) value to the tail."""
        self._reserve(1)
        self._data[self._count] = coerce_scalar(self.atom, value)
        self._count += 1

    def append_many(self, values: Iterable[Any]) -> None:
        """Append an iterable of python values, coercing each.

        Fast path: for non-STR/BOOL atoms, clean batches (no ``None``)
        are converted with one vectorized ``np.asarray`` call; anything
        that fails conversion falls back to per-value coercion.  BOOL is
        excluded because its domain check (only -1/0/1) would be skipped.
        """
        values = list(values)
        if not values:
            return
        if self.atom not in (AtomType.STR, AtomType.BOOL):
            try:
                self.append_array(
                    np.asarray(values, dtype=self._data.dtype)
                )
                return
            except (TypeError, ValueError, OverflowError):
                pass
        self._reserve(len(values))
        for value in values:
            self._data[self._count] = coerce_scalar(self.atom, value)
            self._count += 1

    def append_array(self, array: np.ndarray) -> None:
        """Append a numpy array already in storage representation."""
        array = np.asarray(array)
        if array.dtype != self._data.dtype:
            try:
                array = array.astype(self._data.dtype)
            except (TypeError, ValueError) as exc:
                raise TypeMismatchError(
                    f"cannot append dtype {array.dtype} to {self.atom.value} BAT"
                ) from exc
        self._reserve(len(array))
        self._data[self._count : self._count + len(array)] = array
        self._count += len(array)

    def append_bat(self, other: "BAT") -> None:
        """Append another BAT's tail (types must match)."""
        if other.atom is not self.atom:
            raise TypeMismatchError(
                f"cannot append {other.atom.value} BAT to {self.atom.value} BAT"
            )
        self.append_array(other.tail)

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int, hseqbase: Optional[int] = None) -> "BAT":
        """New BAT holding tail positions ``[start, stop)``.

        The new head restarts at ``hseqbase`` (default: ``self.hseqbase +
        start``, preserving global oids).
        """
        start = max(0, start)
        stop = min(self._count, stop)
        if hseqbase is None:
            hseqbase = self.hseqbase + start
        out = BAT(self.atom, hseqbase=hseqbase, capacity=max(stop - start, 1))
        if stop > start:
            out.append_array(self._data[start:stop])
        return out

    def take_positions(self, positions: np.ndarray, hseqbase: int = 0) -> "BAT":
        """New BAT with the tail values at the given 0-based positions."""
        out = BAT(self.atom, hseqbase=hseqbase, capacity=max(len(positions), 1))
        if len(positions):
            out.append_array(self.tail[positions])
        return out

    def take_oids(self, oids: np.ndarray, hseqbase: int = 0) -> "BAT":
        """New BAT with tail values for the given head oids (fetch join)."""
        oids = np.asarray(oids, dtype=np.int64)
        if len(oids):
            positions = oids - self.hseqbase
            if positions.min() < 0 or positions.max() >= self._count:
                raise KernelError("oid out of BAT head range")
            return self.take_positions(positions, hseqbase=hseqbase)
        return BAT(self.atom, hseqbase=hseqbase)

    def copy(self) -> "BAT":
        """Deep copy (same head sequence)."""
        out = BAT(self.atom, hseqbase=self.hseqbase, capacity=max(self._count, 1))
        out.append_array(self.tail)
        return out

    def nil_positions(self) -> np.ndarray:
        """Boolean mask of NULL tail positions."""
        return nil_mask(self.atom, self.tail)


def bat_from_values(
    atom: AtomType, values: Sequence[Any], hseqbase: int = 0
) -> BAT:
    """Build a BAT from python values (coercing, NULLs allowed)."""
    out = BAT(atom, hseqbase=hseqbase, capacity=max(len(values), 1))
    out.append_many(values)
    return out


def empty_bat(atom: AtomType, hseqbase: int = 0) -> BAT:
    """An empty BAT of the given type."""
    return BAT(atom, hseqbase=hseqbase)


def check_aligned(*bats: BAT) -> None:
    """Assert that all BATs share head sequence (same base and count).

    Tuple-order alignment is the invariant that makes column projection a
    positional lookup; operators that combine columns of one table call this
    before trusting positions.
    """
    if not bats:
        return
    base, count = bats[0].hseqbase, bats[0].count
    for bat in bats[1:]:
        if bat.hseqbase != base or bat.count != count:
            raise AlignmentError(
                "BATs are not tuple-order aligned: "
                f"({base},{count}) vs ({bat.hseqbase},{bat.count})"
            )
