"""``batcalc``-style columnar arithmetic, comparison and boolean algebra.

All functions operate element-wise on whole BATs (or a BAT and a scalar) and
return new BATs aligned with the left input.  NULL propagates through
arithmetic; three-valued logic is used for AND/OR/NOT (NULL = unknown).
"""

from __future__ import annotations

from typing import Any, Optional, Union

import numpy as np

from ..errors import KernelError, TypeMismatchError
from .bat import BAT, check_aligned
from .types import (
    AtomType,
    BOOL_NIL,
    coerce_scalar,
    common_type,
    nil_mask,
    nil_value,
    numpy_dtype,
)

__all__ = [
    "calc_binary",
    "calc_compare",
    "calc_and",
    "calc_or",
    "calc_not",
    "calc_isnil",
    "calc_ifthenelse",
    "calc_neg",
    "const_bat",
]

Operand = Union[BAT, int, float, str, None]


def _broadcast(left: Operand, right: Operand):
    """Return (atom_l, tail_l, atom_r, tail_r, hseqbase, count)."""
    if isinstance(left, BAT) and isinstance(right, BAT):
        check_aligned(left, right)
        return (
            left.atom,
            left.tail,
            right.atom,
            right.tail,
            left.hseqbase,
            left.count,
        )
    if isinstance(left, BAT):
        atom_r = _scalar_atom(right)
        return (
            left.atom,
            left.tail,
            atom_r,
            coerce_scalar(atom_r, right),
            left.hseqbase,
            left.count,
        )
    if isinstance(right, BAT):
        atom_l = _scalar_atom(left)
        return (
            atom_l,
            coerce_scalar(atom_l, left),
            right.atom,
            right.tail,
            right.hseqbase,
            right.count,
        )
    raise KernelError("at least one operand of a batcalc op must be a BAT")


def _scalar_atom(value: Any) -> AtomType:
    if value is None:
        return AtomType.DBL
    if isinstance(value, bool):
        return AtomType.BOOL
    if isinstance(value, (int, np.integer)):
        return AtomType.LNG
    if isinstance(value, (float, np.floating)):
        return AtomType.DBL
    if isinstance(value, str):
        return AtomType.STR
    raise TypeMismatchError(f"unsupported scalar {value!r}")


def _operand_nils(atom: AtomType, values) -> np.ndarray:
    if isinstance(values, np.ndarray):
        return nil_mask(atom, values)
    # scalar: broadcast nil-ness
    from .types import is_nil

    return np.bool_(is_nil(atom, values))


def _as_float(atom: AtomType, values):
    if isinstance(values, np.ndarray):
        if atom is AtomType.STR:
            raise TypeMismatchError("arithmetic on str column")
        return values.astype(np.float64)
    return float(values)


def calc_binary(op: str, left: Operand, right: Operand) -> BAT:
    """Element-wise arithmetic: ``op`` ∈ ``+ - * / %``.

    The result type follows the widening lattice; division always yields
    ``dbl``.  Division/modulo by zero yields NULL for the offending rows
    (SQL would raise; NULL keeps streams flowing and is documented behavior).
    """
    atom_l, vals_l, atom_r, vals_r, hseqbase, count = _broadcast(left, right)
    if op == "+" and atom_l is AtomType.STR and atom_r is AtomType.STR:
        return _concat_str(vals_l, vals_r, hseqbase, count)
    out_atom = common_type(atom_l, atom_r)
    if op == "/":
        out_atom = AtomType.DBL
    nils = _operand_nils(atom_l, vals_l) | _operand_nils(atom_r, vals_r)
    lf = _as_float(atom_l, vals_l)
    rf = _as_float(atom_r, vals_r)
    with np.errstate(divide="ignore", invalid="ignore"):
        if op == "+":
            res = lf + rf
        elif op == "-":
            res = lf - rf
        elif op == "*":
            res = lf * rf
        elif op == "/":
            res = np.where(rf == 0, np.nan, lf) / np.where(rf == 0, 1, rf)
            nils = nils | (rf == 0)
        elif op == "%":
            res = np.mod(lf, np.where(rf == 0, 1, rf))
            nils = nils | (rf == 0)
        else:
            raise KernelError(f"unknown arithmetic operator {op!r}")
    res = np.broadcast_to(res, (count,)).copy()
    nils = np.broadcast_to(nils, (count,))
    out = BAT(out_atom, hseqbase=hseqbase, capacity=max(count, 1))
    if out_atom in (AtomType.DBL, AtomType.TIMESTAMP):
        res[nils] = np.nan
        out.append_array(res)
    else:
        stored = np.where(nils, 0.0, res).astype(numpy_dtype(out_atom))
        stored[nils] = nil_value(out_atom)
        out.append_array(stored)
    return out


def _concat_str(vals_l, vals_r, hseqbase: int, count: int) -> BAT:
    left_seq = vals_l if isinstance(vals_l, np.ndarray) else [vals_l] * count
    right_seq = vals_r if isinstance(vals_r, np.ndarray) else [vals_r] * count
    out = BAT(AtomType.STR, hseqbase=hseqbase, capacity=max(count, 1))
    out.append_many(
        None if (a is None or b is None) else a + b
        for a, b in zip(left_seq, right_seq)
    )
    return out


def calc_compare(op: str, left: Operand, right: Operand) -> BAT:
    """Element-wise comparison producing a ``bool`` BAT (NULL-aware).

    Any comparison involving NULL yields NULL (three-valued logic).
    """
    atom_l, vals_l, atom_r, vals_r, hseqbase, count = _broadcast(left, right)
    nils = _operand_nils(atom_l, vals_l) | _operand_nils(atom_r, vals_r)
    if atom_l is AtomType.STR or atom_r is AtomType.STR:
        if atom_l is not atom_r:
            raise TypeMismatchError("cannot compare str with non-str")
        left_seq = (
            vals_l if isinstance(vals_l, np.ndarray) else [vals_l] * count
        )
        right_seq = (
            vals_r if isinstance(vals_r, np.ndarray) else [vals_r] * count
        )
        import operator as _op

        fn = {
            "==": _op.eq,
            "!=": _op.ne,
            "<": _op.lt,
            "<=": _op.le,
            ">": _op.gt,
            ">=": _op.ge,
        }[op]
        raw = np.fromiter(
            (
                False if (a is None or b is None) else fn(a, b)
                for a, b in zip(left_seq, right_seq)
            ),
            bool,
            count=count,
        )
    else:
        lf = _as_float(atom_l, vals_l)
        rf = _as_float(atom_r, vals_r)
        with np.errstate(invalid="ignore"):
            if op == "==":
                raw = lf == rf
            elif op == "!=":
                raw = lf != rf
            elif op == "<":
                raw = lf < rf
            elif op == "<=":
                raw = lf <= rf
            elif op == ">":
                raw = lf > rf
            elif op == ">=":
                raw = lf >= rf
            else:
                raise KernelError(f"unknown comparison operator {op!r}")
        raw = np.broadcast_to(raw, (count,))
    nils = np.broadcast_to(nils, (count,))
    stored = raw.astype(np.int8).copy()
    stored[nils] = BOOL_NIL
    out = BAT(AtomType.BOOL, hseqbase=hseqbase, capacity=max(count, 1))
    out.append_array(stored)
    return out


def _bool_tail(operand: Operand, reference: Optional[BAT]):
    if isinstance(operand, BAT):
        if operand.atom is not AtomType.BOOL:
            raise TypeMismatchError("boolean algebra requires bool BATs")
        return operand.tail, operand.hseqbase, operand.count
    if reference is None:
        raise KernelError("boolean op needs at least one BAT operand")
    value = BOOL_NIL if operand is None else np.int8(1 if operand else 0)
    return value, reference.hseqbase, reference.count


def calc_and(left: Operand, right: Operand) -> BAT:
    """Three-valued AND over bool BATs."""
    ref = left if isinstance(left, BAT) else right
    lt, hseqbase, count = _bool_tail(left, ref if isinstance(ref, BAT) else None)
    rt, _, _ = _bool_tail(right, ref if isinstance(ref, BAT) else None)
    if isinstance(left, BAT) and isinstance(right, BAT):
        check_aligned(left, right)
    lt = np.broadcast_to(lt, (count,))
    rt = np.broadcast_to(rt, (count,))
    res = np.full(count, BOOL_NIL, dtype=np.int8)
    res[(lt == 0) | (rt == 0)] = 0
    res[(lt == 1) & (rt == 1)] = 1
    out = BAT(AtomType.BOOL, hseqbase=hseqbase, capacity=max(count, 1))
    out.append_array(res)
    return out


def calc_or(left: Operand, right: Operand) -> BAT:
    """Three-valued OR over bool BATs."""
    ref = left if isinstance(left, BAT) else right
    lt, hseqbase, count = _bool_tail(left, ref if isinstance(ref, BAT) else None)
    rt, _, _ = _bool_tail(right, ref if isinstance(ref, BAT) else None)
    if isinstance(left, BAT) and isinstance(right, BAT):
        check_aligned(left, right)
    lt = np.broadcast_to(lt, (count,))
    rt = np.broadcast_to(rt, (count,))
    res = np.full(count, BOOL_NIL, dtype=np.int8)
    res[(lt == 1) | (rt == 1)] = 1
    res[(lt == 0) & (rt == 0)] = 0
    out = BAT(AtomType.BOOL, hseqbase=hseqbase, capacity=max(count, 1))
    out.append_array(res)
    return out


def calc_not(operand: BAT) -> BAT:
    """Three-valued NOT over a bool BAT."""
    if operand.atom is not AtomType.BOOL:
        raise TypeMismatchError("NOT requires a bool BAT")
    tail = operand.tail
    res = np.full(operand.count, BOOL_NIL, dtype=np.int8)
    res[tail == 0] = 1
    res[tail == 1] = 0
    out = BAT(AtomType.BOOL, hseqbase=operand.hseqbase, capacity=max(operand.count, 1))
    out.append_array(res)
    return out


def calc_isnil(operand: BAT) -> BAT:
    """Bool BAT: 1 where the input tail is NULL."""
    mask = operand.nil_positions()
    out = BAT(AtomType.BOOL, hseqbase=operand.hseqbase, capacity=max(operand.count, 1))
    out.append_array(mask.astype(np.int8))
    return out


def calc_neg(operand: BAT) -> BAT:
    """Arithmetic negation (NULL-preserving, atom-preserving).

    The zero constant is minted with the operand's own atom: a bare
    ``const_bat(0, ...)`` would be LNG and ``common_type`` would widen
    an INT column to LNG, which the emitter-boundary ``append_bat``
    rejects against the compiler-declared (input-atom) output column.
    """
    if operand.atom is AtomType.STR:
        raise TypeMismatchError("cannot negate a str column")
    return calc_binary("-", const_bat(0, operand, atom=operand.atom), operand)


def calc_ifthenelse(cond: BAT, then_val: Operand, else_val: Operand) -> BAT:
    """Element-wise ``CASE WHEN cond THEN x ELSE y END``.

    NULL conditions select the else branch (SQL: non-true is false-like).
    """
    if cond.atom is not AtomType.BOOL:
        raise TypeMismatchError("ifthenelse requires a bool condition BAT")
    mask = cond.tail == 1
    then_bat = (
        then_val
        if isinstance(then_val, BAT)
        else const_bat(then_val, cond)
    )
    else_bat = (
        else_val
        if isinstance(else_val, BAT)
        else const_bat(else_val, cond)
    )
    check_aligned(cond, then_bat, else_bat)
    if then_bat.atom is not else_bat.atom:
        out_atom = common_type(then_bat.atom, else_bat.atom)
    else:
        out_atom = then_bat.atom
    out = BAT(out_atom, hseqbase=cond.hseqbase, capacity=max(cond.count, 1))
    if out_atom is AtomType.STR:
        out.append_many(
            t if m else e
            for m, t, e in zip(mask, then_bat.tail, else_bat.tail)
        )
    else:
        tv = then_bat.tail.astype(numpy_dtype(out_atom))
        ev = else_bat.tail.astype(numpy_dtype(out_atom))
        out.append_array(np.where(mask, tv, ev))
    return out


def const_bat(value: Any, like: BAT, atom: Optional[AtomType] = None) -> BAT:
    """A constant column aligned with ``like`` (scalar broadcast helper)."""
    if atom is None:
        atom = _scalar_atom(value)
    out = BAT(atom, hseqbase=like.hseqbase, capacity=max(like.count, 1))
    stored = coerce_scalar(atom, value)
    if atom is AtomType.STR:
        out.append_many([stored] * like.count)
    else:
        out.append_array(np.full(like.count, stored, dtype=numpy_dtype(atom)))
    return out
