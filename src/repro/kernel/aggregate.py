"""Aggregate primitives: scalar and grouped SUM/COUNT/AVG/MIN/MAX.

Scalar aggregates reduce a whole BAT (optionally candidate-restricted) to a
python value; grouped aggregates (``aggr.subsum`` etc.) reduce per group id
and return a BAT of one value per group.

SQL NULL semantics throughout: NULL inputs are skipped; an empty input
yields NULL for SUM/AVG/MIN/MAX and 0 for COUNT.  ``count_star`` counts
tuples regardless of NULLs.

These primitives double as the *summary combinators* of the basic-window
model: :class:`AggregateState` is a mergeable summary (count/sum/min/max)
that the incremental window executor keeps per basic window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..errors import KernelError, TypeMismatchError
from .bat import BAT
from .candidates import resolve_positions
from .types import AtomType, nil_value, numpy_dtype

__all__ = [
    "scalar_aggregate",
    "grouped_aggregate",
    "AggregateState",
    "AGGREGATE_NAMES",
]

AGGREGATE_NAMES = ("sum", "count", "count_star", "avg", "min", "max")


def _valid_tail(bat: BAT, candidates: Optional[np.ndarray]):
    positions = resolve_positions(bat, candidates)
    tail = bat.tail[positions]
    nil = bat.nil_positions()[positions]
    return tail, nil


def scalar_aggregate(
    name: str, bat: BAT, candidates: Optional[np.ndarray] = None
) -> Any:
    """Reduce the BAT with aggregate ``name``; returns a python value."""
    if name not in AGGREGATE_NAMES:
        raise KernelError(f"unknown aggregate {name!r}")
    tail, nil = _valid_tail(bat, candidates)
    if name == "count_star":
        return int(len(tail))
    valid = tail[~nil]
    if name == "count":
        return int(len(valid))
    if len(valid) == 0:
        return None
    if bat.atom is AtomType.STR:
        if name == "min":
            return min(valid)
        if name == "max":
            return max(valid)
        raise TypeMismatchError(f"aggregate {name} undefined on str")
    values = valid.astype(np.float64)
    if name == "sum":
        total = float(values.sum())
        return int(total) if bat.atom.is_integral else total
    if name == "avg":
        return float(values.mean())
    if name == "min":
        res = values.min()
        return int(res) if bat.atom.is_integral else float(res)
    if name == "max":
        res = values.max()
        return int(res) if bat.atom.is_integral else float(res)
    raise KernelError(f"unhandled aggregate {name!r}")  # pragma: no cover


def grouped_aggregate(
    name: str,
    bat: BAT,
    groups: BAT,
    ngroups: int,
    candidates: Optional[np.ndarray] = None,
) -> BAT:
    """Per-group reduction; returns a BAT of ``ngroups`` values.

    ``groups`` is the aligned group-id BAT produced by
    :func:`repro.kernel.group.group` on the same candidate set.
    """
    if name not in AGGREGATE_NAMES:
        raise KernelError(f"unknown aggregate {name!r}")
    tail, nil = _valid_tail(bat, candidates)
    gids = groups.tail
    if len(gids) != len(tail):
        raise KernelError("groups BAT not aligned with aggregate input")
    if name == "count_star":
        counts = np.bincount(gids, minlength=ngroups).astype(np.int64)
        out = BAT(AtomType.LNG, capacity=max(ngroups, 1))
        out.append_array(counts)
        return out
    valid_mask = ~nil
    if name == "count":
        counts = np.bincount(
            gids[valid_mask], minlength=ngroups
        ).astype(np.int64)
        out = BAT(AtomType.LNG, capacity=max(ngroups, 1))
        out.append_array(counts)
        return out
    if bat.atom is AtomType.STR:
        return _grouped_str(name, tail, valid_mask, gids, ngroups)
    values = tail.astype(np.float64)
    counts = np.bincount(gids[valid_mask], minlength=ngroups)
    if name in ("sum", "avg"):
        sums = np.bincount(
            gids[valid_mask], weights=values[valid_mask], minlength=ngroups
        )
        if name == "avg":
            with np.errstate(invalid="ignore", divide="ignore"):
                res = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
            out = BAT(AtomType.DBL, capacity=max(ngroups, 1))
            out.append_array(res)
            return out
        sum_atom = AtomType.LNG if bat.atom.is_integral else AtomType.DBL
        return _store_numeric(sum_atom, sums, counts)
    if name in ("min", "max"):
        fill = np.inf if name == "min" else -np.inf
        res = np.full(ngroups, fill, dtype=np.float64)
        fn = np.minimum if name == "min" else np.maximum
        fn.at(res, gids[valid_mask], values[valid_mask])
        # min/max preserve the input atom: the declared output column of a
        # continuous GROUP BY is the input atom, and append_bat rejects
        # any widening at the emitter boundary.
        return _store_numeric(bat.atom, res, counts)
    raise KernelError(f"unhandled aggregate {name!r}")  # pragma: no cover


def _store_numeric(atom: AtomType, values: np.ndarray, counts: np.ndarray) -> BAT:
    """Store per-group numeric results as ``atom``, NULLing empty groups."""
    empty = counts == 0
    out = BAT(atom, capacity=max(len(values), 1))
    if atom in (AtomType.DBL, AtomType.TIMESTAMP):
        stored = values.astype(np.float64)
        stored[empty] = np.nan
    else:
        stored = np.where(empty, 0, values).astype(numpy_dtype(atom))
        stored[empty] = nil_value(atom)
    out.append_array(stored)
    return out


def _grouped_str(name, tail, valid_mask, gids, ngroups) -> BAT:
    if name not in ("min", "max"):
        raise TypeMismatchError(f"aggregate {name} undefined on str")
    best = [None] * ngroups
    for idx in np.flatnonzero(valid_mask):
        gid = gids[idx]
        val = tail[idx]
        cur = best[gid]
        if cur is None or (val < cur if name == "min" else val > cur):
            best[gid] = val
    out = BAT(AtomType.STR, capacity=max(ngroups, 1))
    out.append_many(best)
    return out


@dataclass
class AggregateState:
    """A mergeable aggregate summary — the basic-window ``bw`` summary.

    Holds enough state to answer SUM/COUNT/AVG/MIN/MAX without re-reading
    the covered tuples, and to merge with neighbouring summaries in O(1).
    """

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def add_value(self, value: float) -> None:
        """Fold one non-NULL value into the summary."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def add_array(self, values: np.ndarray) -> None:
        """Fold an array of non-NULL values into the summary."""
        if len(values) == 0:
            return
        self.count += int(len(values))
        self.total += float(values.sum())
        lo, hi = float(values.min()), float(values.max())
        if self.minimum is None or lo < self.minimum:
            self.minimum = lo
        if self.maximum is None or hi > self.maximum:
            self.maximum = hi

    def merge(self, other: "AggregateState") -> "AggregateState":
        """Return the summary of the union of the two covered ranges."""
        merged = AggregateState(
            count=self.count + other.count,
            total=self.total + other.total,
        )
        mins = [m for m in (self.minimum, other.minimum) if m is not None]
        maxs = [m for m in (self.maximum, other.maximum) if m is not None]
        merged.minimum = min(mins) if mins else None
        merged.maximum = max(maxs) if maxs else None
        return merged

    def result(self, name: str) -> Any:
        """Answer aggregate ``name`` from the summary (SQL NULL rules)."""
        if name in ("count", "count_star"):
            return self.count
        if self.count == 0:
            return None
        if name == "sum":
            return self.total
        if name == "avg":
            return self.total / self.count
        if name == "min":
            return self.minimum
        if name == "max":
            return self.maximum
        raise KernelError(f"unknown aggregate {name!r}")
