"""Ordering primitives: stable sort, top-N, and first-N slicing.

``order`` returns a *permutation* (candidate list of oids in sorted order),
which the plan then feeds to projections — the column-store never sorts
whole tables, only the oid order.  Multi-column ORDER BY chains calls via
``refine`` exactly like MonetDB's ``algebra.sort`` with an ordered input.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .bat import BAT
from .candidates import resolve_positions
from .types import AtomType

__all__ = ["order", "refine", "topn"]


def _sort_keys(bat: BAT, positions: np.ndarray, descending: bool):
    tail = bat.tail[positions]
    if bat.atom is AtomType.STR:
        # NULLs sort first ascending (SQL: NULLS FIRST default here).
        keyed = [
            ((v is not None), v if v is not None else "")
            for v in tail
        ]
        order_idx = sorted(range(len(keyed)), key=lambda i: keyed[i])
        idx = np.asarray(order_idx, dtype=np.int64)
        if descending:
            idx = idx[::-1]
        return idx
    values = tail.astype(np.float64)
    nil = bat.nil_positions()[positions]
    if descending:
        # negate instead of reversing so ties keep arrival order (stable);
        # NULLs sort last descending
        return np.argsort(np.where(nil, np.inf, -values), kind="stable")
    # Ascending: NULLs first; implement by mapping NULL to -inf.
    return np.argsort(np.where(nil, -np.inf, values), kind="stable")


def order(
    bat: BAT,
    candidates: Optional[np.ndarray] = None,
    descending: bool = False,
) -> np.ndarray:
    """Oids of the (candidate) tuples in tail-sorted order (stable)."""
    positions = resolve_positions(bat, candidates)
    idx = _sort_keys(bat, positions, descending)
    return positions[idx] + bat.hseqbase


def refine(
    bat: BAT,
    ordered_oids: np.ndarray,
    descending: bool = False,
) -> np.ndarray:
    """Refine an existing order by this BAT's tail (secondary sort key).

    Stable-sorts ``ordered_oids`` by ``bat``'s values; ties keep the
    incoming order, which is how multi-column ORDER BY composes.
    """
    positions = np.asarray(ordered_oids, dtype=np.int64) - bat.hseqbase
    idx = _sort_keys(bat, positions, descending)
    return positions[idx] + bat.hseqbase


def topn(
    bat: BAT,
    n: int,
    candidates: Optional[np.ndarray] = None,
    descending: bool = False,
) -> np.ndarray:
    """Oids of the N smallest (or largest) tail values."""
    ordered = order(bat, candidates, descending)
    return ordered[: max(n, 0)]
