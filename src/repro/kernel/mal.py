"""MAL — the kernel's assembly language.

MonetDB executes plans written in MAL, a virtual-machine assembly where each
instruction wraps one optimized relational primitive.  We reproduce the same
shape: a :class:`Program` is a straight-line SSA-ish list of
:class:`Instr` uctions, each calling ``module.function`` on variables and
constants and binding (possibly several) result variables.

Control flow (Algorithm 1's ``while true`` / ``suspend``) deliberately lives
*outside* MAL, in the factory shell (:mod:`repro.core.factory`): the paper's
factories are "ordinary functions whose execution state is saved between
calls", and the saved state here is the basket read-cursor plus the python
generator's frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import MalError
from .bat import BAT
from .types import AtomType, python_value

__all__ = ["Var", "Const", "Instr", "PlanNode", "Program", "ResultSet"]


@dataclass(frozen=True)
class Var:
    """Reference to a MAL variable by name."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal argument embedded in an instruction."""

    value: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


Arg = Union[Var, Const]


@dataclass(frozen=True)
class Instr:
    """One MAL instruction: ``results := module.fn(args)``.

    ``node`` is the id of the logical-plan node (:class:`PlanNode`) this
    instruction implements — the EXPLAIN ANALYZE back-pointer letting the
    interpreter aggregate per-opcode timings onto the plan tree.  ``None``
    for instructions emitted outside any node scope (glue code).
    """

    results: Tuple[str, ...]
    module: str
    fn: str
    args: Tuple[Arg, ...]
    node: Optional[int] = None

    def render(self) -> str:
        """Human-readable MAL-like text (used by EXPLAIN and tests)."""
        lhs = ", ".join(self.results)
        rhs = ", ".join(repr(a) for a in self.args)
        head = f"{lhs} := " if self.results else ""
        return f"{head}{self.module}.{self.fn}({rhs})"


@dataclass
class PlanNode:
    """One logical-plan operator (scan, where, aggregate, ...).

    Forms a tree via ``children``; compiled MAL instructions point back at
    their node through :attr:`Instr.node`, so runtime opcode timings can
    be re-aggregated onto the operator that asked for them.
    """

    node_id: int
    label: str
    parent: Optional[int] = None
    children: List[int] = field(default_factory=list)


class Program:
    """A straight-line MAL program plus symbolic metadata.

    ``inputs`` names the free variables the caller must provide (for
    factories these are bound baskets); ``output`` names the variable whose
    value is the program's result (usually a :class:`ResultSet`).
    """

    def __init__(
        self,
        name: str = "main",
        inputs: Optional[Sequence[str]] = None,
        output: Optional[str] = None,
    ):
        self.name = name
        self.instructions: List[Instr] = []
        self.inputs: List[str] = list(inputs or [])
        self.output = output
        self._counter = 0
        # logical-plan annotation layer (EXPLAIN ANALYZE): node registry,
        # the open-node stack driving emit() tagging, and the runtime
        # stats the interpreter flushes back ({node_id: [calls, s, rows]})
        self.nodes: Dict[int, PlanNode] = {}
        self.plan_root: Optional[int] = None
        self._node_stack: List[int] = []
        self._node_counter = 0
        self.node_stats: Dict[Optional[int], List[float]] = {}

    def fresh(self, prefix: str = "v") -> str:
        """Allocate a fresh variable name."""
        self._counter += 1
        return f"{prefix}{self._counter}"

    # ------------------------------------------------------------------
    # logical-plan nodes (EXPLAIN ANALYZE)
    # ------------------------------------------------------------------
    def begin_node(self, label: str) -> int:
        """Open a plan node; instructions emitted until the matching
        :meth:`end_node` are tagged with it.  Nested opens build the
        operator tree."""
        self._node_counter += 1
        node_id = self._node_counter
        parent = self._node_stack[-1] if self._node_stack else None
        node = PlanNode(node_id, label, parent=parent)
        self.nodes[node_id] = node
        if parent is not None:
            self.nodes[parent].children.append(node_id)
        elif self.plan_root is None:
            self.plan_root = node_id
        self._node_stack.append(node_id)
        return node_id

    def end_node(self) -> None:
        if not self._node_stack:
            raise MalError("end_node() without a matching begin_node()")
        self._node_stack.pop()

    def node(self, label: str) -> "_NodeScope":
        """``with program.node("where"): ...`` — scoped begin/end."""
        return _NodeScope(self, label)

    def current_node(self) -> Optional[int]:
        return self._node_stack[-1] if self._node_stack else None

    def emit(
        self,
        module: str,
        fn: str,
        args: Sequence[Arg],
        results: Union[int, Sequence[str]] = 1,
        prefix: str = "v",
    ) -> Union[str, Tuple[str, ...]]:
        """Append an instruction, auto-naming results.

        ``results`` is either a count (fresh names are allocated) or explicit
        names.  Returns the single name or the tuple of names.
        """
        if isinstance(results, int):
            names = tuple(self.fresh(prefix) for _ in range(results))
        else:
            names = tuple(results)
        self.instructions.append(
            Instr(names, module, fn, tuple(args), node=self.current_node())
        )
        if len(names) == 1:
            return names[0]
        return names

    def render(self) -> str:
        """The whole program as MAL-like text."""
        header = f"function {self.name}({', '.join(self.inputs)}):"
        body = "\n".join("    " + ins.render() for ins in self.instructions)
        footer = f"    return {self.output};" if self.output else ""
        return "\n".join(x for x in (header, body, footer) if x)

    def __len__(self) -> int:
        return len(self.instructions)

    def validate(self) -> None:
        """Check SSA-style def-before-use over the instruction list."""
        defined = set(self.inputs)
        for ins in self.instructions:
            for arg in ins.args:
                if isinstance(arg, Var) and arg.name not in defined:
                    raise MalError(
                        f"variable {arg.name!r} used before definition in "
                        f"{ins.render()}"
                    )
            defined.update(ins.results)
        if self.output and self.output not in defined:
            raise MalError(f"output variable {self.output!r} never defined")

    # ------------------------------------------------------------------
    # EXPLAIN ANALYZE rendering
    # ------------------------------------------------------------------
    def analyzed_seconds(self) -> float:
        """Total interpreter seconds attributed to plan nodes (or glue)."""
        return sum(slot[1] for slot in self.node_stats.values())

    def render_analyze(self) -> str:
        """The annotated plan tree: cumulative time, calls, and rows per
        operator, aggregated from interpreter opcode timings.

        Node times are *cumulative over activations* — a continuous query
        runs the same program on every firing, so EXPLAIN ANALYZE here
        answers "where has query Q spent its time so far", the streaming
        analogue of the one-shot variant.
        """
        lines = [f"continuous query {self.name}"]
        if self.plan_root is None:
            lines.append("  (no plan annotations)")
        else:
            self._render_node(self.plan_root, 1, lines)
        glue = self.node_stats.get(None)
        if glue is not None:
            lines.append(
                "  (glue) " + self._format_stats(glue)
            )
        total = self.analyzed_seconds()
        lines.append(f"total analyzed: {total * 1e3:.3f} ms")
        return "\n".join(lines)

    def _render_node(self, node_id: int, depth: int, lines: List[str]) -> None:
        node = self.nodes[node_id]
        stats = self.node_stats.get(node_id)
        suffix = (
            "  " + self._format_stats(stats)
            if stats is not None
            else "  (never executed)"
        )
        lines.append("  " * depth + node.label + suffix)
        for child in node.children:
            self._render_node(child, depth + 1, lines)

    @staticmethod
    def _format_stats(slot: List[float]) -> str:
        calls, seconds, rows = slot
        return (
            f"[time={seconds * 1e3:.3f} ms, calls={int(calls)}, "
            f"rows={int(rows)}]"
        )


class _NodeScope:
    """Context manager pairing ``begin_node``/``end_node``."""

    __slots__ = ("_program", "_label", "_node_id")

    def __init__(self, program: Program, label: str):
        self._program = program
        self._label = label

    def __enter__(self) -> int:
        self._node_id = self._program.begin_node(self._label)
        return self._node_id

    def __exit__(self, *exc: Any) -> None:
        self._program.end_node()


class ResultSet:
    """A named, aligned collection of result columns.

    The shape every query evaluation produces: column names plus BATs of
    equal length.  Also what factories append to output baskets and what
    emitters serialize to clients.
    """

    def __init__(self, names: Sequence[str], bats: Sequence[BAT]):
        if len(names) != len(bats):
            raise MalError("result set names/columns arity mismatch")
        counts = {b.count for b in bats}
        if len(counts) > 1:
            raise MalError(f"result set columns differ in length: {counts}")
        self.names = list(names)
        self.bats = list(bats)

    @property
    def count(self) -> int:
        return self.bats[0].count if self.bats else 0

    def __len__(self) -> int:
        return self.count

    def column(self, name: str) -> BAT:
        try:
            return self.bats[self.names.index(name)]
        except ValueError:
            raise MalError(f"result has no column {name!r}") from None

    def rows(self) -> List[Tuple[Any, ...]]:
        """Materialize as python tuples (NULL → None)."""
        cols = [
            [python_value(b.atom, v) for v in b.tail] for b in self.bats
        ]
        return list(zip(*cols)) if cols and self.count else []

    def atoms(self) -> List[AtomType]:
        return [b.atom for b in self.bats]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultSet({self.names}, rows={self.count})"
