"""MAL — the kernel's assembly language.

MonetDB executes plans written in MAL, a virtual-machine assembly where each
instruction wraps one optimized relational primitive.  We reproduce the same
shape: a :class:`Program` is a straight-line SSA-ish list of
:class:`Instr` uctions, each calling ``module.function`` on variables and
constants and binding (possibly several) result variables.

Control flow (Algorithm 1's ``while true`` / ``suspend``) deliberately lives
*outside* MAL, in the factory shell (:mod:`repro.core.factory`): the paper's
factories are "ordinary functions whose execution state is saved between
calls", and the saved state here is the basket read-cursor plus the python
generator's frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import MalError
from .bat import BAT
from .types import AtomType, python_value

__all__ = ["Var", "Const", "Instr", "Program", "ResultSet"]


@dataclass(frozen=True)
class Var:
    """Reference to a MAL variable by name."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Const:
    """A literal argument embedded in an instruction."""

    value: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


Arg = Union[Var, Const]


@dataclass(frozen=True)
class Instr:
    """One MAL instruction: ``results := module.fn(args)``."""

    results: Tuple[str, ...]
    module: str
    fn: str
    args: Tuple[Arg, ...]

    def render(self) -> str:
        """Human-readable MAL-like text (used by EXPLAIN and tests)."""
        lhs = ", ".join(self.results)
        rhs = ", ".join(repr(a) for a in self.args)
        head = f"{lhs} := " if self.results else ""
        return f"{head}{self.module}.{self.fn}({rhs})"


class Program:
    """A straight-line MAL program plus symbolic metadata.

    ``inputs`` names the free variables the caller must provide (for
    factories these are bound baskets); ``output`` names the variable whose
    value is the program's result (usually a :class:`ResultSet`).
    """

    def __init__(
        self,
        name: str = "main",
        inputs: Optional[Sequence[str]] = None,
        output: Optional[str] = None,
    ):
        self.name = name
        self.instructions: List[Instr] = []
        self.inputs: List[str] = list(inputs or [])
        self.output = output
        self._counter = 0

    def fresh(self, prefix: str = "v") -> str:
        """Allocate a fresh variable name."""
        self._counter += 1
        return f"{prefix}{self._counter}"

    def emit(
        self,
        module: str,
        fn: str,
        args: Sequence[Arg],
        results: Union[int, Sequence[str]] = 1,
        prefix: str = "v",
    ) -> Union[str, Tuple[str, ...]]:
        """Append an instruction, auto-naming results.

        ``results`` is either a count (fresh names are allocated) or explicit
        names.  Returns the single name or the tuple of names.
        """
        if isinstance(results, int):
            names = tuple(self.fresh(prefix) for _ in range(results))
        else:
            names = tuple(results)
        self.instructions.append(Instr(names, module, fn, tuple(args)))
        if len(names) == 1:
            return names[0]
        return names

    def render(self) -> str:
        """The whole program as MAL-like text."""
        header = f"function {self.name}({', '.join(self.inputs)}):"
        body = "\n".join("    " + ins.render() for ins in self.instructions)
        footer = f"    return {self.output};" if self.output else ""
        return "\n".join(x for x in (header, body, footer) if x)

    def __len__(self) -> int:
        return len(self.instructions)

    def validate(self) -> None:
        """Check SSA-style def-before-use over the instruction list."""
        defined = set(self.inputs)
        for ins in self.instructions:
            for arg in ins.args:
                if isinstance(arg, Var) and arg.name not in defined:
                    raise MalError(
                        f"variable {arg.name!r} used before definition in "
                        f"{ins.render()}"
                    )
            defined.update(ins.results)
        if self.output and self.output not in defined:
            raise MalError(f"output variable {self.output!r} never defined")


class ResultSet:
    """A named, aligned collection of result columns.

    The shape every query evaluation produces: column names plus BATs of
    equal length.  Also what factories append to output baskets and what
    emitters serialize to clients.
    """

    def __init__(self, names: Sequence[str], bats: Sequence[BAT]):
        if len(names) != len(bats):
            raise MalError("result set names/columns arity mismatch")
        counts = {b.count for b in bats}
        if len(counts) > 1:
            raise MalError(f"result set columns differ in length: {counts}")
        self.names = list(names)
        self.bats = list(bats)

    @property
    def count(self) -> int:
        return self.bats[0].count if self.bats else 0

    def __len__(self) -> int:
        return self.count

    def column(self, name: str) -> BAT:
        try:
            return self.bats[self.names.index(name)]
        except ValueError:
            raise MalError(f"result has no column {name!r}") from None

    def rows(self) -> List[Tuple[Any, ...]]:
        """Materialize as python tuples (NULL → None)."""
        cols = [
            [python_value(b.atom, v) for v in b.tail] for b in self.bats
        ]
        return list(zip(*cols)) if cols and self.count else []

    def atoms(self) -> List[AtomType]:
        return [b.atom for b in self.bats]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultSet({self.names}, rows={self.count})"
