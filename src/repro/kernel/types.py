"""Atom types of the column-store kernel.

The kernel mirrors MonetDB's atom-type design: every column (BAT tail) is a
homogeneously typed array of *atoms*.  The supported atoms are:

========= =====================  =============================
atom       python / numpy dtype   NULL representation
========= =====================  =============================
``OID``    ``int64``              ``2**63 - 1`` (``OID_NIL``)
``BOOL``   ``int8`` (0/1)         ``-1``
``INT``    ``int32``              ``-2**31`` (``INT_NIL``)
``LNG``    ``int64``              ``-2**63`` (``LNG_NIL``)
``DBL``    ``float64``            ``nan``
``STR``    object (``str``)       ``None``
``TIMESTAMP`` ``float64`` seconds ``nan``
========= =====================  =============================

NULLs follow MonetDB's convention of in-domain sentinel values rather than a
separate validity bitmap; :func:`is_nil` and :func:`nil_mask` centralize the
sentinel logic so operators never hand-roll comparisons.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Optional

import numpy as np

from ..errors import TypeMismatchError

__all__ = [
    "AtomType",
    "OID_NIL",
    "INT_NIL",
    "LNG_NIL",
    "BOOL_NIL",
    "nil_value",
    "is_nil",
    "nil_mask",
    "numpy_dtype",
    "coerce_scalar",
    "common_type",
    "python_value",
    "parse_atom",
]


class AtomType(enum.Enum):
    """Enumeration of kernel atom types."""

    OID = "oid"
    BOOL = "bool"
    INT = "int"
    LNG = "lng"
    DBL = "dbl"
    STR = "str"
    TIMESTAMP = "timestamp"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AtomType.{self.name}"

    @property
    def is_numeric(self) -> bool:
        """Whether arithmetic is defined on this atom type."""
        return self in _NUMERIC

    @property
    def is_integral(self) -> bool:
        return self in (AtomType.INT, AtomType.LNG, AtomType.OID)


_NUMERIC = {
    AtomType.INT,
    AtomType.LNG,
    AtomType.DBL,
    AtomType.OID,
    AtomType.TIMESTAMP,
}

OID_NIL = np.int64(2**63 - 1)
LNG_NIL = np.int64(-(2**63))
INT_NIL = np.int32(-(2**31))
BOOL_NIL = np.int8(-1)

_DTYPES = {
    AtomType.OID: np.dtype(np.int64),
    AtomType.BOOL: np.dtype(np.int8),
    AtomType.INT: np.dtype(np.int32),
    AtomType.LNG: np.dtype(np.int64),
    AtomType.DBL: np.dtype(np.float64),
    AtomType.STR: np.dtype(object),
    AtomType.TIMESTAMP: np.dtype(np.float64),
}

_NILS = {
    AtomType.OID: OID_NIL,
    AtomType.BOOL: BOOL_NIL,
    AtomType.INT: INT_NIL,
    AtomType.LNG: LNG_NIL,
    AtomType.DBL: float("nan"),
    AtomType.STR: None,
    AtomType.TIMESTAMP: float("nan"),
}

# Widening lattice used by arithmetic and comparison type resolution.
_RANK = {
    AtomType.BOOL: 0,
    AtomType.INT: 1,
    AtomType.OID: 2,
    AtomType.LNG: 2,
    AtomType.TIMESTAMP: 3,
    AtomType.DBL: 3,
}


def numpy_dtype(atom: AtomType) -> np.dtype:
    """Return the numpy dtype used to store tails of this atom type."""
    return _DTYPES[atom]


def nil_value(atom: AtomType) -> Any:
    """Return the NULL sentinel for ``atom``."""
    return _NILS[atom]


def is_nil(atom: AtomType, value: Any) -> bool:
    """True when ``value`` is the NULL sentinel of ``atom``."""
    if value is None:
        return True
    if atom is AtomType.STR:
        return value is None
    if atom in (AtomType.DBL, AtomType.TIMESTAMP):
        try:
            return math.isnan(value)
        except TypeError:
            return False
    try:
        return int(value) == int(_NILS[atom])
    except (TypeError, ValueError):
        return False


def nil_mask(atom: AtomType, values: np.ndarray) -> np.ndarray:
    """Boolean mask of NULL positions in a tail array of type ``atom``."""
    if atom is AtomType.STR:
        return np.fromiter(
            (v is None for v in values), dtype=bool, count=len(values)
        )
    if atom in (AtomType.DBL, AtomType.TIMESTAMP):
        return np.isnan(values)
    return values == _NILS[atom]


def common_type(left: AtomType, right: AtomType) -> AtomType:
    """Resolve the result atom type for a binary numeric operation.

    Raises :class:`TypeMismatchError` when the atoms cannot be combined
    (e.g. ``STR`` with ``INT``).
    """
    if left is right:
        return left
    if left is AtomType.STR or right is AtomType.STR:
        raise TypeMismatchError(
            f"cannot combine {left.value} with {right.value}"
        )
    rank_l, rank_r = _RANK[left], _RANK[right]
    winner = left if rank_l >= rank_r else right
    # OID/LNG tie and TIMESTAMP/DBL tie: prefer the plain numeric type.
    if {left, right} == {AtomType.OID, AtomType.LNG}:
        return AtomType.LNG
    if {left, right} == {AtomType.TIMESTAMP, AtomType.DBL}:
        return AtomType.DBL
    if winner in (AtomType.OID, AtomType.TIMESTAMP) and rank_l != rank_r:
        return winner
    return winner


def coerce_scalar(atom: AtomType, value: Any) -> Any:
    """Coerce a python scalar to the storage representation of ``atom``.

    ``None`` always maps to the type's NULL sentinel.  Raises
    :class:`TypeMismatchError` for values outside the atom's domain.
    """
    if value is None or is_nil(atom, value):
        return _NILS[atom]
    try:
        if atom is AtomType.STR:
            if not isinstance(value, str):
                return str(value)
            return value
        if atom is AtomType.BOOL:
            if isinstance(value, bool):
                return np.int8(1 if value else 0)
            iv = int(value)
            if iv not in (-1, 0, 1):
                raise ValueError(value)
            return np.int8(iv)
        if atom in (AtomType.DBL, AtomType.TIMESTAMP):
            return float(value)
        if atom is AtomType.INT:
            iv = int(value)
            if not (-(2**31) < iv < 2**31):
                raise ValueError(value)
            return np.int32(iv)
        # OID / LNG
        return np.int64(int(value))
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {atom.value}"
        ) from exc


def python_value(atom: AtomType, value: Any) -> Optional[Any]:
    """Convert a storage atom back to a plain python value (NULL → None)."""
    if is_nil(atom, value):
        return None
    if atom is AtomType.STR:
        return value
    if atom is AtomType.BOOL:
        return bool(value)
    if atom in (AtomType.DBL, AtomType.TIMESTAMP):
        return float(value)
    return int(value)


def parse_atom(atom: AtomType, text: str) -> Any:
    """Parse the textual flat-tuple representation of one field.

    Used by receptors: the DataCell interchange format is textual flat
    relational tuples.  Empty strings and the literal ``null`` map to NULL.
    """
    stripped = text.strip()
    if stripped == "" or stripped.lower() == "null":
        return _NILS[atom]
    if atom is AtomType.STR:
        return stripped
    if atom is AtomType.BOOL:
        low = stripped.lower()
        if low in ("true", "t", "1"):
            return np.int8(1)
        if low in ("false", "f", "0"):
            return np.int8(0)
        raise TypeMismatchError(f"bad bool literal {text!r}")
    if atom in (AtomType.DBL, AtomType.TIMESTAMP):
        try:
            return float(stripped)
        except ValueError as exc:
            raise TypeMismatchError(f"bad {atom.value} literal {text!r}") from exc
    try:
        return coerce_scalar(atom, int(stripped))
    except ValueError as exc:
        raise TypeMismatchError(f"bad {atom.value} literal {text!r}") from exc
