"""Grouping primitives (``group.group`` / ``group.subgroup``).

Grouping maps each tuple to a dense group id.  The result triple mirrors
MonetDB:

``groups``
    an ``oid`` BAT aligned with the input, tail = group id of each tuple;
``extents``
    for each group id, the position of its first/representative tuple;
``ngroups``
    number of distinct groups.

Multi-column grouping refines an existing grouping with
:func:`subgroup`, exactly how the MAL plans chain ``group.subgroup`` calls.
NULL is a regular group key (SQL GROUP BY semantics: NULLs group together).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .bat import BAT
from .candidates import resolve_positions
from .types import AtomType

__all__ = ["group", "subgroup", "distinct_positions"]


def _group_keys(bat: BAT, positions: np.ndarray):
    tail = bat.tail[positions]
    if bat.atom is AtomType.STR:
        return [("\0NULL\0" if v is None else v) for v in tail]
    nil = bat.nil_positions()[positions]
    # Use a float view so NULL sentinels hash consistently; replace NaN.
    keys = tail.astype(object)
    for idx in np.flatnonzero(nil):
        keys[idx] = "\0NULL\0"
    return list(keys)


def group(
    bat: BAT, candidates: Optional[np.ndarray] = None
) -> Tuple[BAT, np.ndarray, int]:
    """Group the (candidate-restricted) tuples of ``bat`` by tail value.

    Returns ``(groups, extents, ngroups)`` where ``groups`` is an OID BAT
    aligned with the candidate order and ``extents[g]`` is the 0-based
    candidate-order position of group ``g``'s first tuple.
    """
    positions = resolve_positions(bat, candidates)
    keys = _group_keys(bat, positions)
    mapping = {}
    gids = np.empty(len(positions), dtype=np.int64)
    extents = []
    for i, key in enumerate(keys):
        gid = mapping.get(key)
        if gid is None:
            gid = len(mapping)
            mapping[key] = gid
            extents.append(i)
        gids[i] = gid
    groups = BAT(AtomType.OID, hseqbase=0, capacity=max(len(gids), 1))
    groups.append_array(gids)
    return groups, np.asarray(extents, dtype=np.int64), len(mapping)


def subgroup(
    bat: BAT,
    prev_groups: BAT,
    candidates: Optional[np.ndarray] = None,
) -> Tuple[BAT, np.ndarray, int]:
    """Refine ``prev_groups`` by additionally grouping on ``bat``'s tail.

    ``prev_groups`` must be aligned with the candidate order (it is the
    ``groups`` output of a previous :func:`group`/:func:`subgroup`).
    """
    positions = resolve_positions(bat, candidates)
    keys = _group_keys(bat, positions)
    prev = prev_groups.tail
    mapping = {}
    gids = np.empty(len(positions), dtype=np.int64)
    extents = []
    for i, key in enumerate(keys):
        composite = (int(prev[i]), key)
        gid = mapping.get(composite)
        if gid is None:
            gid = len(mapping)
            mapping[composite] = gid
            extents.append(i)
        gids[i] = gid
    groups = BAT(AtomType.OID, hseqbase=0, capacity=max(len(gids), 1))
    groups.append_array(gids)
    return groups, np.asarray(extents, dtype=np.int64), len(mapping)


def distinct_positions(
    bat: BAT, candidates: Optional[np.ndarray] = None
) -> np.ndarray:
    """Candidate-order positions of the first occurrence of each value."""
    _, extents, _ = group(bat, candidates)
    return extents
