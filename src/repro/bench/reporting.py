"""Result tables for the benchmark suite.

Benches print the same rows/series the paper's claims imply, in aligned
text tables, and append structured records to ``benchmarks/results.json``
so EXPERIMENTS.md can be regenerated from actual runs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["print_table", "record_result", "RESULTS_PATH"]

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))),
    "benchmarks",
    "results.json",
)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> None:
    """Print an aligned text table (the bench's paper-shaped output)."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rendered:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def record_result(experiment: str, payload: Dict[str, Any]) -> None:
    """Append one experiment record to benchmarks/results.json."""
    data: Dict[str, Any] = {}
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[experiment] = payload
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
