"""Result tables for the benchmark suite.

Benches print the same rows/series the paper's claims imply, in aligned
text tables, and append structured records to ``benchmarks/results.json``
so EXPERIMENTS.md can be regenerated from actual runs.

:func:`format_table` is the shared renderer; the observability dashboard
(:mod:`repro.obs.dashboard`) reuses it so engine stats and bench output
read the same.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Optional, Sequence

from ..testing import current_seed

__all__ = [
    "format_table",
    "print_table",
    "record_result",
    "record_bench_fig1",
    "record_bench_incremental",
    "record_bench_server",
    "RESULTS_PATH",
    "BENCH_FIG1_PATH",
    "BENCH_INCREMENTAL_PATH",
    "BENCH_SERVER_PATH",
]

RESULTS_PATH = str(
    pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results.json"
)

#: CI artifact at the repo root: the Figure-1 headline numbers plus the
#: telemetry-overhead measurement, one JSON object keyed by experiment.
BENCH_FIG1_PATH = str(
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_fig1.json"
)

#: CI artifact at the repo root: incremental (Z-set) execution vs
#: re-evaluation — the delta-window speedup series and join parity.
BENCH_INCREMENTAL_PATH = str(
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_incremental.json"
)

#: CI artifact at the repo root: the network front door's soak numbers
#: (N clients × M queries, insert→deliver latency percentiles, drops).
BENCH_SERVER_PATH = str(
    pathlib.Path(__file__).resolve().parents[3] / "BENCH_server.json"
)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> str:
    """Render an aligned text table (the bench's paper-shaped output)."""
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out = [f"== {title} ==", line, "-" * len(line)]
    for row in rendered:
        out.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(out)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
) -> None:
    print("\n" + format_table(title, headers, rows))


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4f}"
    return str(cell)


def record_result(
    experiment: str,
    payload: Dict[str, Any],
    path: Optional[str] = None,
) -> None:
    """Append one experiment record to ``benchmarks/results.json``.

    Write-temp-then-rename so concurrent benchmark runs never leave a
    torn/half-written file behind; last writer wins per experiment key.
    Every record is stamped with the run's base seed (see
    :mod:`repro.testing`) unless the payload already carries one, so a
    recorded figure names the seed that reproduces it.
    """
    payload = dict(payload)
    payload.setdefault("seed", current_seed())
    target = path or RESULTS_PATH
    data: Dict[str, Any] = {}
    if os.path.exists(target):
        try:
            with open(target) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    data[experiment] = payload
    os.makedirs(os.path.dirname(target), exist_ok=True)
    tmp = f"{target}.tmp.{os.getpid()}"
    with open(tmp, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
    os.replace(tmp, target)


def record_bench_fig1(experiment: str, payload: Dict[str, Any]) -> None:
    """Record one experiment into the repo-root ``BENCH_fig1.json``.

    Same merge-and-rename semantics as :func:`record_result`, different
    target: this file is the CI artifact carrying the headline series
    (Figure-1 throughput and the sys-streams overhead gate).
    """
    record_result(experiment, payload, path=BENCH_FIG1_PATH)


def record_bench_incremental(experiment: str, payload: Dict[str, Any]) -> None:
    """Record one experiment into the repo-root ``BENCH_incremental.json``.

    Same merge-and-rename semantics as :func:`record_result`; this file
    carries the incremental-vs-reeval headline series and is folded into
    ``docs/perf_trajectory.md`` by ``scripts/bench_trajectory.py``.
    """
    record_result(experiment, payload, path=BENCH_INCREMENTAL_PATH)


def record_bench_server(experiment: str, payload: Dict[str, Any]) -> None:
    """Record one experiment into the repo-root ``BENCH_server.json``.

    Same merge-and-rename semantics as :func:`record_result`; carries
    the server soak series (p99 insert→deliver latency, drop counts)
    folded into ``docs/perf_trajectory.md`` by
    ``scripts/bench_trajectory.py``.
    """
    record_result(experiment, payload, path=BENCH_SERVER_PATH)
