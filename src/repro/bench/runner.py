"""Shared machinery for the benchmark suite (see DESIGN.md experiment index).

Each ``benchmarks/bench_*.py`` regenerates one of the paper's measurable
claims.  The helpers here build the standard pipelines, drive workloads,
and collect both wall-clock and *work* metrics (tuples scanned, copies
made, summaries merged) so benches report the mechanism, not just the
symptom.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..adapters.channels import InMemoryChannel
from ..core.basket import Basket
from ..core.clock import LogicalClock
from ..core.emitter import CollectingClient, Emitter
from ..core.factory import ConsumeMode, Factory, InputBinding
from ..core.receptor import Receptor
from ..core.scheduler import Scheduler
from ..core.strategies import RangeQuery, SelectPlan
from ..kernel.types import AtomType
from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder

__all__ = [
    "PipelineFixture",
    "build_figure1_pipeline",
    "run_stream_through",
    "Measurement",
]


@dataclass
class Measurement:
    """One benchmark data point."""

    label: str
    wall_seconds: float
    tuples: int
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.tuples / self.wall_seconds if self.wall_seconds else 0.0


@dataclass
class PipelineFixture:
    """The Figure 1 chain, ready to drive."""

    clock: LogicalClock
    channel: InMemoryChannel
    receptor: Receptor
    factory: Factory
    emitter: Emitter
    client: CollectingClient
    scheduler: Scheduler
    input_basket: Basket
    output_basket: Basket
    metrics: MetricsRegistry


def build_figure1_pipeline(
    low: float = 100.0,
    high: float = 200.0,
    batch_size: int = 1024,
    metrics: Optional[MetricsRegistry] = None,
    spans: Optional[SpanRecorder] = None,
) -> PipelineFixture:
    """Receptor -> B1 -> select factory -> B2 -> emitter.

    Every component shares one private registry so a bench can read the
    pipeline's true counters instead of re-deriving them; pass
    ``MetricsRegistry(enabled=False)`` to measure the no-op overhead.
    Pass a :class:`SpanRecorder` to measure causal-tracing overhead at a
    given sampling rate.
    """
    clock = LogicalClock()
    metrics = metrics if metrics is not None else MetricsRegistry()
    b1 = Basket("b1", [("v", AtomType.INT)], clock, metrics=metrics,
                tracer=spans)
    b2 = Basket("b2", [("v", AtomType.INT)], clock, metrics=metrics,
                tracer=spans)
    channel = InMemoryChannel("stream")
    receptor = Receptor(
        "r", channel, [b1], batch_size=batch_size, metrics=metrics,
        tracer=spans,
    )
    plan = SelectPlan(RangeQuery("q", "v", low, high), "b1", "b2")
    factory = Factory(
        "q", plan, [InputBinding(b1, ConsumeMode.ALL)], [b2],
        metrics=metrics, tracer=spans,
    )
    client = CollectingClient()
    emitter = Emitter("e", b2, metrics=metrics, tracer=spans)
    emitter.subscribe(client)
    scheduler = Scheduler(metrics=metrics)
    for transition in (receptor, factory, emitter):
        scheduler.register(transition)
    return PipelineFixture(
        clock, channel, receptor, factory, emitter, client, scheduler,
        b1, b2, metrics,
    )


def run_stream_through(
    fixture: PipelineFixture,
    rows: Sequence[Tuple],
    batch_size: int,
) -> Measurement:
    """Push rows through the pipeline in batches; drain after each batch."""
    started = time.perf_counter()
    for i in range(0, len(rows), batch_size):
        for row in rows[i : i + batch_size]:
            fixture.channel.push(row)
        fixture.scheduler.run_until_quiescent()
    elapsed = time.perf_counter() - started
    delivered = fixture.metrics.value(
        "datacell_emitter_delivered_total", ("e",)
    )
    if delivered is None:  # registry disabled: fall back to the client
        delivered = float(len(fixture.client.rows))
    return Measurement(
        label=f"batch={batch_size}",
        wall_seconds=elapsed,
        tuples=len(rows),
        extra={"delivered": delivered},
    )
