"""Regenerate the EXPERIMENTS.md measured-results tables.

``python -m repro.bench.summary`` reads ``benchmarks/results.json`` (as
written by the last ``pytest benchmarks/ --benchmark-only`` run) and
prints one markdown table per experiment, ready to paste into
EXPERIMENTS.md.  Keeping the document regenerable means the recorded
numbers always match an actual run.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

from .reporting import RESULTS_PATH

__all__ = ["load_results", "render_markdown"]


def load_results(path: str = RESULTS_PATH) -> Dict[str, Any]:
    with open(path) as handle:
        return json.load(handle)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, list):
        return " ".join(str(v) for v in value)
    return str(value)


def _series_table(series: List[Dict[str, Any]]) -> List[str]:
    if not series:
        return []
    keys = list(series[0].keys())
    lines = [
        "| " + " | ".join(keys) + " |",
        "|" + "|".join("---" for _ in keys) + "|",
    ]
    for row in series:
        lines.append(
            "| " + " | ".join(_fmt(row.get(k)) for k in keys) + " |"
        )
    return lines


def render_markdown(results: Dict[str, Any]) -> str:
    out: List[str] = []
    for experiment in sorted(results):
        payload = results[experiment]
        out.append(f"### {experiment} — {payload.get('claim', '')}")
        out.append("")
        scalars = {
            k: v
            for k, v in payload.items()
            if k not in ("claim", "series") and not isinstance(v, (list, dict))
        }
        for key, value in scalars.items():
            out.append(f"* {key}: {_fmt(value)}")
        if scalars:
            out.append("")
        series = payload.get("series")
        if isinstance(series, list):
            out.extend(_series_table(series))
            out.append("")
    return "\n".join(out)


def main() -> int:
    try:
        results = load_results()
    except FileNotFoundError:
        print(
            "no benchmarks/results.json — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 1
    print(render_markdown(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
