"""Benchmark-harness helpers shared by benchmarks/bench_*.py."""

from .reporting import (
    format_table,
    print_table,
    record_bench_fig1,
    record_bench_incremental,
    record_bench_server,
    record_result,
)
from .runner import (
    Measurement,
    PipelineFixture,
    build_figure1_pipeline,
    run_stream_through,
)

__all__ = [
    "Measurement",
    "PipelineFixture",
    "build_figure1_pipeline",
    "run_stream_through",
    "format_table",
    "print_table",
    "record_bench_fig1",
    "record_bench_incremental",
    "record_bench_server",
    "record_result",
]
