"""Exception hierarchy for the repro (DataCell) library.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch one base class.  Subsystems raise the most specific
subclass available; the kernel never raises bare ``ValueError`` for user
input that reached it through the public API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class KernelError(ReproError):
    """Base class for column-store kernel errors."""


class TypeMismatchError(KernelError):
    """An operator received BATs or scalars of incompatible atom types."""


class AlignmentError(KernelError):
    """Two BATs that must be tuple-order aligned are not."""


class CatalogError(ReproError):
    """Schema-level failure: unknown table/column, duplicate definition."""


class MalError(ReproError):
    """A MAL program is malformed or failed during interpretation."""


class SqlError(ReproError):
    """Base class for errors in the SQL front-end."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(SqlError):
    """Name resolution or type checking of a parsed query failed."""


class DataCellError(ReproError):
    """Base class for stream-engine (core) errors."""


class BasketError(DataCellError):
    """Illegal basket operation (schema mismatch, double registration...)."""


class SchedulerError(DataCellError):
    """The scheduler was driven into an illegal state."""


class AdapterError(ReproError):
    """A receptor/emitter adapter failed (bad event text, channel closed)."""


class ServerError(DataCellError):
    """Network front-door failure (session violation, bad command...)."""


class ProtocolError(ServerError):
    """A wire frame violated the repro.server protocol (bad CRC, bad
    opcode, malformed metadata or column payload)."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/tracing subsystem (bad labels, bad buckets)."""


class DurabilityError(DataCellError):
    """WAL/checkpoint/recovery failure (corrupt frame, bad manifest...)."""


class LinearRoadError(ReproError):
    """Linear Road generator/validator failure."""
