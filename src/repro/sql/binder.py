"""Name resolution and type checking helpers for the SQL compiler.

The central structure is :class:`Relation`: the compiler's view of "the
current intermediate table" — an ordered set of columns, each backed by a
MAL variable holding a dense-headed BAT, with the qualifier (source alias)
and atom type needed to resolve references and infer result types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import BindError
from ..kernel.types import AtomType
from .ast_nodes import ColumnRef

__all__ = ["type_name_to_atom", "BoundColumn", "Relation"]

_TYPE_NAMES = {
    "int": AtomType.INT,
    "integer": AtomType.INT,
    "smallint": AtomType.INT,
    "bigint": AtomType.LNG,
    "lng": AtomType.LNG,
    "double": AtomType.DBL,
    "dbl": AtomType.DBL,
    "float": AtomType.DBL,
    "real": AtomType.DBL,
    "varchar": AtomType.STR,
    "text": AtomType.STR,
    "string": AtomType.STR,
    "str": AtomType.STR,
    "boolean": AtomType.BOOL,
    "bool": AtomType.BOOL,
    "timestamp": AtomType.TIMESTAMP,
}


def type_name_to_atom(name: str) -> AtomType:
    """Map an SQL type name to a kernel atom type."""
    try:
        return _TYPE_NAMES[name.lower()]
    except KeyError:
        raise BindError(f"unknown SQL type {name!r}") from None


@dataclass
class BoundColumn:
    """One column of a :class:`Relation`."""

    qualifier: Optional[str]  # source alias (lower-cased), None after aggregation
    name: str  # column name (lower-cased)
    var: str  # MAL variable holding the column BAT
    atom: AtomType
    hidden: bool = False  # excluded from * expansion (e.g. dc_time)

    @property
    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


class Relation:
    """An ordered collection of bound columns with SQL resolution rules."""

    def __init__(self, columns: Optional[List[BoundColumn]] = None):
        self.columns: List[BoundColumn] = list(columns or [])

    def add(self, column: BoundColumn) -> None:
        self.columns.append(column)

    def extend(self, other: "Relation") -> None:
        self.columns.extend(other.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def visible(self) -> List[BoundColumn]:
        return [c for c in self.columns if not c.hidden]

    def first_var(self) -> str:
        """Any column variable — used as alignment anchor for constants."""
        if not self.columns:
            raise BindError("empty relation has no columns")
        return self.columns[0].var

    def resolve(self, ref: ColumnRef) -> BoundColumn:
        """Resolve a (possibly qualified) column reference.

        Raises :class:`BindError` for unknown or ambiguous names.
        """
        name = ref.name.lower()
        qualifier = ref.table.lower() if ref.table else None
        matches = [
            c
            for c in self.columns
            if c.name == name
            and (qualifier is None or c.qualifier == qualifier)
        ]
        if not matches:
            raise BindError(f"unknown column {ref.display()!r}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column {ref.display()!r}")
        return matches[0]

    def columns_of(self, qualifier: str) -> List[BoundColumn]:
        """Visible columns belonging to one source alias (for ``alias.*``)."""
        out = [
            c
            for c in self.visible()
            if c.qualifier == qualifier.lower()
        ]
        if not out:
            raise BindError(f"unknown source alias {qualifier!r} in *")
        return out

    def remap(self, mapping: Dict[str, str]) -> "Relation":
        """A copy with each column's var replaced via ``mapping[var]``."""
        return Relation(
            [
                BoundColumn(
                    c.qualifier, c.name, mapping[c.var], c.atom, c.hidden
                )
                for c in self.columns
            ]
        )
