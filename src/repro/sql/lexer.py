"""SQL lexer for the DataCell dialect.

Tokenizes the SQL'03 subset plus the DataCell extensions: square brackets
delimit basket expressions, and ``CREATE BASKET`` / ``CREATE STREAM``
declare stream buffers.  Keywords are case-insensitive; identifiers keep
their case but compare case-insensitively downstream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List

from ..errors import SqlSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS"]


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    """
    select from where group by having order asc desc limit distinct as and
    or not null is in between like create table basket stream drop insert
    into values int integer bigint smallint double float real varchar text
    string boolean bool timestamp true false join inner left outer on cross
    case when then else end cast exists union all every with window slide
    """.split()
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),.;[]"


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based)."""

    type: TokenType
    value: Any
    line: int
    column: int

    @property
    def lowered(self) -> str:
        return str(self.value).lower()

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.lowered in names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.value}, {self.value!r})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: List[Token] = []
    line, col = 1, 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        # whitespace
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        # comments
        if text.startswith("--", i):
            while i < n and text[i] != "\n":
                i += 1
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                raise SqlSyntaxError("unterminated block comment", line, col)
            skipped = text[i : end + 2]
            line += skipped.count("\n")
            col = 1 if "\n" in skipped else col + len(skipped)
            i = end + 2
            continue
        # strings
        if ch == "'":
            value, consumed = _read_string(text, i, line, col)
            tokens.append(Token(TokenType.STRING, value, line, col))
            i += consumed
            col += consumed
            continue
        # numbers
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            value, consumed = _read_number(text, i, line, col)
            tokens.append(Token(TokenType.NUMBER, value, line, col))
            i += consumed
            col += consumed
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = (
                TokenType.KEYWORD
                if word.lower() in KEYWORDS
                else TokenType.IDENT
            )
            tokens.append(Token(kind, word, line, col))
            col += j - i
            i = j
            continue
        # quoted identifiers
        if ch == '"':
            j = text.find('"', i + 1)
            if j == -1:
                raise SqlSyntaxError("unterminated quoted identifier", line, col)
            tokens.append(Token(TokenType.IDENT, text[i + 1 : j], line, col))
            col += j + 1 - i
            i = j + 1
            continue
        # operators (longest match first)
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, line, col))
                i += len(op)
                col += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, line, col))
            i += 1
            col += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token(TokenType.EOF, None, line, col))
    return tokens


def _read_string(text: str, start: int, line: int, col: int):
    """Read a single-quoted string; '' escapes a quote."""
    i = start + 1
    out: List[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1 - start
        if ch == "\n":
            raise SqlSyntaxError("newline in string literal", line, col)
        out.append(ch)
        i += 1
    raise SqlSyntaxError("unterminated string literal", line, col)


def _read_number(text: str, start: int, line: int, col: int):
    """Read an int or float literal."""
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            if i + 1 < n and (text[i + 1].isdigit() or text[i + 1] in "+-"):
                seen_exp = True
                i += 2 if text[i + 1] in "+-" else 1
            else:
                break
        else:
            break
    raw = text[start:i]
    try:
        value: Any = float(raw) if (seen_dot or seen_exp) else int(raw)
    except ValueError as exc:
        raise SqlSyntaxError(f"bad numeric literal {raw!r}", line, col) from exc
    return value, i - start
