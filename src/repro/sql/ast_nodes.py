"""AST node definitions for the DataCell SQL dialect.

Plain dataclasses; the parser builds them, the binder annotates/validates,
and the compiler lowers them to MAL.  The DataCell extension is
:class:`BasketExpr` — a bracketed sub-query with consumption side effects;
a statement is *continuous* exactly when its FROM clause (transitively)
contains one (paper §2.6: "basket expressions may be part only of
continuous queries, which allows the system to distinguish between
continuous and normal/one-time queries").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = [
    "Expr",
    "Literal",
    "ColumnRef",
    "Star",
    "UnaryOp",
    "BinaryOp",
    "FuncCall",
    "Between",
    "InList",
    "IsNull",
    "Like",
    "CaseWhen",
    "SelectItem",
    "Source",
    "TableSource",
    "BasketExpr",
    "SubquerySource",
    "JoinSource",
    "OrderItem",
    "Select",
    "Statement",
    "UnionSelect",
    "CreateTable",
    "CreateBasket",
    "Insert",
    "Drop",
    "walk_sources",
    "contains_basket_expr",
]


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of all expression nodes."""


@dataclass
class Literal(Expr):
    value: Any  # int, float, str, bool, or None


@dataclass
class ColumnRef(Expr):
    name: str
    table: Optional[str] = None  # qualifier (alias) if given

    def display(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expr):
    """``*`` or ``alias.*`` in a select list."""

    table: Optional[str] = None


@dataclass
class UnaryOp(Expr):
    op: str  # '-', 'not'
    operand: Expr


@dataclass
class BinaryOp(Expr):
    op: str  # arithmetic, comparison, 'and', 'or'
    left: Expr
    right: Expr


@dataclass
class FuncCall(Expr):
    name: str  # lower-cased
    args: List[Expr] = field(default_factory=list)
    star: bool = False  # count(*)
    distinct: bool = False


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: List[Expr] = field(default_factory=list)
    negated: bool = False


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class Like(Expr):
    """SQL LIKE: ``operand [NOT] LIKE pattern`` (% and _ wildcards)."""

    operand: Expr
    pattern: Expr
    negated: bool = False


@dataclass
class CaseWhen(Expr):
    whens: List[Tuple[Expr, Expr]] = field(default_factory=list)
    otherwise: Optional[Expr] = None


# ----------------------------------------------------------------------
# sources (FROM items)
# ----------------------------------------------------------------------
class Source:
    """Base class of FROM-clause items."""

    alias: Optional[str]


@dataclass
class TableSource(Source):
    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass
class BasketExpr(Source):
    """The DataCell basket expression: ``[select ...] as alias``.

    Tuples referenced by the inner query are removed from their basket
    during evaluation but remain accessible through the alias.
    """

    select: "Select"
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        if not self.alias:
            raise ValueError("basket expressions must be aliased")
        return self.alias.lower()


@dataclass
class SubquerySource(Source):
    select: "Select"
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        if not self.alias:
            raise ValueError("subqueries must be aliased")
        return self.alias.lower()


@dataclass
class JoinSource(Source):
    """``left JOIN right ON condition`` (inner) or CROSS JOIN (no cond)."""

    left: Source
    right: Source
    condition: Optional[Expr] = None
    kind: str = "inner"  # 'inner' | 'cross' | 'left'
    alias: Optional[str] = None


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select:
    items: List[SelectItem]
    sources: List[Source] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
    # DataCell extension (§3.1 made syntax): ``WINDOW n [SLIDE m]`` turns
    # a continuous aggregate into a count-based sliding-window query.
    window: Optional[float] = None
    window_slide: Optional[float] = None
    window_time: bool = False  # True: WINDOW n SECONDS (time-based)


class Statement:
    """Base class of top-level statements."""


@dataclass
class UnionSelect(Statement):
    """``select ... UNION [ALL] select ...`` (left-deep chains).

    ``left`` is a Select or another UnionSelect; ``right`` is a Select.
    """

    left: "Statement"
    right: Select
    all: bool = False


@dataclass
class CreateTable(Statement):
    name: str
    columns: List[Tuple[str, str]]  # (name, type name)


@dataclass
class CreateBasket(Statement):
    name: str
    columns: List[Tuple[str, str]]


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[List[str]]
    rows: List[List[Expr]]


@dataclass
class Drop(Statement):
    name: str


def walk_sources(source: Source):
    """Yield every leaf source under (and including) ``source``."""
    if isinstance(source, JoinSource):
        yield from walk_sources(source.left)
        yield from walk_sources(source.right)
    else:
        yield source


def contains_basket_expr(select: Select) -> bool:
    """True when the query is continuous (has a basket expression)."""
    for source in select.sources:
        for leaf in walk_sources(source):
            if isinstance(leaf, BasketExpr):
                return True
            if isinstance(leaf, SubquerySource) and contains_basket_expr(
                leaf.select
            ):
                return True
    return False

