"""MAL program optimizer.

MonetDB runs compiled plans through an optimizer pipeline; we reproduce
the passes that matter for the DataCell's plans:

``dead code elimination``
    instructions whose results are never used (transitively from the
    program output and the consumed-candidates variables) are dropped —
    star-expansion and hidden-column plumbing leave plenty behind;

``common subexpression elimination``
    structurally identical side-effect-free instructions reuse the first
    result — repeated ``sql.bind``/``projection`` chains collapse, which
    is the compiler-level analogue of the paper's "similarities at the
    query plan level" (§3);

``constant folding``
    ``batcalc`` comparisons between two constants collapse into constant
    booleans (a common artifact of generated queries).

The passes are pure: they return a new :class:`Program` and never touch
the input.  ``optimize`` wires them in the standard order and is safe for
factory plans — variables named in ``protected`` (e.g. consumed-candidate
variables) are treated as live roots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..kernel.mal import Arg, Const, Instr, Program, Var

__all__ = [
    "optimize",
    "eliminate_dead_code",
    "eliminate_common_subexpressions",
    "OptimizerReport",
]

# modules whose primitives have side effects or non-deterministic results:
# never deduplicated, never dropped
_EFFECTFUL_MODULES = frozenset(("basket",))


class OptimizerReport:
    """What the pipeline did (exposed via EXPLAIN and tests)."""

    def __init__(self) -> None:
        self.instructions_before = 0
        self.instructions_after = 0
        self.dce_removed = 0
        self.cse_merged = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptimizerReport({self.instructions_before} -> "
            f"{self.instructions_after}, dce={self.dce_removed}, "
            f"cse={self.cse_merged})"
        )


def _clone(program: Program, instructions: List[Instr]) -> Program:
    out = Program(
        name=program.name, inputs=list(program.inputs), output=program.output
    )
    out.instructions = list(instructions)
    out._counter = program._counter
    # carry the logical-plan annotation layer: instructions keep their
    # node back-pointers, so the optimized program must keep the tree
    out.nodes = dict(program.nodes)
    out.plan_root = program.plan_root
    out._node_counter = program._node_counter
    return out


def _arg_key(arg: Arg) -> str:
    if isinstance(arg, Var):
        return f"v:{arg.name}"
    return f"c:{arg.value!r}"


def eliminate_common_subexpressions(
    program: Program, protected: Sequence[str] = ()
) -> Tuple[Program, int]:
    """Merge structurally identical pure instructions.

    Returns ``(new_program, merged_count)``.  An instruction is merged
    when an earlier instruction with the same module.fn and the same
    (renamed) arguments exists; its results are rewritten to the earlier
    ones everywhere downstream.
    """
    rename: Dict[str, str] = {}
    seen: Dict[str, Tuple[str, ...]] = {}
    kept: List[Instr] = []
    merged = 0
    for ins in program.instructions:
        args = tuple(
            Var(rename.get(a.name, a.name)) if isinstance(a, Var) else a
            for a in ins.args
        )
        renamed = Instr(ins.results, ins.module, ins.fn, args, node=ins.node)
        if ins.module in _EFFECTFUL_MODULES:
            kept.append(renamed)
            continue
        key = (
            f"{ins.module}.{ins.fn}("
            + ",".join(_arg_key(a) for a in args)
            + ")"
        )
        prior = seen.get(key)
        if prior is not None and len(prior) == len(ins.results):
            for mine, theirs in zip(ins.results, prior):
                rename[mine] = theirs
            merged += 1
            continue
        seen[key] = renamed.results
        kept.append(renamed)
    # rewrite output / keep protected names stable: protected and output
    # vars that were merged away need a pass-through alias
    out_program = _clone(program, kept)
    roots = [program.output] if program.output else []
    roots += list(protected)
    for root in roots:
        if root in rename:
            out_program.instructions.append(
                Instr((root,), "language", "pass", (Var(rename[root]),))
            )
    return out_program, merged


def eliminate_dead_code(
    program: Program, protected: Sequence[str] = ()
) -> Tuple[Program, int]:
    """Drop instructions not reachable from the output/protected roots."""
    live: Set[str] = set(protected)
    if program.output:
        live.add(program.output)
    kept_reversed: List[Instr] = []
    removed = 0
    for ins in reversed(program.instructions):
        is_live = (
            ins.module in _EFFECTFUL_MODULES
            or any(r in live for r in ins.results)
        )
        if not is_live:
            removed += 1
            continue
        for arg in ins.args:
            if isinstance(arg, Var):
                live.add(arg.name)
        kept_reversed.append(ins)
    return _clone(program, list(reversed(kept_reversed))), removed


def fold_constants(program: Program) -> Tuple[Program, int]:
    """Evaluate batcalc comparisons/arithmetic over two constants.

    The compiler rarely emits these directly, but rewrites (and hand-built
    programs) do; folding keeps downstream DCE effective.  Only operations
    with no BAT operand are folded (a ``batcalc.const`` of the result
    cannot be formed without an alignment anchor, so we fold into
    ``language.pass`` of the scalar — callers treating the var as a BAT
    would have failed before the fold too).
    """
    import operator as _op

    fns = {
        "+": _op.add, "-": _op.sub, "*": _op.mul,
        "==": _op.eq, "!=": _op.ne,
        "<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge,
    }
    out: List[Instr] = []
    folded = 0
    for ins in program.instructions:
        if (
            ins.module == "batcalc"
            and ins.fn in fns
            and len(ins.args) == 2
            and all(isinstance(a, Const) for a in ins.args)
            and all(a.value is not None for a in ins.args)
        ):
            try:
                value = fns[ins.fn](ins.args[0].value, ins.args[1].value)
            except Exception:  # pragma: no cover - defensive
                out.append(ins)
                continue
            out.append(
                Instr(
                    ins.results, "language", "pass", (Const(value),),
                    node=ins.node,
                )
            )
            folded += 1
            continue
        out.append(ins)
    return _clone(program, out), folded


def optimize(
    program: Program,
    protected: Sequence[str] = (),
) -> Tuple[Program, OptimizerReport]:
    """Run the full pipeline: fold → CSE → DCE.

    ``protected`` names extra live roots (the consumed-candidates
    variables of continuous plans).
    """
    report = OptimizerReport()
    report.instructions_before = len(program)
    folded, _ = fold_constants(program)
    merged_prog, merged = eliminate_common_subexpressions(folded, protected)
    report.cse_merged = merged
    final, removed = eliminate_dead_code(merged_prog, protected)
    report.dce_removed = removed
    report.instructions_after = len(final)
    final.validate()
    return final, report
