"""Recursive-descent parser for the DataCell SQL dialect.

Grammar (informal)::

    statement   := select | create | insert | drop
    create      := CREATE (TABLE | BASKET | STREAM) name '(' coldefs ')'
    insert      := INSERT INTO name ['(' names ')'] VALUES rowlist
    drop        := DROP (TABLE | BASKET | STREAM) name
    select      := SELECT [DISTINCT] items FROM sources [WHERE expr]
                   [GROUP BY exprs] [HAVING expr]
                   [ORDER BY order_items] [LIMIT n]
    source      := table [AS alias] | '[' select ']' AS alias
                 | '(' select ')' AS alias | source JOIN source ON expr
    expr        := or_expr with the usual precedence ladder; BETWEEN, IN,
                   IS [NOT] NULL, CASE WHEN, aggregate calls, ``*``

``CREATE STREAM`` is accepted as a synonym of ``CREATE BASKET``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import SqlSyntaxError
from .ast_nodes import (
    BasketExpr,
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateBasket,
    CreateTable,
    Drop,
    Expr,
    FuncCall,
    InList,
    Insert,
    IsNull,
    Like,
    JoinSource,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Source,
    Star,
    Statement,
    SubquerySource,
    TableSource,
    UnaryOp,
    UnionSelect,
)
from .lexer import Token, TokenType, tokenize

__all__ = ["parse_statement", "parse_select", "Parser"]

AGGREGATE_FUNCTIONS = frozenset(
    ("sum", "count", "avg", "min", "max")
)


def parse_statement(sql: str) -> Statement:
    """Parse one SQL statement (select, create, insert or drop)."""
    parser = Parser(sql)
    stmt = parser.statement()
    parser.expect_end()
    return stmt


def parse_select(sql: str) -> Select:
    """Parse a SELECT; raises if the text is a different statement."""
    stmt = parse_statement(sql)
    if not isinstance(stmt, Select):
        raise SqlSyntaxError("expected a SELECT statement")
    return stmt


class Parser:
    """Token-stream wrapper with the usual helpers."""

    def __init__(self, sql: str):
        self._tokens = tokenize(sql)
        self._pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> SqlSyntaxError:
        token = self._peek()
        return SqlSyntaxError(
            f"{message}, found {token.value!r}", token.line, token.column
        )

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._peek().is_keyword(*names):
            return self._advance()
        return None

    def _expect_keyword(self, *names: str) -> Token:
        token = self._accept_keyword(*names)
        if token is None:
            raise self._error(f"expected {'/'.join(names).upper()}")
        return token

    def _accept_punct(self, value: str) -> Optional[Token]:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == value:
            return self._advance()
        return None

    def _expect_punct(self, value: str) -> Token:
        token = self._accept_punct(value)
        if token is None:
            raise self._error(f"expected {value!r}")
        return token

    def _accept_operator(self, *values: str) -> Optional[Token]:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in values:
            return self._advance()
        return None

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            self._advance()
            return str(token.value)
        # many keywords double as identifiers in practice (e.g. a column
        # named "timestamp"); allow type-name keywords as identifiers
        if token.type is TokenType.KEYWORD and token.lowered in _SOFT_KEYWORDS:
            self._advance()
            return str(token.value)
        raise self._error("expected identifier")

    def _qualified_ident(self) -> str:
        """A possibly schema-qualified table name (``sys.metrics``).

        Dotted names are kept as one string — the catalog stores baskets
        under their full name, so the reserved ``sys.`` schema resolves
        like any user basket (no separate namespace object).
        """
        name = self._expect_ident()
        while self._accept_punct("."):
            name = f"{name}.{self._expect_ident()}"
        return name

    def expect_end(self) -> None:
        self._accept_punct(";")
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def statement(self) -> Statement:
        token = self._peek()
        if token.is_keyword("select"):
            stmt: Statement = self.select()
            while self._accept_keyword("union"):
                all_rows = bool(self._accept_keyword("all"))
                right = self.select()
                stmt = UnionSelect(stmt, right, all_rows)
            return stmt
        if token.is_keyword("create"):
            return self._create()
        if token.is_keyword("insert"):
            return self._insert()
        if token.is_keyword("drop"):
            return self._drop()
        raise self._error("expected SELECT, CREATE, INSERT or DROP")

    def _create(self) -> Statement:
        self._expect_keyword("create")
        kind = self._expect_keyword("table", "basket", "stream")
        name = self._qualified_ident()
        self._expect_punct("(")
        columns: List[Tuple[str, str]] = []
        while True:
            col = self._expect_ident()
            type_token = self._advance()
            if type_token.type not in (TokenType.KEYWORD, TokenType.IDENT):
                raise self._error("expected a type name")
            type_name = str(type_token.value).lower()
            if type_name == "varchar" and self._accept_punct("("):
                self._advance()  # length, ignored
                self._expect_punct(")")
            columns.append((col, type_name))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        if kind.lowered == "table":
            return CreateTable(name, columns)
        return CreateBasket(name, columns)

    def _insert(self) -> Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._qualified_ident()
        columns: Optional[List[str]] = None
        if self._accept_punct("("):
            columns = [self._expect_ident()]
            while self._accept_punct(","):
                columns.append(self._expect_ident())
            self._expect_punct(")")
        self._expect_keyword("values")
        rows: List[List[Expr]] = []
        while True:
            self._expect_punct("(")
            row = [self.expression()]
            while self._accept_punct(","):
                row.append(self.expression())
            self._expect_punct(")")
            rows.append(row)
            if not self._accept_punct(","):
                break
        return Insert(table, columns, rows)

    def _drop(self) -> Drop:
        self._expect_keyword("drop")
        self._expect_keyword("table", "basket", "stream")
        return Drop(self._qualified_ident())

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def select(self) -> Select:
        self._expect_keyword("select")
        distinct = bool(self._accept_keyword("distinct"))
        items = [self._select_item()]
        while self._accept_punct(","):
            items.append(self._select_item())
        self._expect_keyword("from")
        sources = [self._source()]
        while self._accept_punct(","):
            sources.append(self._source())
        where = None
        if self._accept_keyword("where"):
            where = self.expression()
        group_by: List[Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.expression())
            while self._accept_punct(","):
                group_by.append(self.expression())
        having = None
        if self._accept_keyword("having"):
            having = self.expression()
        order_by: List[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        limit = None
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER or not isinstance(
                token.value, int
            ):
                raise self._error("LIMIT expects an integer")
            self._advance()
            limit = int(token.value)
        window = window_slide = None
        window_time = False
        if self._accept_keyword("window"):
            window = self._expect_positive_number("WINDOW")
            window_time = self._accept_seconds()
            if self._accept_keyword("slide"):
                window_slide = self._expect_positive_number("SLIDE")
                if self._accept_seconds() and not window_time:
                    raise self._error(
                        "SLIDE unit must match the WINDOW unit"
                    )
        return Select(
            items=items,
            sources=sources,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            window=window,
            window_slide=window_slide,
            window_time=window_time,
        )

    def _expect_positive_number(self, context: str):
        token = self._peek()
        if (
            token.type is not TokenType.NUMBER
            or not isinstance(token.value, (int, float))
            or token.value <= 0
        ):
            raise self._error(f"{context} expects a positive number")
        self._advance()
        return token.value

    def _accept_seconds(self) -> bool:
        """Accept an optional SECONDS unit (time-based windows)."""
        token = self._peek()
        if token.type is TokenType.IDENT and token.lowered in (
            "seconds", "second", "secs", "sec", "s",
        ):
            self._advance()
            return True
        return False

    def _select_item(self) -> SelectItem:
        token = self._peek()
        # bare * or alias.*
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return SelectItem(Star())
        if (
            token.type is TokenType.IDENT
            and self._peek(1).type is TokenType.PUNCT
            and self._peek(1).value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            self._advance()
            self._advance()
            self._advance()
            return SelectItem(Star(table=str(token.value)))
        expr = self.expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().type is TokenType.IDENT:
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _order_item(self) -> OrderItem:
        expr = self.expression()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, descending)

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def _source(self) -> Source:
        source = self._source_primary()
        while True:
            if self._accept_keyword("cross"):
                self._expect_keyword("join")
                right = self._source_primary()
                source = JoinSource(source, right, None, kind="cross")
                continue
            kind = None
            if self._peek().is_keyword("join"):
                kind = "inner"
            elif self._peek().is_keyword("inner"):
                self._advance()
                kind = "inner"
            elif self._peek().is_keyword("left"):
                self._advance()
                self._accept_keyword("outer")
                kind = "left"
            if kind is None:
                return source
            self._expect_keyword("join")
            right = self._source_primary()
            self._expect_keyword("on")
            condition = self.expression()
            source = JoinSource(source, right, condition, kind=kind)

    def _source_primary(self) -> Source:
        # basket expression
        if self._accept_punct("["):
            inner = self.select()
            self._expect_punct("]")
            alias = self._source_alias(required=True)
            return BasketExpr(inner, alias)
        # parenthesized subquery
        if self._peek().type is TokenType.PUNCT and self._peek().value == "(":
            if self._peek(1).is_keyword("select"):
                self._advance()
                inner = self.select()
                self._expect_punct(")")
                alias = self._source_alias(required=True)
                return SubquerySource(inner, alias)
        name = self._qualified_ident()
        alias = self._source_alias(required=False)
        return TableSource(name, alias)

    def _source_alias(self, required: bool) -> Optional[str]:
        if self._accept_keyword("as"):
            return self._expect_ident()
        if self._peek().type is TokenType.IDENT:
            return self._expect_ident()
        if required:
            raise self._error("this source requires an alias (AS name)")
        return None

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    def expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            op = str(self._advance().value)
            op = {"=": "==", "<>": "!="}.get(op, op)
            return BinaryOp(op, left, self._additive())
        negated = False
        if token.is_keyword("not"):
            nxt = self._peek(1)
            if nxt.is_keyword("between", "in", "like"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("between"):
            self._advance()
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return Between(left, low, high, negated)
        if token.is_keyword("in"):
            self._advance()
            self._expect_punct("(")
            items = [self.expression()]
            while self._accept_punct(","):
                items.append(self.expression())
            self._expect_punct(")")
            return InList(left, items, negated)
        if token.is_keyword("like"):
            self._advance()
            pattern = self._additive()
            return Like(left, pattern, negated)
        if token.is_keyword("is"):
            self._advance()
            neg = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return IsNull(left, neg)
        return left

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self._accept_operator("+", "-")
            if token is None:
                return left
            left = BinaryOp(str(token.value), left, self._multiplicative())

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self._accept_operator("*", "/", "%")
            if token is None:
                return left
            left = BinaryOp(str(token.value), left, self._unary())

    def _unary(self) -> Expr:
        if self._accept_operator("-"):
            return UnaryOp("-", self._unary())
        if self._accept_operator("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(str(token.value))
        if token.is_keyword("null"):
            self._advance()
            return Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return Literal(False)
        if token.is_keyword("case"):
            return self._case()
        if token.is_keyword("cast"):
            return self._cast()
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            expr = self.expression()
            self._expect_punct(")")
            return expr
        # function call or column reference
        if token.type is TokenType.IDENT or (
            token.type is TokenType.KEYWORD and token.lowered in _SOFT_KEYWORDS
        ):
            name = self._expect_ident()
            if self._peek().type is TokenType.PUNCT and self._peek().value == "(":
                return self._func_call(name)
            if self._accept_punct("."):
                column = self._expect_ident()
                return ColumnRef(column, table=name)
            return ColumnRef(name)
        raise self._error("expected an expression")

    def _func_call(self, name: str) -> Expr:
        self._expect_punct("(")
        lowered = name.lower()
        if self._accept_operator("*"):
            self._expect_punct(")")
            if lowered != "count":
                raise self._error("only COUNT accepts *")
            return FuncCall(lowered, star=True)
        distinct = bool(self._accept_keyword("distinct"))
        args: List[Expr] = []
        if not (self._peek().type is TokenType.PUNCT and self._peek().value == ")"):
            args.append(self.expression())
            while self._accept_punct(","):
                args.append(self.expression())
        self._expect_punct(")")
        return FuncCall(lowered, args, distinct=distinct)

    def _case(self) -> Expr:
        self._expect_keyword("case")
        whens = []
        while self._accept_keyword("when"):
            cond = self.expression()
            self._expect_keyword("then")
            whens.append((cond, self.expression()))
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self.expression()
        self._expect_keyword("end")
        if not whens:
            raise self._error("CASE needs at least one WHEN")
        return CaseWhen(whens, otherwise)

    def _cast(self) -> Expr:
        self._expect_keyword("cast")
        self._expect_punct("(")
        expr = self.expression()
        self._expect_keyword("as")
        type_token = self._advance()
        type_name = str(type_token.value).lower()
        self._expect_punct(")")
        return FuncCall(f"cast_{type_name}", [expr])


_SOFT_KEYWORDS = frozenset(
    ("timestamp", "text", "string", "double", "float", "real", "window",
     "slide", "every", "all", "values", "basket")
)
