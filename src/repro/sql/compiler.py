"""SQL → MAL compiler.

Lowers a parsed :class:`~repro.sql.ast_nodes.Select` to a MAL
:class:`~repro.kernel.mal.Program`, following the classic column-store plan
shape: bind columns, derive candidate lists with selections, project, join
via oid pairs, group/aggregate, order, slice, build the result set.

Two entry points:

* :func:`compile_select` — one-time queries over catalog tables (and
  baskets read with table semantics);
* :func:`compile_continuous` — continuous queries containing basket
  expressions; produces a :class:`MalContinuousPlan` whose program takes
  basket snapshots as inputs and reports which snapshot positions the
  basket expression *consumed* (paper §2.6 side-effect semantics).

Invariant maintained throughout: every relation column variable holds a BAT
with a dense head starting at 0, so candidate lists, group extents and sort
permutations are interchangeable position sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BindError, SqlError
from ..kernel.catalog import Catalog
from ..kernel.interpreter import MalInterpreter
from ..kernel.mal import Const, Program, ResultSet, Var
from ..kernel.types import AtomType, common_type
from .ast_nodes import (
    BasketExpr,
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    IsNull,
    Like,
    JoinSource,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Source,
    Star,
    SubquerySource,
    TableSource,
    UnaryOp,
    UnionSelect,
)
from .binder import BoundColumn, Relation

__all__ = [
    "CompiledQuery",
    "compile_union",
    "MalContinuousPlan",
    "compile_select",
    "compile_continuous",
]

TIME_COLUMN = "dc_time"
AGGREGATES = {"sum": "sum", "count": "count", "avg": "avg", "min": "min",
              "max": "max"}


@dataclass
class BasketInput:
    """A basket read through a basket expression in a continuous query."""

    basket: str  # catalog basket name (lower-cased)
    alias: str  # the AS alias of the basket expression
    consumed_var: str  # program variable holding consumed snapshot positions
    result_constrained: bool = False  # inner LIMIT: re-fire while consuming


@dataclass
class CompiledQuery:
    """A compiled SELECT: the program plus its interface metadata."""

    program: Program
    output_names: List[str]
    output_atoms: List[AtomType]
    basket_inputs: List[BasketInput] = field(default_factory=list)

    @property
    def is_continuous(self) -> bool:
        return bool(self.basket_inputs)

    def verify(self, catalog, expected_output=None):
        """Run the static verifier over this plan; returns diagnostics.

        Convenience wrapper over
        :func:`repro.analysis.verifier.verify_continuous` (lazy import —
        the compiler itself never depends on the analysis package).
        """
        from ..analysis.verifier import verify_continuous

        return verify_continuous(self, catalog, expected_output)


class MalContinuousPlan:
    """A factory plan backed by a compiled MAL program.

    Each activation binds the current basket snapshots as program inputs,
    executes the program, and reports the consumed positions recorded by
    the basket expressions.
    """

    def __init__(
        self,
        compiled: CompiledQuery,
        interpreter: MalInterpreter,
        output_basket: str,
    ):
        self.compiled = compiled
        self.interpreter = interpreter
        self.output_basket = output_basket.lower()

    def run(self, snapshots):
        from ..core.factory import PlanOutput

        env: Dict[str, Any] = {}
        for binding in self.compiled.basket_inputs:
            snap = snapshots[binding.basket]
            for name, bat in zip(snap.names, snap.bats):
                env[f"{binding.alias}.{name}"] = bat
        final = self.interpreter.execute(self.compiled.program, env)
        result: ResultSet = final[self.compiled.program.output]
        consumed: Dict[str, np.ndarray] = {}
        for binding in self.compiled.basket_inputs:
            consumed[binding.basket] = np.asarray(
                final[binding.consumed_var], dtype=np.int64
            )
        output = PlanOutput(consumed=consumed)
        if result.count:
            output.results[self.output_basket] = result
        return output

    def describe(self) -> str:
        return self.compiled.program.render()

    # -- durability: a MAL plan re-binds fresh snapshots every
    # activation, so there is nothing to checkpoint or restore
    def export_state(self):
        return None

    def import_state(self, blob) -> None:
        if blob is not None:
            raise SqlError(
                "MalContinuousPlan is stateless but a checkpoint "
                "carried plan state"
            )


# ======================================================================
# compiler core
# ======================================================================
class _SelectCompiler:
    """Compiles one Select into instructions appended to a shared program."""

    def __init__(
        self,
        catalog: Catalog,
        program: Program,
        basket_inputs: List[BasketInput],
        allow_baskets: bool,
    ):
        self.catalog = catalog
        self.prog = program
        self.basket_inputs = basket_inputs
        self.allow_baskets = allow_baskets

    # ------------------------------------------------------------------
    # entry
    # ------------------------------------------------------------------
    def compile(self, select: Select) -> Tuple[Relation, List[str]]:
        """Compile; returns (output relation, output names).

        Each logical phase opens a :meth:`Program.node` scope, so every
        emitted instruction carries a back-pointer to the plan operator it
        implements — the EXPLAIN ANALYZE aggregation key.
        """
        with self.prog.node("from"):
            rel = self._compile_sources(select.sources)
        if select.where is not None:
            with self.prog.node("where"):
                rel = self._compile_filter(rel, select.where)
        has_aggregates = self._uses_aggregates(select)
        pre_projection: Optional[Relation] = None
        if has_aggregates or select.group_by:
            with self.prog.node("aggregate"):
                rel, names = self._compile_aggregation(rel, select)
        else:
            pre_projection = rel
            with self.prog.node("project"):
                rel, names = self._compile_projection(rel, select.items)
        if select.distinct:
            with self.prog.node("distinct"):
                rel = self._compile_distinct(rel)
            pre_projection = None  # dedup breaks row alignment
        if select.order_by:
            with self.prog.node("order by"):
                rel = self._compile_order(
                    rel, names, select.order_by, pre_projection
                )
        if select.limit is not None:
            with self.prog.node("limit"):
                rel = self._compile_limit(rel, select.limit)
        return rel, names

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def _compile_sources(self, sources: Sequence[Source]) -> Relation:
        if not sources:
            raise BindError("FROM clause is empty")
        relations = [self._compile_source(s) for s in sources]
        rel = relations[0]
        for other in relations[1:]:
            rel = self._cross_join(rel, other)
        return rel

    def _compile_source(self, source: Source) -> Relation:
        if isinstance(source, TableSource):
            return self._compile_table(source)
        if isinstance(source, BasketExpr):
            return self._compile_basket_expr(source)
        if isinstance(source, SubquerySource):
            inner = _SelectCompiler(
                self.catalog, self.prog, self.basket_inputs,
                self.allow_baskets,
            )
            with self.prog.node("subquery"):
                rel, names = inner.compile(source.select)
            alias = source.binding_name
            return Relation(
                [
                    BoundColumn(alias, n.lower(), c.var, c.atom)
                    for n, c in zip(names, rel)
                ]
            )
        if isinstance(source, JoinSource):
            return self._compile_join(source)
        raise BindError(f"unsupported FROM item {type(source).__name__}")

    def _compile_table(self, source: TableSource) -> Relation:
        table = self.catalog.get(source.name)
        alias = source.binding_name
        rel = Relation()
        with self.prog.node(f"scan {table.name}"):
            # Rebase to a dense-0 head so positions == candidate oids
            # throughout the plan (see module docstring invariant).
            first = self.prog.emit(
                "sql", "bind",
                [Const(table.name), Const(table.schema.columns[0].name)],
            )
            cands = self.prog.emit("algebra", "densecands", [Var(first)])
            for col in table.schema:
                bound = self.prog.emit(
                    "sql", "bind", [Const(table.name), Const(col.name)]
                )
                rebased = self.prog.emit(
                    "algebra", "projection", [Var(cands), Var(bound)]
                )
                rel.add(
                    BoundColumn(
                        alias,
                        col.name.lower(),
                        rebased,
                        col.atom,
                        hidden=(col.name.lower() == TIME_COLUMN),
                    )
                )
        return rel

    def _compile_basket_expr(self, source: BasketExpr) -> Relation:
        """Compile ``[select ...] as alias``: snapshot scan + consumption."""
        if not self.allow_baskets:
            raise BindError(
                "basket expressions are only allowed in continuous queries"
            )
        inner = source.select
        if (
            len(inner.sources) != 1
            or not isinstance(inner.sources[0], TableSource)
        ):
            raise BindError(
                "a basket expression must read exactly one basket"
            )
        table_src = inner.sources[0]
        basket = self.catalog.get(table_src.name)
        if not basket.is_basket:
            raise BindError(
                f"{table_src.name!r} is not a basket; basket expressions "
                "apply to baskets/streams only"
            )
        if inner.group_by or inner.having or inner.order_by:
            raise BindError(
                "basket expressions support select-project-filter (and "
                "LIMIT) only"
            )
        inner_alias = table_src.binding_name
        # Snapshot columns arrive as program inputs "<outer alias>.<col>".
        outer_alias = source.binding_name
        # one plan node per basket expression: its selections/limits are
        # the window predicate, reported as a unit by EXPLAIN ANALYZE
        self.prog.begin_node(f"basket {basket.name}")
        rel = Relation()
        for col in basket.schema:
            var = f"{outer_alias}.{col.name.lower()}"
            self.prog.inputs.append(var)
            rel.add(
                BoundColumn(
                    inner_alias,
                    col.name.lower(),
                    var,
                    col.atom,
                    hidden=(col.name.lower() == TIME_COLUMN),
                )
            )
        # WHERE inside the brackets = the predicate window: it decides
        # which snapshot positions are referenced (and hence consumed).
        if inner.where is not None:
            filtered, consumed_var = self._filter_with_cands(rel, inner.where)
        else:
            consumed_var = self.prog.emit(
                "algebra", "densecands", [Var(rel.first_var())]
            )
            filtered = rel
        if inner.limit is not None:
            # result-set-constraint window (§2.6): the basket expression
            # references (and consumes) at most LIMIT tuples per firing
            consumed_var = self.prog.emit(
                "algebra", "firstn", [Var(consumed_var), Const(inner.limit)]
            )
            filtered = self._compile_limit(filtered, inner.limit)
        self.basket_inputs.append(
            BasketInput(
                basket.name.lower(),
                outer_alias,
                consumed_var,
                result_constrained=inner.limit is not None,
            )
        )
        # consumed tuples must actually be the ones exposed through S:
        projected = Relation()
        for col in filtered:
            projected.add(
                BoundColumn(
                    outer_alias, col.name, col.var, col.atom, col.hidden
                )
            )
        # apply the inner select list (usually *)
        inner_rel, names = self._apply_select_items(
            projected, inner.items, default_alias=outer_alias
        )
        # keep the implicit timestamp reachable through the alias even
        # though * does not expand it (queries may order/window on it)
        present = {c.name for c in inner_rel.columns}
        for col in projected:
            if col.hidden and col.name not in present:
                inner_rel.add(col)
        self.prog.end_node()
        return inner_rel

    def _compile_join(self, source: JoinSource) -> Relation:
        with self.prog.node("join"):
            return self._compile_join_body(source)

    def _compile_join_body(self, source: JoinSource) -> Relation:
        left = self._compile_source(source.left)
        right = self._compile_source(source.right)
        if source.kind == "cross" or source.condition is None:
            return self._cross_join(left, right)
        # Decompose the ON condition into equi pairs + residual.
        eq = self._find_equi_pair(source.condition, left, right)
        if eq is None:
            rel = self._cross_join(left, right)
            return self._compile_filter(rel, source.condition)
        lcol, rcol, residual = eq
        if source.kind == "left":
            raise BindError(
                "LEFT JOIN projection of unmatched rows is not supported "
                "yet; use INNER JOIN"
            )
        loids, roids = self.prog.emit(
            "algebra", "join", [Var(lcol.var), Var(rcol.var)], results=2
        )
        rel = Relation()
        for col in left:
            var = self.prog.emit(
                "algebra", "projection", [Var(loids), Var(col.var)]
            )
            rel.add(BoundColumn(col.qualifier, col.name, var, col.atom,
                                col.hidden))
        for col in right:
            var = self.prog.emit(
                "algebra", "projection", [Var(roids), Var(col.var)]
            )
            rel.add(BoundColumn(col.qualifier, col.name, var, col.atom,
                                col.hidden))
        if residual is not None:
            rel = self._compile_filter(rel, residual)
        return rel

    def _find_equi_pair(self, condition: Expr, left: Relation, right: Relation):
        """Extract one ``l.col = r.col`` conjunct; returns residual rest."""
        conjuncts = _split_and(condition)
        for i, conj in enumerate(conjuncts):
            if (
                isinstance(conj, BinaryOp)
                and conj.op == "=="
                and isinstance(conj.left, ColumnRef)
                and isinstance(conj.right, ColumnRef)
            ):
                sides = []
                for ref in (conj.left, conj.right):
                    try:
                        sides.append(("l", left.resolve(ref)))
                    except BindError:
                        try:
                            sides.append(("r", right.resolve(ref)))
                        except BindError:
                            sides.append(None)
                if None in sides:
                    continue
                tags = {s[0] for s in sides}
                if tags == {"l", "r"}:
                    lcol = next(s[1] for s in sides if s[0] == "l")
                    rcol = next(s[1] for s in sides if s[0] == "r")
                    rest = conjuncts[:i] + conjuncts[i + 1 :]
                    residual = _join_and(rest)
                    return lcol, rcol, residual
        return None

    def _cross_join(self, left: Relation, right: Relation) -> Relation:
        """Cross product via position fan-out (small sides expected)."""
        lvar, rvar = left.first_var(), right.first_var()
        loids, roids = self.prog.emit(
            "algebra", "crossproduct", [Var(lvar), Var(rvar)], results=2
        )
        rel = Relation()
        for col in left:
            var = self.prog.emit(
                "algebra", "projection", [Var(loids), Var(col.var)]
            )
            rel.add(BoundColumn(col.qualifier, col.name, var, col.atom,
                                col.hidden))
        for col in right:
            var = self.prog.emit(
                "algebra", "projection", [Var(roids), Var(col.var)]
            )
            rel.add(BoundColumn(col.qualifier, col.name, var, col.atom,
                                col.hidden))
        return rel

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def _compile_filter(self, rel: Relation, predicate: Expr) -> Relation:
        filtered, _ = self._filter_with_cands(rel, predicate)
        return filtered

    def _filter_with_cands(
        self, rel: Relation, predicate: Expr
    ) -> Tuple[Relation, str]:
        """Filter ``rel``; returns (new relation, candidate var).

        Simple conjuncts (column ⟨op⟩ literal, BETWEEN) become kernel
        selections threaded through a candidate list; the residual is
        evaluated as a boolean column.  The returned candidate variable
        holds the qualifying positions of the *input* relation — the
        consumption set for basket expressions.
        """
        conjuncts = _split_and(predicate)
        cands: Optional[str] = None
        residual: List[Expr] = []
        for conj in conjuncts:
            emitted = self._try_simple_select(rel, conj, cands)
            if emitted is not None:
                cands = emitted
            else:
                residual.append(conj)
        if residual:
            rest = _join_and(residual)
            assert rest is not None
            if cands is not None:
                rel_mid = self._project_all(rel, cands)
            else:
                rel_mid = rel
            bool_var, atom = self._expr(rel_mid, rest)
            if atom is not AtomType.BOOL:
                raise BindError("WHERE predicate must be boolean")
            mask_cands = self.prog.emit(
                "algebra", "mask2cand", [Var(bool_var)]
            )
            final_rel = self._project_all(rel_mid, mask_cands)
            # compose candidates: positions-of-positions
            if cands is not None:
                total = self.prog.emit(
                    "algebra", "compose", [Var(cands), Var(mask_cands)]
                )
            else:
                total = mask_cands
            return final_rel, total
        if cands is None:
            # constant-true corner (no conjuncts?) — all positions
            cands = self.prog.emit(
                "algebra", "densecands", [Var(rel.first_var())]
            )
            return rel, cands
        return self._project_all(rel, cands), cands

    def _try_simple_select(
        self, rel: Relation, conj: Expr, cands: Optional[str]
    ) -> Optional[str]:
        """Emit a kernel selection for a simple conjunct, if possible."""
        cand_arg = Const(None) if cands is None else Var(cands)
        if isinstance(conj, Between) and not conj.negated:
            if isinstance(conj.operand, ColumnRef) and _is_literal(conj.low) \
                    and _is_literal(conj.high):
                col = rel.resolve(conj.operand)
                return self.prog.emit(
                    "algebra",
                    "select",
                    [
                        Var(col.var),
                        cand_arg,
                        Const(_literal_value(conj.low)),
                        Const(_literal_value(conj.high)),
                        Const(True),
                        Const(True),
                        Const(False),
                    ],
                )
        if isinstance(conj, IsNull):
            if isinstance(conj.operand, ColumnRef):
                col = rel.resolve(conj.operand)
                fn = "selectnotnil" if conj.negated else "selectnil"
                return self.prog.emit(
                    "algebra", fn, [Var(col.var), cand_arg]
                )
        if isinstance(conj, Like):
            if isinstance(conj.operand, ColumnRef) and isinstance(
                conj.pattern, Literal
            ):
                col = rel.resolve(conj.operand)
                if col.atom is not AtomType.STR:
                    raise BindError("LIKE applies to string columns")
                return self.prog.emit(
                    "algebra",
                    "likeselect",
                    [Var(col.var), cand_arg, Const(conj.pattern.value),
                     Const(conj.negated)],
                )
        if isinstance(conj, BinaryOp) and conj.op in (
            "==", "!=", "<", "<=", ">", ">=",
        ):
            ref, lit, op = None, None, conj.op
            if isinstance(conj.left, ColumnRef) and _is_literal(conj.right):
                ref, lit = conj.left, conj.right
            elif isinstance(conj.right, ColumnRef) and _is_literal(conj.left):
                ref, lit = conj.right, conj.left
                op = _flip_op(op)
            if ref is not None:
                col = rel.resolve(ref)
                return self.prog.emit(
                    "algebra",
                    "thetaselect",
                    [Var(col.var), cand_arg, Const(op),
                     Const(_literal_value(lit))],
                )
        return None

    def _project_all(self, rel: Relation, cands: str) -> Relation:
        out = Relation()
        for col in rel:
            var = self.prog.emit(
                "algebra", "projection", [Var(cands), Var(col.var)]
            )
            out.add(
                BoundColumn(col.qualifier, col.name, var, col.atom, col.hidden)
            )
        return out

    # ------------------------------------------------------------------
    # projection (no aggregation)
    # ------------------------------------------------------------------
    def _apply_select_items(
        self,
        rel: Relation,
        items: Sequence[SelectItem],
        default_alias: Optional[str] = None,
    ) -> Tuple[Relation, List[str]]:
        out = Relation()
        names: List[str] = []
        for item in items:
            if isinstance(item.expr, Star):
                cols = (
                    rel.columns_of(item.expr.table)
                    if item.expr.table
                    else rel.visible()
                )
                for col in cols:
                    out.add(
                        BoundColumn(
                            default_alias or col.qualifier,
                            col.name,
                            col.var,
                            col.atom,
                        )
                    )
                    names.append(col.name)
                continue
            var, atom = self._expr(rel, item.expr)
            name = (item.alias or _default_name(item.expr, len(names))).lower()
            out.add(BoundColumn(default_alias, name, var, atom))
            names.append(name)
        if not names:
            raise BindError("select list is empty")
        return out, names

    def _compile_projection(
        self, rel: Relation, items: Sequence[SelectItem]
    ) -> Tuple[Relation, List[str]]:
        return self._apply_select_items(rel, items)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _uses_aggregates(self, select: Select) -> bool:
        exprs = [i.expr for i in select.items]
        if select.having is not None:
            exprs.append(select.having)
        return any(_contains_aggregate(e) for e in exprs)

    def _compile_aggregation(
        self, rel: Relation, select: Select
    ) -> Tuple[Relation, List[str]]:
        group_exprs = select.group_by
        if not group_exprs:
            return self._compile_scalar_aggregation(rel, select)
        # 1. group key columns
        key_vars: List[Tuple[str, str, AtomType]] = []  # (key, var, atom)
        grp_var: Optional[str] = None
        n_var: Optional[str] = None
        ext_var: Optional[str] = None
        for gexpr in group_exprs:
            var, atom = self._expr(rel, gexpr)
            key_vars.append((_expr_key(gexpr), var, atom))
            if grp_var is None:
                grp_var, ext_var, n_var = self.prog.emit(
                    "group", "group", [Var(var)], results=3
                )
            else:
                grp_var, ext_var, n_var = self.prog.emit(
                    "group", "subgroup", [Var(var), Var(grp_var)], results=3
                )
        assert grp_var and ext_var and n_var
        # 2. aggregate columns (unique by structural key)
        agg_vars: Dict[str, Tuple[str, AtomType]] = {}
        for agg in self._collect_aggregates(select):
            key = _expr_key(agg)
            if key in agg_vars:
                continue
            agg_vars[key] = self._emit_grouped_aggregate(
                rel, agg, grp_var, n_var
            )
        # 3. post-aggregation relation: keys projected through extents
        post = Relation()
        key_map: Dict[str, BoundColumn] = {}
        for key, var, atom in key_vars:
            kvar = self.prog.emit(
                "algebra", "projection", [Var(ext_var), Var(var)]
            )
            col = BoundColumn(None, f"__key_{len(key_map)}", kvar, atom)
            post.add(col)
            key_map[key] = col
        agg_map: Dict[str, BoundColumn] = {}
        for key, (var, atom) in agg_vars.items():
            col = BoundColumn(None, f"__agg_{len(agg_map)}", var, atom)
            post.add(col)
            agg_map[key] = col
        mapping = {**key_map, **agg_map}
        # 4. HAVING
        if select.having is not None:
            hvar, hatom = self._expr_over_groups(post, select.having, mapping)
            if hatom is not AtomType.BOOL:
                raise BindError("HAVING predicate must be boolean")
            cands = self.prog.emit("algebra", "mask2cand", [Var(hvar)])
            post = self._project_all(post, cands)
            mapping = {
                key: post.columns[i]
                for i, key in enumerate(list(key_map) + list(agg_map))
            }
        # 5. select list over grouped relation
        out = Relation()
        names: List[str] = []
        for item in select.items:
            if isinstance(item.expr, Star):
                raise BindError("* cannot appear with GROUP BY")
            var, atom = self._expr_over_groups(post, item.expr, mapping)
            name = (item.alias or _default_name(item.expr, len(names))).lower()
            out.add(BoundColumn(None, name, var, atom))
            names.append(name)
        return out, names

    def _compile_scalar_aggregation(
        self, rel: Relation, select: Select
    ) -> Tuple[Relation, List[str]]:
        """Aggregates without GROUP BY: a single-row result."""
        names: List[str] = []
        atoms: List[AtomType] = []
        value_vars: List[str] = []
        for item in select.items:
            expr = item.expr
            if not isinstance(expr, FuncCall) or expr.name not in AGGREGATES:
                raise BindError(
                    "without GROUP BY the select list may contain only "
                    "aggregates"
                )
            var, atom = self._emit_scalar_aggregate(rel, expr)
            names.append(
                (item.alias or _default_name(expr, len(names))).lower()
            )
            atoms.append(atom)
            value_vars.append(var)
        result_var = self.prog.emit(
            "sql",
            "single_row",
            [Const(tuple(names)), Const(tuple(a.value for a in atoms))]
            + [Var(v) for v in value_vars],
        )
        # wrap: represent as relation of one-row columns for order/limit
        out = Relation()
        for i, (name, atom) in enumerate(zip(names, atoms)):
            cvar = self.prog.emit(
                "sql", "result_column", [Var(result_var), Const(i)]
            )
            out.add(BoundColumn(None, name, cvar, atom))
        return out, names

    def _collect_aggregates(self, select: Select) -> List[FuncCall]:
        out: List[FuncCall] = []
        exprs = [i.expr for i in select.items]
        if select.having is not None:
            exprs.append(select.having)
        for expr in exprs:
            _walk_aggregates(expr, out)
        return out

    def _emit_grouped_aggregate(
        self, rel: Relation, agg: FuncCall, grp_var: str, n_var: str
    ) -> Tuple[str, AtomType]:
        if agg.distinct:
            raise BindError("DISTINCT aggregates are not supported")
        if agg.star:
            anchor = rel.first_var()
            var = self.prog.emit(
                "aggr", "subcount_star", [Var(anchor), Var(grp_var), Var(n_var)]
            )
            return var, AtomType.LNG
        if len(agg.args) != 1:
            raise BindError(f"{agg.name} takes exactly one argument")
        avar, aatom = self._expr(rel, agg.args[0])
        var = self.prog.emit(
            "aggr", f"sub{agg.name}", [Var(avar), Var(grp_var), Var(n_var)]
        )
        return var, _aggregate_atom(agg.name, aatom)

    def _emit_scalar_aggregate(
        self, rel: Relation, agg: FuncCall
    ) -> Tuple[str, AtomType]:
        if agg.distinct:
            raise BindError("DISTINCT aggregates are not supported")
        if agg.star:
            var = self.prog.emit(
                "aggr", "count_star", [Var(rel.first_var())]
            )
            return var, AtomType.LNG
        if len(agg.args) != 1:
            raise BindError(f"{agg.name} takes exactly one argument")
        avar, aatom = self._expr(rel, agg.args[0])
        var = self.prog.emit("aggr", agg.name, [Var(avar)])
        return var, _aggregate_atom(agg.name, aatom)

    def _expr_over_groups(
        self,
        post: Relation,
        expr: Expr,
        mapping: Dict[str, BoundColumn],
    ) -> Tuple[str, AtomType]:
        """Evaluate a select/having expression over the grouped relation.

        Aggregate calls and group-key expressions are replaced by their
        materialized columns; anything else must be built from those.
        """
        key = _expr_key(expr)
        if key in mapping:
            col = mapping[key]
            return col.var, col.atom
        if isinstance(expr, FuncCall) and expr.name in AGGREGATES:
            raise BindError(
                f"aggregate {expr.name} was not pre-computed (internal)"
            )
        if isinstance(expr, ColumnRef):
            raise BindError(
                f"column {expr.display()!r} must appear in GROUP BY or "
                "inside an aggregate"
            )
        if isinstance(expr, Literal):
            return self._const(post, expr.value)
        if isinstance(expr, UnaryOp):
            ovar, oatom = self._expr_over_groups(post, expr.operand, mapping)
            return self._apply_unary(expr.op, ovar, oatom)
        if isinstance(expr, BinaryOp):
            lvar, latom = self._expr_over_groups(post, expr.left, mapping)
            rvar, ratom = self._expr_over_groups(post, expr.right, mapping)
            return self._apply_binary(expr.op, lvar, latom, rvar, ratom)
        if isinstance(expr, Between):
            return self._expr_over_groups(
                post, _desugar_between(expr), mapping
            )
        raise BindError(
            f"unsupported expression over groups: {type(expr).__name__}"
        )

    # ------------------------------------------------------------------
    # distinct / order / limit
    # ------------------------------------------------------------------
    def _compile_distinct(self, rel: Relation) -> Relation:
        grp_var: Optional[str] = None
        ext_var = n_var = None
        for col in rel:
            if grp_var is None:
                grp_var, ext_var, n_var = self.prog.emit(
                    "group", "group", [Var(col.var)], results=3
                )
            else:
                grp_var, ext_var, n_var = self.prog.emit(
                    "group", "subgroup", [Var(col.var), Var(grp_var)],
                    results=3,
                )
        assert ext_var is not None
        return self._project_all(rel, ext_var)

    def _compile_order(
        self,
        rel: Relation,
        names: List[str],
        order_by: Sequence[OrderItem],
        pre_projection: Optional[Relation] = None,
    ) -> Relation:
        # ORDER BY may reference output aliases, output columns, or (as in
        # standard SQL) input columns not kept by the select list — the
        # pre-projection relation is row-aligned with the output, so its
        # columns are valid sort keys.
        alias_map = {
            name: col for name, col in zip(names, rel.columns)
        }
        perm: Optional[str] = None
        for item in reversed(order_by):
            var = self._order_key_var(rel, alias_map, item.expr,
                                      pre_projection)
            if perm is None:
                perm = self.prog.emit(
                    "algebra",
                    "sort",
                    [Var(var), Const(None), Const(item.descending)],
                )
            else:
                perm = self.prog.emit(
                    "algebra",
                    "refine",
                    [Var(var), Var(perm), Const(item.descending)],
                )
        assert perm is not None
        return self._project_all(rel, perm)

    def _order_key_var(self, rel, alias_map, expr, pre_projection=None) -> str:
        if isinstance(expr, ColumnRef):
            col = alias_map.get(expr.name.lower())
            if col is not None:
                return col.var
            # qualified references survive projection only by name: the
            # select list stripped qualifiers, so fall back to the bare
            # name, then to the row-aligned pre-projection relation
            for relation in (rel, pre_projection):
                if relation is None:
                    continue
                try:
                    return relation.resolve(expr).var
                except BindError:
                    if expr.table is not None:
                        try:
                            return relation.resolve(ColumnRef(expr.name)).var
                        except BindError:
                            pass
            raise BindError(f"cannot resolve ORDER BY column {expr.display()!r}")
        if pre_projection is not None:
            try:
                var, _ = self._expr(pre_projection, expr)
                return var
            except BindError:
                pass
        var, _ = self._expr(rel, expr)
        return var

    def _compile_limit(self, rel: Relation, limit: int) -> Relation:
        out = Relation()
        for col in rel:
            var = self.prog.emit(
                "algebra", "slice", [Var(col.var), Const(0), Const(limit)]
            )
            out.add(BoundColumn(col.qualifier, col.name, var, col.atom,
                                col.hidden))
        return out

    # ------------------------------------------------------------------
    # expression compilation
    # ------------------------------------------------------------------
    def _const(self, rel: Relation, value: Any) -> Tuple[str, AtomType]:
        atom = _literal_atom(value)
        var = self.prog.emit(
            "batcalc",
            "const",
            [Const(value), Var(rel.first_var()), Const(atom.value)],
        )
        return var, atom

    def _expr(self, rel: Relation, expr: Expr) -> Tuple[str, AtomType]:
        if isinstance(expr, Literal):
            return self._const(rel, expr.value)
        if isinstance(expr, ColumnRef):
            col = rel.resolve(expr)
            return col.var, col.atom
        if isinstance(expr, UnaryOp):
            ovar, oatom = self._expr(rel, expr.operand)
            return self._apply_unary(expr.op, ovar, oatom)
        if isinstance(expr, BinaryOp):
            lvar, latom = self._expr(rel, expr.left)
            rvar, ratom = self._expr(rel, expr.right)
            return self._apply_binary(expr.op, lvar, latom, rvar, ratom)
        if isinstance(expr, Between):
            return self._expr(rel, _desugar_between(expr))
        if isinstance(expr, InList):
            return self._expr(rel, _desugar_inlist(expr))
        if isinstance(expr, IsNull):
            var, _ = self._expr(rel, expr.operand)
            out = self.prog.emit("batcalc", "isnil", [Var(var)])
            if expr.negated:
                out = self.prog.emit("batcalc", "not", [Var(out)])
            return out, AtomType.BOOL
        if isinstance(expr, Like):
            if not isinstance(expr.pattern, Literal) or not isinstance(
                expr.pattern.value, str
            ):
                raise BindError("LIKE pattern must be a string literal")
            var, atom = self._expr(rel, expr.operand)
            if atom is not AtomType.STR:
                raise BindError("LIKE applies to string expressions")
            out = self.prog.emit(
                "batstr",
                "like",
                [Var(var), Const(expr.pattern.value), Const(expr.negated)],
            )
            return out, AtomType.BOOL
        if isinstance(expr, CaseWhen):
            return self._compile_case(rel, expr)
        if isinstance(expr, FuncCall):
            return self._compile_function(rel, expr)
        raise BindError(f"unsupported expression {type(expr).__name__}")

    def _apply_unary(self, op: str, var: str, atom: AtomType):
        if op == "-":
            if not atom.is_numeric:
                raise BindError("unary minus needs a numeric operand")
            return self.prog.emit("batcalc", "neg", [Var(var)]), atom
        if op == "not":
            if atom is not AtomType.BOOL:
                raise BindError("NOT needs a boolean operand")
            return self.prog.emit("batcalc", "not", [Var(var)]), AtomType.BOOL
        raise BindError(f"unknown unary operator {op!r}")

    def _apply_binary(self, op, lvar, latom, rvar, ratom):
        if op in ("and", "or"):
            if latom is not AtomType.BOOL or ratom is not AtomType.BOOL:
                raise BindError(f"{op.upper()} needs boolean operands")
            var = self.prog.emit("batcalc", op, [Var(lvar), Var(rvar)])
            return var, AtomType.BOOL
        if op in ("==", "!=", "<", "<=", ">", ">="):
            var = self.prog.emit("batcalc", op, [Var(lvar), Var(rvar)])
            return var, AtomType.BOOL
        if op in ("+", "-", "*", "/", "%"):
            if latom is AtomType.STR and ratom is AtomType.STR and op == "+":
                out_atom = AtomType.STR
            else:
                out_atom = common_type(latom, ratom)
                if op == "/":
                    out_atom = AtomType.DBL
            var = self.prog.emit("batcalc", op, [Var(lvar), Var(rvar)])
            return var, out_atom
        raise BindError(f"unknown operator {op!r}")

    def _compile_case(self, rel: Relation, expr: CaseWhen):
        otherwise = expr.otherwise or Literal(None)
        evar, eatom = self._expr(rel, otherwise)
        result_atom = eatom
        for cond, value in reversed(expr.whens):
            cvar, catom = self._expr(rel, cond)
            if catom is not AtomType.BOOL:
                raise BindError("CASE WHEN condition must be boolean")
            vvar, vatom = self._expr(rel, value)
            try:
                result_atom = (
                    vatom
                    if result_atom is AtomType.STR or vatom is result_atom
                    else common_type(vatom, result_atom)
                )
            except SqlError:
                result_atom = vatom
            evar = self.prog.emit(
                "batcalc", "ifthenelse", [Var(cvar), Var(vvar), Var(evar)]
            )
        return evar, result_atom

    _STRING_FUNCTIONS = {"upper", "lower", "trim", "length", "substring"}
    _MATH_FUNCTIONS = {"abs", "floor", "ceil", "round", "sqrt"}

    def _compile_function(self, rel: Relation, expr: FuncCall):
        if expr.name in AGGREGATES:
            raise BindError(
                f"aggregate {expr.name}() is not allowed here (only in the "
                "select list / HAVING of an aggregating query)"
            )
        if expr.name.startswith("cast_"):
            target = expr.name[len("cast_"):]
            from .binder import type_name_to_atom

            atom = type_name_to_atom(target)
            var, _ = self._expr(rel, expr.args[0])
            out = self.prog.emit(
                "batcalc", "cast", [Var(var), Const(atom.value)]
            )
            return out, atom
        if expr.name in self._STRING_FUNCTIONS:
            return self._compile_string_function(rel, expr)
        if expr.name in self._MATH_FUNCTIONS:
            return self._compile_math_function(rel, expr)
        raise BindError(f"unknown function {expr.name!r}")

    def _compile_string_function(self, rel: Relation, expr: FuncCall):
        if not expr.args:
            raise BindError(f"{expr.name} takes at least one argument")
        var, atom = self._expr(rel, expr.args[0])
        if atom is not AtomType.STR:
            raise BindError(f"{expr.name} applies to string expressions")
        if expr.name == "substring":
            if len(expr.args) not in (2, 3):
                raise BindError("substring(str, start[, length])")
            extra = []
            for arg in expr.args[1:]:
                if not isinstance(arg, Literal) or not isinstance(
                    arg.value, int
                ):
                    raise BindError(
                        "substring bounds must be integer literals"
                    )
                extra.append(Const(arg.value))
            out = self.prog.emit("batstr", "substring", [Var(var)] + extra)
            return out, AtomType.STR
        if len(expr.args) != 1:
            raise BindError(f"{expr.name} takes exactly one argument")
        out = self.prog.emit("batstr", expr.name, [Var(var)])
        return out, AtomType.INT if expr.name == "length" else AtomType.STR

    def _compile_math_function(self, rel: Relation, expr: FuncCall):
        if not expr.args:
            raise BindError(f"{expr.name} takes at least one argument")
        var, atom = self._expr(rel, expr.args[0])
        if not atom.is_numeric:
            raise BindError(f"{expr.name} applies to numeric expressions")
        digits = 0
        if expr.name == "round" and len(expr.args) == 2:
            arg = expr.args[1]
            if not isinstance(arg, Literal) or not isinstance(arg.value, int):
                raise BindError("round digits must be an integer literal")
            digits = arg.value
        elif len(expr.args) != 1:
            raise BindError(f"{expr.name} takes exactly one argument")
        out = self.prog.emit(
            "batmath", expr.name, [Var(var), Const(digits)]
        )
        if expr.name == "abs":
            out_atom = atom
        elif expr.name == "sqrt":
            out_atom = AtomType.DBL
        elif expr.name == "round" and digits:
            out_atom = AtomType.DBL
        else:
            out_atom = AtomType.LNG if atom.is_integral else AtomType.DBL
        return out, out_atom


# ======================================================================
# public entry points
# ======================================================================
def compile_select(catalog: Catalog, select: Select) -> CompiledQuery:
    """Compile a one-time SELECT over catalog tables."""
    program = Program(name="query")
    compiler = _SelectCompiler(catalog, program, [], allow_baskets=False)
    with program.node("select"):
        rel, names = compiler.compile(select)
        with program.node("result"):
            program.output = program.emit(
                "sql",
                "resultset",
                [Const(tuple(names))] + [Var(c.var) for c in rel.columns],
            )
    program.validate()
    return CompiledQuery(
        program, names, [c.atom for c in rel.columns], []
    )


def compile_union(catalog: Catalog, union: UnionSelect) -> CompiledQuery:
    """Compile a one-time UNION [ALL] chain.

    Members must agree on arity; numeric columns are widened to the common
    type.  Non-ALL unions dedupe the concatenated result (DISTINCT over
    all columns).  Simplification vs full SQL: in a mixed chain
    (``a UNION b UNION ALL c``) the dedup applies to the whole chain when
    any member is non-ALL, rather than per prefix.
    """
    members: List[Select] = []

    def flatten(stmt) -> None:
        if isinstance(stmt, UnionSelect):
            flatten(stmt.left)
            members.append(stmt.right)
        else:
            members.append(stmt)

    flatten(union)
    program = Program(name="union_query")
    program.begin_node("union")
    compiled_members = []
    for member in members:
        compiler = _SelectCompiler(catalog, program, [], allow_baskets=False)
        rel, names = compiler.compile(member)
        compiled_members.append((rel, names))
    first_rel, first_names = compiled_members[0]
    arity = len(first_rel.columns)
    out_atoms: List[AtomType] = [c.atom for c in first_rel.columns]
    for rel, _ in compiled_members[1:]:
        if len(rel.columns) != arity:
            raise BindError(
                "UNION members must have the same number of columns"
            )
        for i, col in enumerate(rel.columns):
            if col.atom is not out_atoms[i]:
                out_atoms[i] = common_type(col.atom, out_atoms[i])
    # concat member columns (casting where the common type widened)
    def column_var(rel, i) -> str:
        col = rel.columns[i]
        if col.atom is out_atoms[i]:
            return col.var
        return program.emit(
            "batcalc", "cast", [Var(col.var), Const(out_atoms[i].value)]
        )

    merged = [column_var(first_rel, i) for i in range(arity)]
    for rel, _ in compiled_members[1:]:
        merged = [
            program.emit(
                "bat", "concat", [Var(acc), Var(column_var(rel, i))]
            )
            for i, acc in enumerate(merged)
        ]
    out_rel = Relation(
        [
            BoundColumn(None, name.lower(), var, atom)
            for name, var, atom in zip(first_names, merged, out_atoms)
        ]
    )
    is_all = all(
        stmt.all for stmt in _union_nodes(union)
    )
    if not is_all:
        helper = _SelectCompiler(catalog, program, [], allow_baskets=False)
        out_rel = helper._compile_distinct(out_rel)
    with program.node("result"):
        program.output = program.emit(
            "sql",
            "resultset",
            [Const(tuple(first_names))]
            + [Var(c.var) for c in out_rel.columns],
        )
    program.end_node()
    program.validate()
    return CompiledQuery(program, first_names, out_atoms, [])


def _union_nodes(union):
    out = []
    node = union
    while isinstance(node, UnionSelect):
        out.append(node)
        node = node.left
    return out


def compile_continuous(catalog: Catalog, select: Select) -> CompiledQuery:
    """Compile a continuous SELECT (must contain a basket expression)."""
    program = Program(name="continuous_query")
    basket_inputs: List[BasketInput] = []
    compiler = _SelectCompiler(
        catalog, program, basket_inputs, allow_baskets=True
    )
    with program.node("continuous select"):
        rel, names = compiler.compile(select)
        if not basket_inputs:
            raise BindError(
                "a continuous query must contain a basket expression "
                "([select ...])"
            )
        with program.node("result"):
            program.output = program.emit(
                "sql",
                "resultset",
                [Const(tuple(names))] + [Var(c.var) for c in rel.columns],
            )
    program.validate()
    return CompiledQuery(
        program, names, [c.atom for c in rel.columns], basket_inputs
    )


# ======================================================================
# helpers
# ======================================================================
def _split_and(expr: Expr) -> List[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _split_and(expr.left) + _split_and(expr.right)
    return [expr]


def _join_and(conjuncts: List[Expr]) -> Optional[Expr]:
    if not conjuncts:
        return None
    out = conjuncts[0]
    for conj in conjuncts[1:]:
        out = BinaryOp("and", out, conj)
    return out


def _is_literal(expr: Expr) -> bool:
    if isinstance(expr, Literal):
        return True
    return (
        isinstance(expr, UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, Literal)
        and isinstance(expr.operand.value, (int, float))
    )


def _literal_value(expr: Expr) -> Any:
    if isinstance(expr, Literal):
        return expr.value
    assert isinstance(expr, UnaryOp)
    inner = expr.operand
    assert isinstance(inner, Literal)
    return -inner.value


def _flip_op(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)


def _literal_atom(value: Any) -> AtomType:
    if value is None:
        return AtomType.DBL
    if isinstance(value, bool):
        return AtomType.BOOL
    if isinstance(value, int):
        return AtomType.LNG
    if isinstance(value, float):
        return AtomType.DBL
    if isinstance(value, str):
        return AtomType.STR
    raise BindError(f"unsupported literal {value!r}")


def _aggregate_atom(name: str, input_atom: AtomType) -> AtomType:
    if name == "count":
        return AtomType.LNG
    if name == "avg":
        return AtomType.DBL
    if name == "sum":
        return AtomType.LNG if input_atom.is_integral else AtomType.DBL
    return input_atom  # min / max


def _default_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, FuncCall):
        return expr.name
    return f"col{index}"


def _contains_aggregate(expr: Expr) -> bool:
    found: List[FuncCall] = []
    _walk_aggregates(expr, found)
    return bool(found)


def _walk_aggregates(expr: Expr, out: List[FuncCall]) -> None:
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATES:
            out.append(expr)
            return
        for arg in expr.args:
            _walk_aggregates(arg, out)
    elif isinstance(expr, BinaryOp):
        _walk_aggregates(expr.left, out)
        _walk_aggregates(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _walk_aggregates(expr.operand, out)
    elif isinstance(expr, Between):
        for sub in (expr.operand, expr.low, expr.high):
            _walk_aggregates(sub, out)
    elif isinstance(expr, InList):
        _walk_aggregates(expr.operand, out)
        for item in expr.items:
            _walk_aggregates(item, out)
    elif isinstance(expr, IsNull):
        _walk_aggregates(expr.operand, out)
    elif isinstance(expr, Like):
        _walk_aggregates(expr.operand, out)
        _walk_aggregates(expr.pattern, out)
    elif isinstance(expr, CaseWhen):
        for cond, value in expr.whens:
            _walk_aggregates(cond, out)
            _walk_aggregates(value, out)
        if expr.otherwise is not None:
            _walk_aggregates(expr.otherwise, out)


def _expr_key(expr: Expr) -> str:
    """A canonical structural key for expression deduplication."""
    if isinstance(expr, Literal):
        return f"lit:{expr.value!r}"
    if isinstance(expr, ColumnRef):
        return f"col:{expr.name.lower()}"  # qualifier-insensitive on purpose
    if isinstance(expr, Star):
        return "star"
    if isinstance(expr, UnaryOp):
        return f"({expr.op} {_expr_key(expr.operand)})"
    if isinstance(expr, BinaryOp):
        return f"({_expr_key(expr.left)} {expr.op} {_expr_key(expr.right)})"
    if isinstance(expr, FuncCall):
        inner = "*" if expr.star else ",".join(_expr_key(a) for a in expr.args)
        return f"{expr.name}({inner})"
    if isinstance(expr, Between):
        return (
            f"between({_expr_key(expr.operand)},{_expr_key(expr.low)},"
            f"{_expr_key(expr.high)},{expr.negated})"
        )
    if isinstance(expr, InList):
        items = ",".join(_expr_key(i) for i in expr.items)
        return f"in({_expr_key(expr.operand)},[{items}],{expr.negated})"
    if isinstance(expr, IsNull):
        return f"isnull({_expr_key(expr.operand)},{expr.negated})"
    if isinstance(expr, Like):
        return (
            f"like({_expr_key(expr.operand)},{_expr_key(expr.pattern)},"
            f"{expr.negated})"
        )
    if isinstance(expr, CaseWhen):
        whens = ";".join(
            f"{_expr_key(c)}->{_expr_key(v)}" for c, v in expr.whens
        )
        other = _expr_key(expr.otherwise) if expr.otherwise else ""
        return f"case({whens},{other})"
    raise BindError(f"cannot key expression {type(expr).__name__}")


def _desugar_between(expr: Between) -> Expr:
    low = BinaryOp(">=", expr.operand, expr.low)
    high = BinaryOp("<=", expr.operand, expr.high)
    both = BinaryOp("and", low, high)
    return UnaryOp("not", both) if expr.negated else both


def _desugar_inlist(expr: InList) -> Expr:
    out: Optional[Expr] = None
    for item in expr.items:
        eq = BinaryOp("==", expr.operand, item)
        out = eq if out is None else BinaryOp("or", out, eq)
    assert out is not None
    return UnaryOp("not", out) if expr.negated else out
