"""Synthetic workload generators for examples, tests and benchmarks.

All generators take an explicit seed so benchmark runs are reproducible;
when the seed is omitted they fall back to the run-wide base seed from
:func:`repro.testing.current_seed` (``DATACELL_SEED``), so defaults flow
through the one seeding path too.  They return plain row tuples ready
for ``Basket.insert_rows`` or channel pushes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..testing import current_seed

__all__ = [
    "uniform_ints",
    "zipf_ints",
    "gaussian_doubles",
    "sensor_readings",
    "stock_ticks",
    "network_packets",
]


def uniform_ints(
    count: int, low: int = 0, high: int = 1000, seed: Optional[int] = None
) -> List[Tuple[int]]:
    """``count`` single-column rows uniform in [low, high]."""
    rng = random.Random(current_seed() if seed is None else seed)
    return [(rng.randint(low, high),) for _ in range(count)]


def zipf_ints(
    count: int, n_values: int = 1000, alpha: float = 1.2, seed: Optional[int] = None
) -> List[Tuple[int]]:
    """Zipf-skewed keys in [0, n_values) — hot-key workloads."""
    rng = random.Random(current_seed() if seed is None else seed)
    weights = [1.0 / ((i + 1) ** alpha) for i in range(n_values)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    import bisect

    out = []
    for _ in range(count):
        out.append((bisect.bisect_left(cumulative, rng.random()),))
    return out


def gaussian_doubles(
    count: int, mean: float = 0.0, stddev: float = 1.0, seed: Optional[int] = None
) -> List[Tuple[float]]:
    rng = random.Random(current_seed() if seed is None else seed)
    return [(rng.gauss(mean, stddev),) for _ in range(count)]


def sensor_readings(
    count: int,
    n_sensors: int = 16,
    base_temp: float = 20.0,
    anomaly_rate: float = 0.02,
    seed: Optional[int] = None,
) -> List[Tuple[int, float]]:
    """(sensor_id, temperature) rows with occasional hot anomalies.

    The network-monitoring / sensor scenario from the paper's intro: most
    readings hover around ``base_temp``; a small fraction spike, which is
    what the standing alert queries look for.
    """
    rng = random.Random(current_seed() if seed is None else seed)
    rows = []
    for _ in range(count):
        sensor = rng.randrange(n_sensors)
        if rng.random() < anomaly_rate:
            temp = base_temp + rng.uniform(20.0, 40.0)
        else:
            temp = base_temp + rng.gauss(0.0, 2.0)
        rows.append((sensor, round(temp, 3)))
    return rows


def stock_ticks(
    count: int,
    symbols: Optional[Sequence[str]] = None,
    start_price: float = 100.0,
    seed: Optional[int] = None,
) -> List[Tuple[str, float, int]]:
    """(symbol, price, quantity) random-walk ticks for financial examples."""
    rng = random.Random(current_seed() if seed is None else seed)
    symbols = list(symbols or ("ACME", "GLOBEX", "INITECH", "UMBRELLA"))
    prices = {s: start_price * rng.uniform(0.5, 2.0) for s in symbols}
    rows = []
    for _ in range(count):
        sym = rng.choice(symbols)
        prices[sym] = max(1.0, prices[sym] * (1.0 + rng.gauss(0, 0.003)))
        rows.append((sym, round(prices[sym], 2), rng.randint(1, 500)))
    return rows


def network_packets(
    count: int,
    n_hosts: int = 64,
    suspicious_port: int = 31337,
    attack_rate: float = 0.01,
    seed: Optional[int] = None,
) -> List[Tuple[str, str, int, int]]:
    """(src, dst, port, size) packet headers with rare suspicious ports."""
    rng = random.Random(current_seed() if seed is None else seed)

    def host() -> str:
        return f"10.0.{rng.randrange(n_hosts) // 256}.{rng.randrange(n_hosts) % 256}"

    common_ports = (80, 443, 22, 53, 8080)
    rows = []
    for _ in range(count):
        port = (
            suspicious_port
            if rng.random() < attack_rate
            else rng.choice(common_ports)
        )
        rows.append((host(), host(), port, rng.randint(40, 1500)))
    return rows
