"""Communication channels at the DataCell periphery.

The paper's interchange format is purposely simple: textual flat relational
tuples.  A :class:`Channel` is anything events can be pushed into and
polled from; receptors poll channels, emitters push into them.  The
in-memory implementation keeps benchmarks deterministic and fast; the TCP
adapters in :mod:`repro.adapters.tcpio` expose the same interface over
sockets.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, List, Optional, Sequence, Union

from ..errors import AdapterError

__all__ = ["Channel", "InMemoryChannel", "format_tuple", "parse_tuple_text"]

Event = Union[str, Sequence[Any]]

FIELD_SEPARATOR = ","
_ESCAPED = {"\\,": ",", "\\\\": "\\", "\\n": "\n"}


def format_tuple(values: Sequence[Any]) -> str:
    """Serialize one flat relational tuple to the textual wire format.

    ``None`` becomes the empty field; separators inside strings are
    backslash-escaped.
    """
    fields = []
    for value in values:
        if value is None:
            fields.append("")
            continue
        text = str(value)
        text = text.replace("\\", "\\\\").replace(",", "\\,")
        text = text.replace("\n", "\\n")
        fields.append(text)
    return FIELD_SEPARATOR.join(fields)


def parse_tuple_text(line: str) -> List[str]:
    """Split one textual tuple into raw fields (inverse of format_tuple)."""
    fields: List[str] = []
    current: List[str] = []
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "\\" and i + 1 < len(line):
            pair = line[i : i + 2]
            current.append(_ESCAPED.get(pair, pair[1]))
            i += 2
            continue
        if ch == FIELD_SEPARATOR:
            fields.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    fields.append("".join(current))
    return fields


class Channel:
    """Interface: a stream of events between the engine and the world."""

    def push(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def poll(self, max_items: int = 1024) -> List[Event]:  # pragma: no cover
        raise NotImplementedError

    def pending(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def closed(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError


class InMemoryChannel(Channel):
    """A thread-safe FIFO of events.

    Events may be textual tuples (the wire format) or already-structured
    python sequences — receptors accept both, so in-process producers can
    skip serialization.
    """

    def __init__(self, name: str = "channel", capacity: Optional[int] = None):
        self.name = name
        self.capacity = capacity
        self._queue: Deque[Event] = deque()
        self._lock = threading.Lock()
        self._closed = False
        self.total_pushed = 0
        self.total_dropped = 0

    def push(self, event: Event) -> None:
        with self._lock:
            if self._closed:
                raise AdapterError(f"channel {self.name!r} is closed")
            if self.capacity is not None and len(self._queue) >= self.capacity:
                # drop-oldest policy: a full channel sheds load at the edge
                self._queue.popleft()
                self.total_dropped += 1
            self._queue.append(event)
            self.total_pushed += 1

    def push_many(self, events: Sequence[Event]) -> None:
        for event in events:
            self.push(event)

    def poll(self, max_items: int = 1024) -> List[Event]:
        with self._lock:
            out: List[Event] = []
            while self._queue and len(out) < max_items:
                out.append(self._queue.popleft())
            return out

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InMemoryChannel({self.name!r}, pending={self.pending()}, "
            f"pushed={self.total_pushed})"
        )
