"""TCP adapters: the paper's UDP/TCP communication channels.

``TcpIngressServer`` accepts client connections and feeds received lines
(textual flat tuples, newline-delimited) into a channel a receptor reads.
``TcpEgressClient`` is the matching delivery side: it subscribes to an
emitter and writes result tuples to a remote socket.

These exist to honour the paper's periphery ("communication protocols
range from simple messages ... transported using either UDP or TCP/IP");
tests exercise them over localhost.
"""

from __future__ import annotations

import socket
import threading
from typing import List, Optional, Tuple

from ..errors import AdapterError
from .channels import Channel, InMemoryChannel

__all__ = ["TcpIngressServer", "TcpEgressClient"]


class TcpIngressServer:
    """Listens on a TCP port; each received line becomes a channel event."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 channel: Optional[Channel] = None):
        self.channel = channel or InMemoryChannel("tcp_ingress")
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        self.address: Tuple[str, int] = self._sock.getsockname()
        self._running = threading.Event()
        self._threads: List[threading.Thread] = []
        self.connections_accepted = 0

    def start(self) -> None:
        if self._running.is_set():
            raise AdapterError("ingress server already running")
        self._running.set()
        accept_thread = threading.Thread(
            target=self._accept_loop, name="tcp-ingress-accept", daemon=True
        )
        self._threads.append(accept_thread)
        accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.connections_accepted += 1
            worker = threading.Thread(
                target=self._reader,
                args=(conn,),
                name="tcp-ingress-conn",
                daemon=True,
            )
            self._threads.append(worker)
            worker.start()

    def _reader(self, conn: socket.socket) -> None:
        buffer = b""
        conn.settimeout(0.2)
        with conn:
            while self._running.is_set():
                try:
                    chunk = conn.recv(4096)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    text = line.decode("utf-8", errors="replace").strip("\r")
                    if text:
                        self.channel.push(text)

    def stop(self) -> None:
        self._running.clear()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
        for thread in self._threads:
            thread.join(timeout=2)
        self._threads = []


class TcpEgressClient:
    """Writes delivered result rows to a TCP endpoint, one line per tuple.

    Usable directly as an emitter subscriber::

        emitter.subscribe(TcpEgressClient(host, port))
    """

    def __init__(self, host: str, port: int, connect_timeout: float = 5.0):
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._lock = threading.Lock()
        self.rows_sent = 0

    def __call__(self, rows) -> None:
        from .channels import format_tuple

        payload = "".join(format_tuple(row) + "\n" for row in rows)
        with self._lock:
            try:
                self._sock.sendall(payload.encode("utf-8"))
            except OSError as exc:
                raise AdapterError(f"egress send failed: {exc}") from exc
            self.rows_sent += len(rows)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass
