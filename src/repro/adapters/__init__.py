"""Adapters at the DataCell periphery: channels, replay, generators, TCP."""

from .channels import Channel, InMemoryChannel, format_tuple, parse_tuple_text
from .replay import ReplaySource, load_csv_rows

__all__ = [
    "Channel",
    "InMemoryChannel",
    "format_tuple",
    "parse_tuple_text",
    "ReplaySource",
    "load_csv_rows",
]
