"""Stream replay: feed recorded data (CSV files, row lists) into channels.

Stream benchmarks and the Linear Road harness replay a recorded event log
at a controlled rate.  :class:`ReplaySource` pushes rows into a channel
either all at once, in fixed-size batches, or paced against a clock (rows
carry logical timestamps; the source releases a row when the clock passes
its timestamp — with a :class:`~repro.core.clock.LogicalClock` the driver
controls time explicitly, making replays deterministic).
"""

from __future__ import annotations

import csv
import io
from typing import Any, List, Optional, Sequence, Tuple

from ..core.clock import Clock
from ..errors import AdapterError
from .channels import Channel

__all__ = ["ReplaySource", "load_csv_rows"]


def load_csv_rows(
    path_or_text: str,
    has_header: bool = True,
    from_text: bool = False,
) -> List[List[str]]:
    """Load raw string rows from a CSV file (or inline text)."""
    if from_text:
        handle = io.StringIO(path_or_text)
        rows = list(csv.reader(handle))
    else:
        with open(path_or_text, newline="") as handle:
            rows = list(csv.reader(handle))
    if has_header and rows:
        rows = rows[1:]
    return rows


class ReplaySource:
    """Replays a timestamped event log into a channel.

    ``events`` is a sequence of ``(timestamp, row)`` pairs sorted by
    timestamp (validated).  :meth:`pump` pushes every event whose
    timestamp has been reached by the clock; :meth:`pump_all` ignores
    time and drains everything.
    """

    def __init__(
        self,
        events: Sequence[Tuple[float, Sequence[Any]]],
        channel: Channel,
        clock: Optional[Clock] = None,
    ):
        last = float("-inf")
        for stamp, _ in events:
            if stamp < last:
                raise AdapterError("replay events must be time-ordered")
            last = stamp
        self.events = list(events)
        self.channel = channel
        self.clock = clock
        self._cursor = 0

    @property
    def remaining(self) -> int:
        return len(self.events) - self._cursor

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self.events)

    def pump(self, now: Optional[float] = None) -> int:
        """Push all events due at (or before) ``now``; returns how many.

        ``now`` defaults to the clock's current time; a clock or explicit
        time is required for paced replay.
        """
        if now is None:
            if self.clock is None:
                raise AdapterError("paced replay needs a clock or a time")
            now = self.clock.now()
        pushed = 0
        while self._cursor < len(self.events):
            stamp, row = self.events[self._cursor]
            if stamp > now:
                break
            self.channel.push(tuple(row))
            self._cursor += 1
            pushed += 1
        return pushed

    def pump_batch(self, max_events: int) -> int:
        """Push up to ``max_events`` regardless of time; returns how many."""
        pushed = 0
        while self._cursor < len(self.events) and pushed < max_events:
            _, row = self.events[self._cursor]
            self.channel.push(tuple(row))
            self._cursor += 1
            pushed += 1
        return pushed

    def pump_all(self) -> int:
        """Push every remaining event."""
        return self.pump_batch(len(self.events))

    def next_timestamp(self) -> Optional[float]:
        """Timestamp of the next pending event (None when exhausted)."""
        if self.exhausted:
            return None
        return self.events[self._cursor][0]
