"""Windowed query processing (paper §3.1).

Window queries delimit the unbounded stream so blocking operators stay
feasible.  The DataCell does **not** add windowed operators to the kernel;
windows are realized at the query-plan/scheduling level, on top of plain
relational primitives — exactly the paper's design goal.

Two evaluation routes are implemented, as §3.1 describes:

``re-evaluation``
    data is processed one full window at a time; on every slide the query
    is evaluated from scratch on the new window extent
    (:class:`ReEvalWindowAggregatePlan`).

``incremental``
    the basic-window model (Zhu & Shasha [25]): a window of size ``w``
    sliding by ``s`` is split into basic windows of ``bw = gcd(w, s)``
    tuples (or seconds).  Each basic window keeps a mergeable *summary*
    (:class:`~repro.kernel.aggregate.AggregateState`); sliding drops
    expired summaries and merges the survivors — already-seen tuples are
    never rescanned (:class:`IncrementalWindowAggregatePlan`).

Both plans expose ``values_processed`` / ``merges_done`` counters so the
benchmarks can report *work*, not just wall-time, and property tests assert
the two routes produce identical answers.

Window boundaries are aligned to the stream origin: count window ``k``
covers tuple positions ``[k*slide, k*slide + size)``; time window ``k``
covers ``[k*slide, k*slide + size)`` seconds.  A time window is considered
complete once the watermark (max ingest timestamp seen) passes its end.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DataCellError
from ..kernel.aggregate import AggregateState
from ..kernel.bat import bat_from_values
from ..kernel.mal import ResultSet
from ..kernel.types import AtomType
from .basket import BasketSnapshot, TIME_COLUMN
from .factory import ContinuousPlan, PlanOutput

__all__ = [
    "WindowMode",
    "WindowSpec",
    "ReEvalWindowAggregatePlan",
    "IncrementalWindowAggregatePlan",
    "SlidingWindowJoinPlan",
    "basic_window_width",
]


class WindowMode(enum.Enum):
    COUNT = "count"
    TIME = "time"


@dataclass(frozen=True)
class WindowSpec:
    """A (sliding) window definition.

    ``slide == size`` is a tumbling window.  For COUNT mode both values are
    tuple counts (ints); for TIME mode they are seconds.
    """

    mode: WindowMode
    size: float
    slide: Optional[float] = None

    def __post_init__(self) -> None:
        slide = self.size if self.slide is None else self.slide
        object.__setattr__(self, "slide", slide)
        if self.size <= 0 or slide <= 0:
            raise DataCellError("window size and slide must be positive")
        if slide > self.size:
            raise DataCellError(
                "slide larger than window size would skip tuples"
            )
        if self.mode is WindowMode.COUNT:
            if int(self.size) != self.size or int(slide) != slide:
                raise DataCellError("count windows need integer size/slide")

    @property
    def tumbling(self) -> bool:
        return self.slide == self.size

    def window_start(self, k: int) -> float:
        return k * self.slide

    def window_end(self, k: int) -> float:
        return k * self.slide + self.size


def basic_window_width(spec: WindowSpec) -> float:
    """The basic-window width ``bw = gcd(size, slide)``.

    For TIME mode the gcd is computed on microsecond-scaled integers so
    fractional second sizes still partition exactly.
    """
    if spec.mode is WindowMode.COUNT:
        return float(math.gcd(int(spec.size), int(spec.slide)))
    scale = 1_000_000
    a = int(round(spec.size * scale))
    b = int(round(spec.slide * scale))
    return math.gcd(a, b) / scale


def _aggregate_atom(name: str) -> AtomType:
    return AtomType.LNG if name in ("count", "count_star") else AtomType.DBL


class _WindowAggregateBase(ContinuousPlan):
    """Shared buffering/emission logic of the two evaluation routes."""

    def __init__(
        self,
        input_basket: str,
        value_column: str,
        aggregates: Sequence[str],
        spec: WindowSpec,
        output_basket: str,
        group_column: Optional[str] = None,
    ):
        bad = [a for a in aggregates if a not in
               ("sum", "count", "count_star", "avg", "min", "max")]
        if bad:
            raise DataCellError(f"unknown window aggregates: {bad}")
        if not aggregates:
            raise DataCellError("window plan needs at least one aggregate")
        self.input_basket = input_basket.lower()
        self.value_column = value_column.lower()
        self.aggregates = list(aggregates)
        self.spec = spec
        self.output_basket = output_basket.lower()
        self.group_column = group_column.lower() if group_column else None
        self.next_window = 0
        self.values_processed = 0  # tuples touched by aggregation work
        self.merges_done = 0  # summary merges (incremental route only)
        self.windows_emitted = 0

    # ------------------------------------------------------------------
    # durability: window buffers are exactly the factory saved-state the
    # paper's co-routine model carries between activations, so they are
    # what a checkpoint must capture.  The whole __dict__ is pickled —
    # numpy buffers, _BasicWindow summaries (plain __slots__ objects),
    # and counters round-trip; config fields travel too but the restored
    # plan was rebuilt with identical parameters, so they only re-assert
    # what is already true.
    def export_state(self) -> bytes:
        import pickle

        return pickle.dumps(self.__dict__, protocol=4)

    def import_state(self, blob: Optional[bytes]) -> None:
        if blob is None:
            raise DataCellError(
                f"window plan {self.describe()!r} expected saved state in "
                "the checkpoint but found none"
            )
        import pickle

        self.__dict__.update(pickle.loads(blob))

    def nbytes(self) -> int:
        """Estimate of the buffered window state (same scope as
        :meth:`export_state`): numpy buffers, per-window summaries,
        group lists.  Config fields contribute ~nothing."""
        from ..obs.resources import estimate_nbytes

        return estimate_nbytes(self.__dict__)

    # ------------------------------------------------------------------
    def output_schema(self) -> List[Tuple[str, AtomType]]:
        """Schema of the rows this plan emits (window id, group?, aggs)."""
        cols: List[Tuple[str, AtomType]] = [("window_id", AtomType.LNG)]
        if self.group_column:
            cols.append((self.group_column, AtomType.STR))
        for name in self.aggregates:
            cols.append((name, _aggregate_atom(name)))
        return cols

    def _extract(self, snap: BasketSnapshot):
        """Pull (values, nil mask, times, groups) from a snapshot."""
        value_bat = snap.column(self.value_column)
        nils = value_bat.nil_positions()
        values = np.where(nils, 0.0, value_bat.tail.astype(np.float64))
        times = snap.column(TIME_COLUMN).tail.astype(np.float64)
        if self.group_column:
            groups = [
                None if g is None else str(g)
                for g in snap.column(self.group_column).python_list()
            ]
        else:
            groups = None
        return values, nils, times, groups

    def _result_from_rows(self, rows: List[Tuple[Any, ...]]) -> PlanOutput:
        if not rows:
            return PlanOutput()
        schema = self.output_schema()
        columns = list(zip(*rows))
        bats = [
            bat_from_values(atom, list(col))
            for (name, atom), col in zip(schema, columns)
        ]
        result = ResultSet([name for name, _ in schema], bats)
        return PlanOutput(results={self.output_basket: result})

    def tuples_needed(self) -> Optional[int]:
        """How many more tuples complete the next window (COUNT mode).

        The scheduler's window trigger (paper §3.1: "trigger the evaluation
        of the proper factories when there are enough tuples to fill one or
        more windows") polls this to gate factory activation.  ``None``
        means the plan cannot tell (TIME mode: the trigger watches
        timestamps instead).
        """
        return None


class ReEvalWindowAggregatePlan(_WindowAggregateBase):
    """Route (a): full re-evaluation of every window extent.

    Keeps the raw tuples of all open windows buffered; each emission scans
    the complete window from scratch, which is exactly what a plain DBMS
    plan would do when re-run — no state is reused between slides.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._values: List[np.ndarray] = []
        self._nils: List[np.ndarray] = []
        self._times: List[np.ndarray] = []
        self._groups: List[List[Optional[str]]] = []
        self._offset = 0  # stream position / time of the buffer head

    # -- buffering ------------------------------------------------------
    def _buffered(self):
        values = (
            np.concatenate(self._values)
            if self._values
            else np.empty(0, dtype=np.float64)
        )
        nils = (
            np.concatenate(self._nils)
            if self._nils
            else np.empty(0, dtype=bool)
        )
        times = (
            np.concatenate(self._times)
            if self._times
            else np.empty(0, dtype=np.float64)
        )
        groups: Optional[List[Optional[str]]]
        if self.group_column:
            groups = [g for chunk in self._groups for g in chunk]
        else:
            groups = None
        return values, nils, times, groups

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots[self.input_basket]
        if snap.count:
            values, nils, times, groups = self._extract(snap)
            self._values.append(values)
            self._nils.append(nils)
            self._times.append(times)
            if groups is not None:
                self._groups.append(groups)
        rows: List[Tuple[Any, ...]] = []
        while True:
            row_batch = self._try_emit()
            if row_batch is None:
                break
            rows.extend(row_batch)
        return self._result_from_rows(rows)

    # -- emission -------------------------------------------------------
    def _try_emit(self) -> Optional[List[Tuple[Any, ...]]]:
        values, nils, times, groups = self._buffered()
        k = self.next_window
        if self.spec.mode is WindowMode.COUNT:
            start = int(self.spec.window_start(k)) - self._offset
            end = int(self.spec.window_end(k)) - self._offset
            if len(values) < end:
                return None
            in_window = slice(start, end)
        else:
            if len(times) == 0:
                return None
            watermark = float(times.max())
            if watermark < self.spec.window_end(k):
                return None
            mask = (times >= self.spec.window_start(k)) & (
                times < self.spec.window_end(k)
            )
            in_window = np.flatnonzero(mask)
        rows = self._evaluate_window(k, values, nils, groups, in_window)
        self.next_window += 1
        self._expire()
        self.windows_emitted += 1
        return rows

    def _evaluate_window(self, k, values, nils, groups, in_window):
        wvals = values[in_window]
        wnils = nils[in_window]
        self.values_processed += int(len(wvals))
        if groups is None:
            state = AggregateState()
            state.add_array(wvals[~wnils])
            star = int(len(wvals))
            return [self._row(k, None, state, star)]
        if isinstance(in_window, slice):
            wgroups = groups[in_window]
        else:
            wgroups = [groups[i] for i in in_window]
        per_group: Dict[Optional[str], AggregateState] = {}
        stars: Dict[Optional[str], int] = {}
        for value, nil, grp in zip(wvals, wnils, wgroups):
            stars[grp] = stars.get(grp, 0) + 1
            state = per_group.setdefault(grp, AggregateState())
            if not nil:
                state.add_value(float(value))
        return [
            self._row(k, grp, per_group[grp], stars[grp])
            for grp in per_group
        ]

    def _row(self, k, group, state: AggregateState, star: int):
        row: List[Any] = [k]
        if self.group_column:
            row.append(group)
        for name in self.aggregates:
            if name == "count_star":
                row.append(star)
            else:
                value = state.result(name)
                if name == "count":
                    row.append(value)
                else:
                    row.append(None if value is None else float(value))
        return tuple(row)

    def _expire(self) -> None:
        """Drop buffer prefix no future window can reference."""
        if self.spec.mode is WindowMode.COUNT:
            keep_from = int(self.spec.window_start(self.next_window))
            drop = keep_from - self._offset
            if drop <= 0:
                return
            values, nils, times, groups = self._buffered()
            self._values = [values[drop:]]
            self._nils = [nils[drop:]]
            self._times = [times[drop:]]
            if groups is not None:
                self._groups = [groups[drop:]]
            self._offset = keep_from
        else:
            horizon = self.spec.window_start(self.next_window)
            values, nils, times, groups = self._buffered()
            keep = times >= horizon
            self._values = [values[keep]]
            self._nils = [nils[keep]]
            self._times = [times[keep]]
            if groups is not None:
                self._groups = [
                    [g for g, k_ in zip(groups, keep) if k_]
                ]

    def tuples_needed(self) -> Optional[int]:
        if self.spec.mode is not WindowMode.COUNT:
            return None
        values, _, _, _ = self._buffered()
        end = int(self.spec.window_end(self.next_window)) - self._offset
        return max(0, end - len(values))

    def describe(self) -> str:
        return f"reeval-window({self.aggregates}, {self.spec})"


class _BasicWindow:
    """One ``bw`` with its summary (grouped or plain) and tuple count."""

    __slots__ = ("state", "groups", "stars", "count", "end")

    def __init__(self, grouped: bool, end: float):
        self.state = None if grouped else AggregateState()
        self.groups: Optional[Dict[Optional[str], AggregateState]] = (
            {} if grouped else None
        )
        self.stars: Dict[Optional[str], int] = {}
        self.count = 0
        self.end = end  # COUNT: position end; TIME: timestamp end


class IncrementalWindowAggregatePlan(_WindowAggregateBase):
    """Route (b): basic-window incremental evaluation.

    Every tuple is folded into exactly one basic-window summary when it
    arrives; emissions merge ``size/bw`` summaries without revisiting any
    tuple.  ``values_processed`` therefore grows with the *stream*, not
    with ``windows × size`` as in re-evaluation.
    """

    def __init__(self, *args, bw_override: Optional[float] = None, **kwargs):
        super().__init__(*args, **kwargs)
        natural = basic_window_width(self.spec)
        if bw_override is None:
            self.bw = natural
        else:
            # ablation hook: any divisor of the natural bw partitions
            # windows exactly (more summaries, finer granularity)
            ratio = natural / bw_override
            if bw_override <= 0 or abs(ratio - round(ratio)) > 1e-9:
                raise DataCellError(
                    "bw_override must evenly divide the natural basic "
                    f"window width ({natural})"
                )
            self.bw = float(bw_override)
        # A plain list with a base offset: deque random access is O(n),
        # and emission indexes size/bw slots per window — with small bw
        # that dominated the whole route.  The consumed prefix is trimmed
        # in amortized batches.
        self._complete: List[_BasicWindow] = []
        self._complete_base = 0  # index of first retained complete bw
        self._current: Optional[_BasicWindow] = None
        self._position = 0  # tuples ingested so far (COUNT mode)

    # ------------------------------------------------------------------
    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots[self.input_basket]
        if snap.count:
            values, nils, times, groups = self._extract(snap)
            self.values_processed += int(len(values))
            if self.spec.mode is WindowMode.COUNT:
                self._ingest_count(values, nils, groups)
            else:
                self._ingest_time(values, nils, times, groups)
        rows: List[Tuple[Any, ...]] = []
        while True:
            batch = self._try_emit()
            if batch is None:
                break
            rows.extend(batch)
        return self._result_from_rows(rows)

    # -- ingest ---------------------------------------------------------
    def _fold(self, bw_slot: _BasicWindow, value, nil, group) -> None:
        bw_slot.count += 1
        bw_slot.stars[group] = bw_slot.stars.get(group, 0) + 1
        if self.group_column:
            state = bw_slot.groups.setdefault(group, AggregateState())
        else:
            state = bw_slot.state
        if not nil:
            state.add_value(float(value))

    def _ingest_count(self, values, nils, groups) -> None:
        width = int(self.bw)
        if groups is None:
            # vectorized fast path: fold whole bw-aligned chunks at once
            i = 0
            n = len(values)
            while i < n:
                if self._current is None:
                    self._current = _BasicWindow(
                        False, self._position + width
                    )
                space = width - self._current.count
                chunk = slice(i, min(n, i + space))
                vals = values[chunk]
                nil_chunk = nils[chunk]
                taken = len(vals)
                self._current.state.add_array(vals[~nil_chunk])
                self._current.count += taken
                self._current.stars[None] = (
                    self._current.stars.get(None, 0) + taken
                )
                self._position += taken
                i += taken
                if self._current.count == width:
                    self._complete.append(self._current)
                    self._current = None
            return
        for i in range(len(values)):
            if self._current is None:
                self._current = _BasicWindow(
                    bool(self.group_column), self._position + width
                )
            group = groups[i]
            self._fold(self._current, values[i], nils[i], group)
            self._position += 1
            if self._current.count == width:
                self._complete.append(self._current)
                self._current = None

    def _ingest_time(self, values, nils, times, groups) -> None:
        if groups is None and len(values):
            # vectorized fast path: group positions by bw slot (arrival is
            # time-ordered within a snapshot for in-order streams; fall
            # back to the scalar path when it is not)
            # exact half-open bucketing: slot i must satisfy
            # i*bw <= t < (i+1)*bw — the same rule the re-eval route's
            # mask applies, so the two routes agree tuple for tuple.
            # floor(t/bw) alone can be off by one when the division
            # rounds across an integer; correct against the products.
            slots = np.floor(times / self.bw).astype(np.int64)
            slots = np.where(times < slots * self.bw, slots - 1, slots)
            slots = np.where(
                times >= (slots + 1) * self.bw, slots + 1, slots
            )
            if np.all(slots[1:] >= slots[:-1]):
                boundaries = np.flatnonzero(np.diff(slots)) + 1
                starts = np.concatenate(([0], boundaries))
                stops = np.concatenate((boundaries, [len(values)]))
                for start, stop in zip(starts, stops):
                    end = (int(slots[start]) + 1) * self.bw
                    self._ensure_current(end)
                    vals = values[start:stop]
                    nil_chunk = nils[start:stop]
                    self._current.state.add_array(vals[~nil_chunk])
                    self._current.count += stop - start
                    self._current.stars[None] = (
                        self._current.stars.get(None, 0) + (stop - start)
                    )
                self._watermark = float(times.max())
                return
        for i in range(len(values)):
            stamp = float(times[i])
            slot = math.floor(stamp / self.bw)
            # same exact half-open correction as the vectorized path
            if stamp < slot * self.bw:
                slot -= 1
            elif stamp >= (slot + 1) * self.bw:
                slot += 1
            self._ensure_current((slot + 1) * self.bw)
            group = groups[i] if groups is not None else None
            self._fold(self._current, values[i], nils[i], group)
        self._watermark = float(times.max()) if len(times) else None

    def _append_complete(self, slot: _BasicWindow) -> None:
        """Append a completed bw, padding any slot gap with empties.

        Keeping ``_complete`` contiguous in bw-index space (entry ``i``
        always ends at ``(base+i+1)*bw``) is the invariant that makes
        window emission pure index arithmetic — and whose earlier absence
        allowed sealed-across-a-gap windows to deadlock gap synthesis.
        """
        next_end = (
            self._complete_base + len(self._complete) + 1
        ) * self.bw
        while slot.end > next_end + 1e-9:
            self._complete.append(
                _BasicWindow(bool(self.group_column), next_end)
            )
            next_end += self.bw
        self._complete.append(slot)

    def _ensure_current(self, end: float) -> None:
        """Make the open bw the one ending at ``end`` (sealing as needed).

        A tuple for an earlier, already-sealed range (out-of-order beyond
        the open bw) is folded into the open bw — a documented
        approximation; in-order streams never hit it.
        """
        if self._current is not None:
            if abs(self._current.end - end) < 1e-9 or end < self._current.end:
                return
            self._append_complete(self._current)
            self._current = None
        self._current = _BasicWindow(bool(self.group_column), end)

    def _seal_before(self, end: float) -> None:
        """Close the open bw if a later one starts (time advanced)."""
        if self._current is not None and self._current.end < end:
            self._append_complete(self._current)
            self._current = None

    # -- emission -------------------------------------------------------
    def _bw_index_range(self, k: int) -> Tuple[int, int]:
        """Absolute bw indices [first, last) making up window ``k``."""
        first = int(round(self.spec.window_start(k) / self.bw))
        last = int(round(self.spec.window_end(k) / self.bw))
        return first, last

    def _try_emit(self) -> Optional[List[Tuple[Any, ...]]]:
        k = self.next_window
        first, last = self._bw_index_range(k)
        have = self._complete_base + len(self._complete)
        if self.spec.mode is WindowMode.TIME:
            # time gaps: synthesize empty bws up to the watermark
            watermark = getattr(self, "_watermark", None)
            if watermark is None or watermark < self.spec.window_end(k):
                return None
            self._materialize_empty_up_to(last)
            have = self._complete_base + len(self._complete)
        if have < last:
            return None
        slots = self._complete[
            first - self._complete_base : last - self._complete_base
        ]
        rows = self._merge_and_emit(k, slots)
        self.next_window += 1
        self._expire()
        self.windows_emitted += 1
        return rows

    def _materialize_empty_up_to(self, last: int) -> None:
        """Insert empty summaries for time ranges with no tuples.

        ``_complete`` is contiguous by construction (`_append_complete`
        pads gaps), so synthesis is a simple extension: seal the open bw
        when its slot comes up, otherwise append an empty summary.  The
        watermark check in ``_try_emit`` guarantees no tuple for these
        ranges can still arrive.
        """
        while self._complete_base + len(self._complete) < last:
            next_end = (
                self._complete_base + len(self._complete) + 1
            ) * self.bw
            if self._current is not None and (
                self._current.end <= next_end + 1e-9
            ):
                slot = self._current
                self._current = None
                self._append_complete(slot)
            else:
                self._complete.append(
                    _BasicWindow(bool(self.group_column), next_end)
                )

    def _merge_and_emit(self, k: int, slots: List[_BasicWindow]):
        self.merges_done += max(0, len(slots) - 1)
        if not self.group_column:
            # in-place accumulation: no AggregateState churn per merge
            merged = AggregateState()
            star = 0
            for slot in slots:
                state = slot.state
                merged.count += state.count
                merged.total += state.total
                if state.minimum is not None and (
                    merged.minimum is None or state.minimum < merged.minimum
                ):
                    merged.minimum = state.minimum
                if state.maximum is not None and (
                    merged.maximum is None or state.maximum > merged.maximum
                ):
                    merged.maximum = state.maximum
                star += slot.count
            return [self._row(k, None, merged, star)]
        per_group: Dict[Optional[str], AggregateState] = {}
        stars: Dict[Optional[str], int] = {}
        for slot in slots:
            for grp, state in slot.groups.items():
                if grp in per_group:
                    per_group[grp] = per_group[grp].merge(state)
                else:
                    per_group[grp] = state
            for grp, n in slot.stars.items():
                stars[grp] = stars.get(grp, 0) + n
        return [
            self._row(k, grp, per_group[grp], stars.get(grp, 0))
            for grp in per_group
        ]

    _row = ReEvalWindowAggregatePlan._row

    def _expire(self) -> None:
        first, _ = self._bw_index_range(self.next_window)
        drop = min(first - self._complete_base, len(self._complete))
        if drop > 0 and (drop >= 256 or drop == len(self._complete)):
            # amortized prefix trim; between trims, slicing with the base
            # offset skips the logically-expired entries
            del self._complete[:drop]
            self._complete_base += drop

    def tuples_needed(self) -> Optional[int]:
        if self.spec.mode is not WindowMode.COUNT:
            return None
        end = int(self.spec.window_end(self.next_window))
        return max(0, end - self._position)

    def describe(self) -> str:
        return f"incremental-window({self.aggregates}, {self.spec}, bw={self.bw})"


class SlidingWindowJoinPlan(ContinuousPlan):
    """A symmetric incremental sliding-window equi-join of two streams.

    Each stream keeps the tuples of the last ``window`` seconds.  On
    activation, new left tuples probe the right buffer and vice versa —
    already-matched pairs are never recomputed (pipelined symmetric hash
    join).  Expired tuples are dropped by watermark.

    Output rows: ``(key, left_time, right_time)`` appended to the output
    basket, which must have schema ``(key <type>, left_time timestamp,
    right_time timestamp)``.
    """

    def __init__(
        self,
        left_basket: str,
        right_basket: str,
        left_key: str,
        right_key: str,
        window_seconds: float,
        output_basket: str,
    ):
        if window_seconds <= 0:
            raise DataCellError("join window must be positive")
        self.left_basket = left_basket.lower()
        self.right_basket = right_basket.lower()
        self.left_key = left_key.lower()
        self.right_key = right_key.lower()
        self.window = float(window_seconds)
        self.output_basket = output_basket.lower()
        self._left: Dict[Any, List[float]] = {}
        self._right: Dict[Any, List[float]] = {}
        self._watermark = -math.inf
        self.pairs_emitted = 0
        self.probes = 0

    # join buffers are factory saved-state too (see _WindowAggregateBase)
    def export_state(self) -> bytes:
        import pickle

        return pickle.dumps(self.__dict__, protocol=4)

    def import_state(self, blob: Optional[bytes]) -> None:
        if blob is None:
            raise DataCellError(
                "sliding-window join expected saved state in the "
                "checkpoint but found none"
            )
        import pickle

        self.__dict__.update(pickle.loads(blob))

    def nbytes(self) -> int:
        from ..obs.resources import estimate_nbytes

        return estimate_nbytes(self.__dict__)

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        new_left = self._pull(snapshots.get(self.left_basket), self.left_key)
        new_right = self._pull(
            snapshots.get(self.right_basket), self.right_key
        )
        rows: List[Tuple[Any, float, float]] = []
        # New left tuples probe the right buffer *before* new rights are
        # inserted, and new rights probe the left buffer *after* new lefts
        # were: new-left x old-right pairs come from the first loop,
        # (old+new)-left x new-right pairs from the second — each pair is
        # found exactly once.
        for key, stamp in new_left:
            self.probes += 1
            for rstamp in self._right.get(key, ()):
                if abs(stamp - rstamp) <= self.window:
                    rows.append((key, stamp, rstamp))
            self._left.setdefault(key, []).append(stamp)
        for key, stamp in new_right:
            self.probes += 1
            for lstamp in self._left.get(key, ()):
                if abs(stamp - lstamp) <= self.window:
                    rows.append((key, lstamp, stamp))
            self._right.setdefault(key, []).append(stamp)
        self._expire()
        self.pairs_emitted += len(rows)
        if not rows:
            return PlanOutput()
        keys, lts, rts = zip(*rows)
        key_atom = self._key_atom
        result = ResultSet(
            ["key", "left_time", "right_time"],
            [
                bat_from_values(key_atom, list(keys)),
                bat_from_values(AtomType.TIMESTAMP, list(lts)),
                bat_from_values(AtomType.TIMESTAMP, list(rts)),
            ],
        )
        return PlanOutput(results={self.output_basket: result})

    _key_atom = AtomType.LNG

    def _pull(self, snap: Optional[BasketSnapshot], key_col: str):
        if snap is None or snap.count == 0:
            return []
        keys = snap.column(key_col).python_list()
        times = snap.column(TIME_COLUMN).tail.astype(np.float64)
        if len(times):
            self._watermark = max(self._watermark, float(times.max()))
        if snap.column(key_col).atom is AtomType.STR:
            self._key_atom = AtomType.STR
        elif snap.column(key_col).atom is AtomType.DBL:
            self._key_atom = AtomType.DBL
        return [
            (k, float(t)) for k, t in zip(keys, times) if k is not None
        ]

    def _expire(self) -> None:
        horizon = self._watermark - self.window
        for buf in (self._left, self._right):
            dead = []
            for key, stamps in buf.items():
                stamps[:] = [s for s in stamps if s >= horizon]
                if not stamps:
                    dead.append(key)
            for key in dead:
                del buf[key]

    def describe(self) -> str:
        return (
            f"window-join({self.left_basket}.{self.left_key} = "
            f"{self.right_basket}.{self.right_key}, w={self.window}s)"
        )
