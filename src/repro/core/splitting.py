"""Query-plan splitting and shared factories (paper §3.2).

Two multi-query mechanisms:

``plan splitting``
    With shared baskets, a lightweight query q1 must wait for a heavy
    query q2 before the shared basket can be refilled.  Splitting inserts
    a cheap *splitter* factory that immediately copies the shared input
    into per-query staging baskets and releases it — "part of the input
    can be released as soon as possible, effectively eliminating the need
    for a fast query to wait for a slow one" (:func:`build_split_pipeline`).

``shared sub-plans``
    Queries with overlapping selection ranges are served by one shared
    factory evaluating the covering predicate once into an intermediate
    basket, which the per-query refinement factories then read as shared
    readers — sharing both the basket *and* the execution cost
    (:func:`build_shared_subplan_pipeline`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


from ..errors import DataCellError
from ..kernel.mal import ResultSet
from .basket import Basket, BasketSnapshot, TIME_COLUMN
from .clock import Clock
from .factory import (
    ConsumeMode,
    ContinuousPlan,
    Factory,
    InputBinding,
    PlanOutput,
)
from .strategies import RangeQuery, SelectPlan, StrategyNetwork

__all__ = [
    "SplitterPlan",
    "build_split_pipeline",
    "build_shared_subplan_pipeline",
]


class SplitterPlan(ContinuousPlan):
    """The cheap front factory of plan splitting: copy and release.

    Reads the shared input and appends the full content to each staging
    basket.  Its cost is one memcpy per query — orders of magnitude below
    a heavy aggregate plan — so the shared input basket is drained at
    stream speed regardless of how slow downstream queries are.
    """

    def __init__(self, input_basket: str, staging_baskets: Sequence[str]):
        if not staging_baskets:
            raise DataCellError("splitter needs at least one staging basket")
        self.input_basket = input_basket.lower()
        self.staging_baskets = [b.lower() for b in staging_baskets]
        self.tuples_copied = 0

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots[self.input_basket]
        if snap.count == 0:
            return PlanOutput()
        names = [n for n in snap.names if n != TIME_COLUMN]
        result = ResultSet(names, [snap.column(n) for n in names])
        self.tuples_copied += snap.count * len(self.staging_baskets)
        return PlanOutput(
            results={name: result for name in self.staging_baskets}
        )

    def describe(self) -> str:
        return f"splitter -> {self.staging_baskets}"


def build_split_pipeline(
    stream: Basket,
    queries: Sequence[Tuple[RangeQuery, ContinuousPlan]],
    clock: Optional[Clock] = None,
) -> StrategyNetwork:
    """Plan splitting: splitter factory + per-query staging baskets.

    ``queries`` pairs each query descriptor with the (possibly heavy) plan
    that should run on its private staging basket.  Plans must read from
    the staging basket name ``{stream}_{query}_stage`` and write to the
    output basket name ``{query}_out`` (the builder creates both and tells
    you via the returned network).  For convenience, pass ``None`` as the
    plan to get a plain :class:`SelectPlan`.
    """
    clock = clock or stream.clock
    columns = [(c.name, c.atom) for c in stream.user_columns]
    staging: List[Basket] = []
    factories: List[Factory] = []
    outputs: Dict[str, Basket] = {}
    for query, plan in queries:
        stage = Basket(f"{stream.name}_{query.name}_stage", columns, clock)
        output = Basket(f"{query.name}_out", columns, clock)
        if plan is None:
            plan = SelectPlan(query, stage.name, output.name)
        factories.append(
            Factory(
                query.name,
                plan,
                [InputBinding(stage, ConsumeMode.ALL)],
                [output],
            )
        )
        staging.append(stage)
        outputs[query.name] = output
    splitter_plan = SplitterPlan(stream.name, [b.name for b in staging])
    splitter = Factory(
        f"{stream.name}_splitter",
        splitter_plan,
        [InputBinding(stream, ConsumeMode.ALL)],
        staging,
        priority=5,  # release the shared input ahead of query work
    )
    return StrategyNetwork(stream, [splitter] + factories, outputs, [])


def build_shared_subplan_pipeline(
    stream: Basket,
    queries: Sequence[RangeQuery],
    clock: Optional[Clock] = None,
) -> StrategyNetwork:
    """Shared sub-plan: one covering selection feeds all refinements.

    The shared factory evaluates the union range ``[min(low), max(high)]``
    once; each query's refinement factory then selects its own range from
    the (much smaller) intermediate basket as a shared reader.
    """
    if not queries:
        raise DataCellError("need at least one query")
    lows = [q.low for q in queries]
    highs = [q.high for q in queries]
    if any(v is None for v in lows + highs):
        raise DataCellError(
            "shared sub-plan requires bounded ranges to build the cover"
        )
    cover = RangeQuery("cover", queries[0].column, min(lows), max(highs))
    clock = clock or stream.clock
    columns = [(c.name, c.atom) for c in stream.user_columns]
    intermediate = Basket(f"{stream.name}_cover", columns, clock)
    shared_factory = Factory(
        f"{stream.name}_cover_factory",
        SelectPlan(cover, stream.name, intermediate.name),
        [InputBinding(stream, ConsumeMode.ALL)],
        [intermediate],
        priority=5,
    )
    factories = [shared_factory]
    outputs: Dict[str, Basket] = {}
    for query in queries:
        output = Basket(f"{query.name}_out", columns, clock)
        factories.append(
            Factory(
                query.name,
                SelectPlan(query, intermediate.name, output.name),
                [InputBinding(intermediate, ConsumeMode.SHARED)],
                [output],
            )
        )
        outputs[query.name] = output
    return StrategyNetwork(stream, factories, outputs, [])
