"""Continuous-query handles: what ``submit_continuous`` returns.

A handle owns the factory, the output basket and the emitter wired for one
standing query, and gives clients a synchronous way to collect delivered
results (plus subscription hooks for push delivery).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..adapters.channels import Channel
from ..errors import DataCellError
from .basket import Basket
from .emitter import CollectingClient, Emitter
from .factory import Factory

__all__ = ["ContinuousQuery"]

Row = Tuple[Any, ...]


class ContinuousQuery:
    """A standing query registered with the DataCell.

    ``execution`` records which route the engine chose for this query
    (``"reeval"`` or ``"incremental"``); ``weighted`` is True when the
    output rows carry a trailing ``dc_weight`` column (+1 insert / −1
    retract) — :meth:`fetch_integrated` folds such a delta stream back
    into the current multiset.
    """

    execution = "reeval"
    weighted = False

    def __init__(
        self,
        name: str,
        sql: Optional[str],
        factory: Factory,
        output_basket: Basket,
        emitter: Emitter,
        collector: CollectingClient,
        engine: "Any",
    ):
        self.name = name
        self.sql = sql
        self.factory = factory
        self.output_basket = output_basket
        self.emitter = emitter
        self._collector = collector
        self._engine = engine
        self.cancelled = False

    # ------------------------------------------------------------------
    def fetch(self) -> List[Row]:
        """Drain and return the rows delivered since the last fetch."""
        rows = self._collector.rows
        self._collector.rows = []
        return rows

    def peek(self) -> List[Row]:
        """Delivered-but-unfetched rows, without draining."""
        return list(self._collector.rows)

    def fetch_integrated(self) -> List[Row]:
        """The integrated (current) result of a weighted delta stream.

        Drains newly delivered weighted rows into a persistent Z-set and
        returns the accumulated multiset — i.e. what a one-shot query
        over everything consumed so far would answer.  For unweighted
        queries this raises: plain streams have no retraction column to
        integrate.
        """
        if not self.weighted:
            raise DataCellError(
                f"query {self.name!r} does not emit weighted deltas"
            )
        from ..incremental.zset import ZSet

        if not hasattr(self, "_integrated"):
            self._integrated = ZSet()
        for row in self.fetch():
            self._integrated.add(tuple(row[:-1]), int(row[-1]))
        return self._integrated.to_rows()

    def subscribe(self, client: Callable[[List[Row]], None]) -> None:
        """Register a push subscriber (called with each delivery batch)."""
        self.emitter.subscribe(client)

    def subscribe_channel(self, channel: Channel) -> None:
        """Deliver results into a channel in the textual wire format."""
        self.emitter.subscribe_channel(channel)

    def cancel(self) -> None:
        """Unregister the query from the engine's scheduler."""
        if self.cancelled:
            return
        self._engine.remove_continuous(self)
        self.cancelled = True

    # ------------------------------------------------------------------
    @property
    def results_delivered(self) -> int:
        return self.emitter.total_delivered

    @property
    def activations(self) -> int:
        return self.factory.activations

    def explain(self) -> str:
        """Human-readable plan (MAL text for compiled queries)."""
        return self.factory.plan.describe()

    def program(self) -> Optional[Any]:
        """The compiled MAL program, if this query runs one.

        Hand-built plans (window aggregates, callables) have no program
        and return ``None``.
        """
        compiled = getattr(self.factory.plan, "compiled", None)
        return None if compiled is None else compiled.program

    def explain_analyze(self) -> str:
        """The annotated plan tree: cumulative time/calls/rows per
        operator, aggregated from the interpreter's opcode timings over
        every activation so far."""
        render = getattr(self.factory.plan, "render_analyze", None)
        if render is not None:
            # incremental circuit plans render their own analysis
            # (per-stage MAL timings + circuit state footprint)
            return render()
        program = self.program()
        if program is None:
            return (
                f"continuous query {self.name}\n"
                f"  (hand-built plan, no MAL program: "
                f"{self.factory.plan.describe()})"
            )
        return program.render_analyze()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ContinuousQuery({self.name!r}, delivered={self.results_delivered})"
