"""Emitters — the delivery edge of the DataCell (paper §2.1).

An emitter picks up result tuples prepared by the kernel (i.e. appended to
an output basket by a factory) and delivers them to the clients subscribed
to that query result.  Delivery empties the output basket: the emitter is
the final Petri-net transition of the query chain.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from ..adapters.channels import Channel, format_tuple
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.spans import SpanRecorder
from .basket import Basket, TIME_COLUMN
from .factory import ActivationResult

__all__ = ["Emitter", "CollectingClient"]

Row = Tuple[Any, ...]
ClientCallback = Callable[[List[Row]], None]


class CollectingClient:
    """A trivial client that accumulates delivered rows (tests, examples)."""

    def __init__(self) -> None:
        self.rows: List[Row] = []
        self.deliveries = 0

    def __call__(self, rows: List[Row]) -> None:
        self.rows.extend(rows)
        self.deliveries += 1


class Emitter:
    """Delivers an output basket's content to subscribed clients.

    Clients are callables receiving a list of row tuples; channels can
    also subscribe, in which case rows are serialized to the textual wire
    format.  The implicit ``dc_time`` column is stripped unless
    ``include_time=True``.
    """

    def __init__(
        self,
        name: str,
        source: Basket,
        include_time: bool = False,
        batch_size: Optional[int] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanRecorder] = None,
        priority: int = -10,
    ):
        self.name = name
        self.source = source
        self.include_time = include_time
        self.batch_size = batch_size
        self.priority = priority  # emitters run after queries by default
        # durability: the highest source sequence number ever delivered.
        # With a wal_sink attached it is logged (under the source lock)
        # on every activation; after recovery it suppresses re-delivery
        # of rows the deterministic replay regenerates — the
        # exactly-once mechanism.  -1 = nothing delivered yet.
        self.high_water_seq = -1
        self.wal_sink = None
        # subscriber lists are copy-on-write under _sub_lock: activate()
        # reads one immutable snapshot per firing, so a network session
        # may subscribe/unsubscribe concurrently with deliveries without
        # ever mutating a list a firing is iterating
        self._sub_lock = threading.Lock()
        self._clients: List[ClientCallback] = []
        self._channels: List[Channel] = []
        self.total_delivered = 0
        self.activations = 0
        self.channels_detached = 0
        self.deliveries_dropped = 0
        self.metrics = metrics if metrics is not None else default_registry()
        self.tracer = tracer
        self._tracing = tracer is not None and tracer.enabled
        self._m_delivered = self.metrics.counter(
            "datacell_emitter_delivered_total",
            "Result rows delivered to subscribers",
            ("emitter",),
        ).labels(name)
        # labeled by the source basket: a continuous query's end-to-end
        # latency lives on its output basket (``<query>_out``)
        self._m_latency = self.metrics.histogram(
            "datacell_query_latency_seconds",
            "Monotonic insert-to-emit latency of delivered tuples",
            ("query",),
        ).labels(source.name)
        self._m_dropped = self.metrics.counter(
            "datacell_emitter_dropped_total",
            "Rows shed by subscriber-side bounded queues instead of "
            "delivered",
            ("emitter",),
        ).labels(name)
        self._measure_latency = self.metrics.enabled

    # ------------------------------------------------------------------
    def subscribe(self, client: ClientCallback) -> None:
        """Add a callback client."""
        with self._sub_lock:
            self._clients = self._clients + [client]

    def subscribe_channel(self, channel: Channel) -> None:
        """Add a channel client (textual delivery)."""
        with self._sub_lock:
            self._channels = self._channels + [channel]

    def unsubscribe(self, client: ClientCallback) -> bool:
        """Remove a callback client; True iff it was subscribed.

        Safe while firings are in flight: a firing that already took its
        subscriber snapshot may deliver one final batch to the removed
        client; no later firing will.
        """
        with self._sub_lock:
            if client not in self._clients:
                return False
            remaining = list(self._clients)
            remaining.remove(client)
            self._clients = remaining
            return True

    def unsubscribe_channel(self, channel: Channel) -> bool:
        """Remove a channel client; True iff it was subscribed."""
        with self._sub_lock:
            if channel not in self._channels:
                return False
            remaining = list(self._channels)
            remaining.remove(channel)
            self._channels = remaining
            return True

    def note_dropped(self, count: int) -> None:
        """Subscriber-side drop accounting (a bounded client queue shed
        ``count`` rows instead of delivering them)."""
        self.deliveries_dropped += count
        self._m_dropped.inc(count)

    @property
    def subscriber_count(self) -> int:
        return len(self._clients) + len(self._channels)

    # ------------------------------------------------------------------
    def enabled(self) -> bool:
        """Fires when results are waiting in the source basket."""
        return self.source.count >= max(1, self.source.min_count)

    def activate(self) -> ActivationResult:
        """Consume waiting results and fan them out to all subscribers."""
        started = time.perf_counter()
        fresh_positions: Optional[np.ndarray] = None
        with self.source.lock:
            snapshot = self.source.snapshot()
            self.source.consume_all()
            if snapshot.count and (
                self.wal_sink is not None or self.high_water_seq >= 0
            ):
                # replayed rows at or below the recovered high-water mark
                # were delivered before the crash: drop them here, inside
                # the lock, so the mark and the consumption stay atomic
                fresh = snapshot.seqs > self.high_water_seq
                if not fresh.all():
                    fresh_positions = np.flatnonzero(fresh)
                self.high_water_seq = max(
                    self.high_water_seq, int(snapshot.seqs.max())
                )
                if self.wal_sink is not None:
                    self.wal_sink.log_emit(self.name, self.high_water_seq)
        token = snapshot.first_token() if self._tracing else 0
        span = (
            self.tracer.begin_stage(
                self.name, "emitter", token, rows=snapshot.count
            )
            if token
            else None
        )
        rows = self._project(snapshot, fresh_positions)
        clients, channels = self._clients, self._channels
        for client in clients:
            client(rows)
        for channel in channels:
            if channel.closed:
                # a dead peer (disconnected session, closed adapter)
                # detaches instead of poisoning every later firing
                if self.unsubscribe_channel(channel):
                    self.channels_detached += 1
                continue
            for row in rows:
                channel.push(format_tuple(row))
        if span is not None:
            self.tracer.end_stage(span, delivered=len(rows))
            self.tracer.close_root(token, emitter=self.name)
        if snapshot.count and self._measure_latency:
            # insert→emit latency: monotonic now minus each tuple's
            # (propagated) monotonic origin stamp — immune to wall jumps
            self._m_latency.observe_many(
                time.monotonic() - snapshot.monos
            )
        self.activations += 1
        self.total_delivered += len(rows)
        self._m_delivered.inc(len(rows))
        return ActivationResult(
            fired=True,
            tuples_in=snapshot.count,
            tuples_out=len(rows) * max(1, self.subscriber_count),
            consumed=snapshot.count,
            elapsed=time.perf_counter() - started,
        )

    def _project(
        self, snapshot, positions: Optional[np.ndarray] = None
    ) -> List[Row]:
        """Snapshot → python rows; ``positions`` restricts to a subset
        (recovery's fresh-rows filter).  ``None`` keeps everything —
        the common case pays no indexing cost."""
        from ..kernel.types import python_value

        keep = [
            (name, bat)
            for name, bat in zip(snapshot.names, snapshot.bats)
            if self.include_time or name != TIME_COLUMN
        ]
        if not keep:
            return []
        cols = [
            [
                python_value(bat.atom, v)
                for v in (
                    bat.tail if positions is None else bat.tail[positions]
                )
            ]
            for _, bat in keep
        ]
        return list(zip(*cols)) if snapshot.count else []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Emitter({self.name!r} <- {self.source.name!r}, "
            f"subscribers={self.subscriber_count})"
        )
