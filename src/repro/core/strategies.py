"""Processing strategies: how factories and baskets interact (paper §2.5).

Three strategies from the paper, each materialized as a builder that wires
baskets, factories and auxiliary transitions into a runnable network:

``separate baskets``
    maximum independence — each query owns private input/output baskets, at
    the cost of replicating every incoming tuple into each private basket
    (:func:`build_separate_pipeline`, using :class:`ReplicatorTransition`).

``shared baskets``
    one basket per stream attribute; all interested factories read it as
    registered *shared readers* and a tuple is physically removed only
    after every reader saw it (:func:`build_shared_pipeline`).

``disjoint chaining``
    queries over disjoint ranges of the same attribute are ordered in a
    chain; each query removes its qualifying tuples and passes the
    leftovers on, so later queries inspect fewer tuples
    (:func:`build_chained_pipeline`, using :class:`ChainedSelectPlan`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DataCellError
from ..kernel.join import projection
from ..kernel.mal import ResultSet
from ..kernel.select import range_select
from ..kernel.types import AtomType
from .basket import Basket, BasketSnapshot, TIME_COLUMN
from .clock import Clock
from .factory import (
    ActivationResult,
    ConsumeMode,
    ContinuousPlan,
    Factory,
    InputBinding,
    PlanOutput,
)

__all__ = [
    "RangeQuery",
    "SelectPlan",
    "ChainedSelectPlan",
    "ReplicatorTransition",
    "StrategyNetwork",
    "build_separate_pipeline",
    "build_shared_pipeline",
    "build_chained_pipeline",
]


@dataclass(frozen=True)
class RangeQuery:
    """A continuous range selection — the workhorse of the strategy benches.

    SQL shape: ``select * from [select * from S] as x where x.column
    between low and high``.
    """

    name: str
    column: str
    low: Optional[float] = None
    high: Optional[float] = None


class SelectPlan(ContinuousPlan):
    """Project all user columns of the tuples matching a range predicate."""

    def __init__(self, query: RangeQuery, input_basket: str, output_basket: str):
        self.query = query
        self.input_basket = input_basket.lower()
        self.output_basket = output_basket.lower()
        self.tuples_scanned = 0

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots[self.input_basket]
        if snap.count == 0:
            return PlanOutput()
        self.tuples_scanned += snap.count
        column = snap.column(self.query.column)
        cands = range_select(column, self.query.low, self.query.high)
        names = [n for n in snap.names if n != TIME_COLUMN]
        bats = [projection(cands, snap.column(n)) for n in names]
        return PlanOutput(
            results={self.output_basket: ResultSet(names, bats)}
        )

    def describe(self) -> str:
        q = self.query
        return f"select {q.column} in [{q.low}, {q.high}]"


class ChainedSelectPlan(ContinuousPlan):
    """A link of the disjoint-chaining strategy.

    Qualifying tuples go to the query's result basket; the rest are passed
    down the chain through the leftover basket ("all we need is an extra
    basket between q1 and q2 so that q2 runs only after q1").  The final
    link has no leftover basket and simply drops non-qualifying tuples.
    """

    def __init__(
        self,
        query: RangeQuery,
        input_basket: str,
        output_basket: str,
        leftover_basket: Optional[str] = None,
    ):
        self.query = query
        self.input_basket = input_basket.lower()
        self.output_basket = output_basket.lower()
        self.leftover_basket = (
            leftover_basket.lower() if leftover_basket else None
        )
        self.tuples_scanned = 0

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        snap = snapshots[self.input_basket]
        if snap.count == 0:
            return PlanOutput()
        self.tuples_scanned += snap.count
        column = snap.column(self.query.column)
        hit = range_select(column, self.query.low, self.query.high)
        names = [n for n in snap.names if n != TIME_COLUMN]
        results = {
            self.output_basket: ResultSet(
                names, [projection(hit, snap.column(n)) for n in names]
            )
        }
        if self.leftover_basket is not None:
            miss = range_select(
                column, self.query.low, self.query.high, anti=True
            )
            # anti-select drops NULLs; keep them flowing down the chain
            nil_pos = np.flatnonzero(column.nil_positions()).astype(np.int64)
            miss = np.union1d(miss, nil_pos)
            results[self.leftover_basket] = ResultSet(
                names, [projection(miss, snap.column(n)) for n in names]
            )
        return PlanOutput(results=results)

    def describe(self) -> str:
        return f"chained {self.query.name}"


class ReplicatorTransition:
    """Copies every tuple of a source basket into k private baskets.

    This is the explicit cost of the *separate baskets* strategy: the
    stream is replicated once per interested query.
    """

    def __init__(self, name: str, source: Basket, targets: Sequence[Basket]):
        if not targets:
            raise DataCellError("replicator needs at least one target")
        self.name = name
        self.source = source
        self.targets = list(targets)
        self.priority = 5
        self.activations = 0
        self.tuples_copied = 0

    def enabled(self) -> bool:
        return self.source.count >= max(1, self.source.min_count)

    def activate(self) -> ActivationResult:
        started = time.perf_counter()
        with self.source.lock:
            snap = self.source.snapshot()
            self.source.consume_all()
        names = [n for n in snap.names if n != TIME_COLUMN]
        result = ResultSet(
            names, [snap.column(n) for n in names]
        )
        # propagate the earliest monotonic origin stamp so end-to-end
        # latency survives the replication hop
        mono = (
            float(snap.monos.min())
            if snap.count and self.source._stamping
            else None
        )
        for basket in self.targets:
            basket.append_result(result, mono=mono)
        self.activations += 1
        self.tuples_copied += snap.count * len(self.targets)
        return ActivationResult(
            fired=True,
            tuples_in=snap.count,
            tuples_out=snap.count * len(self.targets),
            consumed=snap.count,
            elapsed=time.perf_counter() - started,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        outs = ", ".join(b.name for b in self.targets)
        return f"Replicator({self.source.name!r} -> [{outs}])"


@dataclass
class StrategyNetwork:
    """What a strategy builder wired together."""

    stream_basket: Basket
    factories: List[Factory]
    output_baskets: Dict[str, Basket]
    extra_transitions: List[object]

    def all_transitions(self) -> List[object]:
        return list(self.extra_transitions) + list(self.factories)


def _columns_of(basket: Basket) -> List[Tuple[str, AtomType]]:
    return [(c.name, c.atom) for c in basket.user_columns]


def build_separate_pipeline(
    stream: Basket,
    queries: Sequence[RangeQuery],
    clock: Optional[Clock] = None,
) -> StrategyNetwork:
    """Separate-baskets strategy: replicate the stream per query."""
    clock = clock or stream.clock
    columns = _columns_of(stream)
    privates, factories, outputs = [], [], {}
    for query in queries:
        private = Basket(f"{stream.name}_{query.name}_in", columns, clock)
        output = Basket(f"{query.name}_out", columns, clock)
        plan = SelectPlan(query, private.name, output.name)
        factories.append(
            Factory(
                query.name,
                plan,
                [InputBinding(private, ConsumeMode.ALL)],
                [output],
            )
        )
        privates.append(private)
        outputs[query.name] = output
    replicator = ReplicatorTransition(
        f"{stream.name}_replicator", stream, privates
    )
    return StrategyNetwork(stream, factories, outputs, [replicator])


def build_shared_pipeline(
    stream: Basket,
    queries: Sequence[RangeQuery],
    clock: Optional[Clock] = None,
) -> StrategyNetwork:
    """Shared-baskets strategy: all queries read the stream basket."""
    clock = clock or stream.clock
    columns = _columns_of(stream)
    factories, outputs = [], {}
    for query in queries:
        output = Basket(f"{query.name}_out", columns, clock)
        plan = SelectPlan(query, stream.name, output.name)
        factories.append(
            Factory(
                query.name,
                plan,
                [InputBinding(stream, ConsumeMode.SHARED)],
                [output],
            )
        )
        outputs[query.name] = output
    return StrategyNetwork(stream, factories, outputs, [])


def build_chained_pipeline(
    stream: Basket,
    queries: Sequence[RangeQuery],
    clock: Optional[Clock] = None,
) -> StrategyNetwork:
    """Disjoint-range chaining: q1 consumes its matches, q2 sees the rest.

    The queries must have pairwise disjoint ranges for the chain to be
    semantically equivalent to the other strategies; the builder checks.
    """
    _check_disjoint(queries)
    clock = clock or stream.clock
    columns = _columns_of(stream)
    factories, outputs = [], {}
    current_input = stream
    for i, query in enumerate(queries):
        output = Basket(f"{query.name}_out", columns, clock)
        last = i == len(queries) - 1
        leftover = (
            None
            if last
            else Basket(f"{stream.name}_chain_{i}", columns, clock)
        )
        plan = ChainedSelectPlan(
            query,
            current_input.name,
            output.name,
            leftover.name if leftover is not None else None,
        )
        # NOTE: an empty Basket is falsy (len == 0) — compare with None.
        outs = [output] + ([leftover] if leftover is not None else [])
        factories.append(
            Factory(
                query.name,
                plan,
                [InputBinding(current_input, ConsumeMode.ALL)],
                outs,
            )
        )
        outputs[query.name] = output
        if leftover is not None:
            current_input = leftover
    return StrategyNetwork(stream, factories, outputs, [])


def _check_disjoint(queries: Sequence[RangeQuery]) -> None:
    intervals = []
    for q in queries:
        lo = -np.inf if q.low is None else q.low
        hi = np.inf if q.high is None else q.high
        intervals.append((lo, hi, q.name))
    intervals.sort()
    for (lo1, hi1, n1), (lo2, hi2, n2) in zip(intervals, intervals[1:]):
        if lo2 <= hi1:
            raise DataCellError(
                f"chained strategy requires disjoint ranges: {n1} and {n2} "
                "overlap"
            )
