"""The DataCell scheduler (paper §2.4).

The scheduler runs an infinite loop; every iteration it checks which
transitions (receptors, factories, emitters) can be processed by analyzing
their inputs, and fires the enabled ones.  Firing order respects
per-transition priorities — the hook for query priorities and low-latency
requirements.  The system may require a basket to hold at least *n* tuples
before the relevant factory runs (``Basket.min_count`` / binding
``min_tuples``); that check lives in each transition's ``enabled()``.

Two driving modes:

* **synchronous** — :meth:`Scheduler.step` / :meth:`run_until_quiescent`;
  deterministic, used by tests and benchmarks;
* **threaded** — :meth:`Scheduler.start`; every single component is an
  independent thread and data streams through the threads connected by
  baskets, exactly the paper's multi-threaded architecture.

Observability: every firing bumps a per-transition counter and an
activation wall-time histogram, every failed enablement check bumps an
idle-poll counter, and each firing is appended to a bounded
:class:`~repro.obs.tracing.TraceLog` for post-mortems.  ``total_firings``
is backed by a thread-safe counter (N transition threads increment it
concurrently in threaded mode).
"""

from __future__ import annotations

import threading
import time
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from ..errors import SchedulerError
from ..obs.metrics import Counter, MetricsRegistry, default_registry
from ..obs.tracing import TraceLog
from .factory import ActivationResult

__all__ = [
    "SchedulableTransition",
    "FiringPolicy",
    "PriorityPolicy",
    "Scheduler",
]


@runtime_checkable
class SchedulableTransition(Protocol):
    """Anything the scheduler can drive: receptors, factories, emitters."""

    name: str
    priority: int

    def enabled(self) -> bool: ...

    def activate(self) -> ActivationResult: ...


class FiringPolicy:
    """Decides firing order among transitions — the seam shared by the
    synchronous scheduler and the simulated scheduler (``repro.simtest``).

    Callers always pass transitions in **registration order**; a policy
    must be a pure function of that sequence plus its own (explicitly
    seeded) state, so a run is reproducible from ``(seed, policy)``.

    ``sweep_order`` shapes one full :meth:`Scheduler.step` sweep;
    ``choose`` picks a single transition to fire next (the simulator's
    one-firing-at-a-time driving).  The default ``choose`` takes the head
    of ``sweep_order``, so a policy only needs to define the sweep.
    """

    def sweep_order(
        self, transitions: List[SchedulableTransition]
    ) -> List[SchedulableTransition]:
        raise NotImplementedError  # pragma: no cover - interface

    def choose(
        self, enabled: List[SchedulableTransition]
    ) -> SchedulableTransition:
        return self.sweep_order(list(enabled))[0]

    def describe(self) -> str:
        return type(self).__name__


class PriorityPolicy(FiringPolicy):
    """The engine's default order: priority descending, then registration
    order ascending.

    The tie-break among equal priorities is part of the scheduler
    contract (documented here and asserted by
    ``tests/test_scheduler_fairness.py``): the sort is guaranteed stable
    over the registration-ordered input, so synchronous stepping, the
    Petri-net engine, and the simulator all agree on the firing sequence
    and ``run_until_quiescent`` treats equally-prioritized transitions
    fairly — every sweep visits all of them, in one fixed, documented
    order.
    """

    def sweep_order(
        self, transitions: List[SchedulableTransition]
    ) -> List[SchedulableTransition]:
        # enumerate() makes the registration-order tie-break explicit
        # rather than an accident of sort stability
        indexed = list(enumerate(transitions))
        indexed.sort(key=lambda pair: (-pair[1].priority, pair[0]))
        return [t for _, t in indexed]


class Scheduler:
    """Organizes the execution of the DataCell's transitions."""

    def __init__(
        self,
        poll_interval: float = 0.001,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
        policy: Optional[FiringPolicy] = None,
    ):
        self.policy = policy if policy is not None else PriorityPolicy()
        self._transitions: Dict[str, SchedulableTransition] = {}
        self._lock = threading.RLock()
        self._threads: List[threading.Thread] = []
        self._running = threading.Event()
        self.poll_interval = poll_interval
        self.metrics = metrics if metrics is not None else default_registry()
        self.trace = trace if trace is not None else TraceLog()
        # flight-recorder hook: called with (transition_name, exception)
        # when an activation raises; the exception still propagates
        self.on_exception: Optional[Callable[[str, BaseException], None]] = (
            None
        )
        # resource-accounting hook (ResourceAccountant); when set, _fire
        # brackets each bound transition's activation with thread-CPU
        # measurement and publishes the firing's account thread-locally
        self.accountant = None
        # total_firings survives metrics-disabled mode: it is a standalone
        # thread-safe counter, not a registry instrument.
        self._firings = Counter()
        self.total_iterations = 0  # synchronous mode only; step() is serial
        self._m_firings = self.metrics.counter(
            "datacell_transition_firings_total",
            "Transition activations, per transition",
            ("transition",),
        )
        self._m_idle = self.metrics.counter(
            "datacell_transition_idle_polls_total",
            "Enablement checks that found the transition not ready",
            ("transition",),
        )
        self._m_activation = self.metrics.histogram(
            "datacell_transition_activation_seconds",
            "Wall time of one transition activation",
            ("transition",),
        )
        self._m_iterations = self.metrics.counter(
            "datacell_scheduler_iterations_total",
            "Synchronous scheduler iterations",
        )
        # per-transition instrument cache: resolved once per registration
        self._instruments: Dict[str, Tuple] = {}

    @property
    def total_firings(self) -> int:
        """Lifetime transition firings (thread-safe, both driving modes)."""
        return int(self._firings.value)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, transition: SchedulableTransition) -> None:
        with self._lock:
            if transition.name in self._transitions:
                raise SchedulerError(
                    f"transition {transition.name!r} already registered"
                )
            self._transitions[transition.name] = transition
            self._instruments[transition.name] = (
                self._m_firings.labels(transition.name),
                self._m_idle.labels(transition.name),
                self._m_activation.labels(transition.name),
            )
            self.trace.record("register", transition.name)
            if self._running.is_set():
                self._spawn(transition)

    def unregister(self, name: str) -> None:
        with self._lock:
            if self._transitions.pop(name, None) is not None:
                self.trace.record("unregister", name)
            self._instruments.pop(name, None)

    def transitions(self) -> List[SchedulableTransition]:
        with self._lock:
            return list(self._transitions.values())

    def get(self, name: str) -> SchedulableTransition:
        with self._lock:
            try:
                return self._transitions[name]
            except KeyError:
                raise SchedulerError(f"unknown transition {name!r}") from None

    # ------------------------------------------------------------------
    # firing (shared by both driving modes)
    # ------------------------------------------------------------------
    def _instruments_for(self, name: str) -> Tuple:
        inst = self._instruments.get(name)
        if inst is None:  # raced with unregister; resolve ad hoc
            inst = (
                self._m_firings.labels(name),
                self._m_idle.labels(name),
                self._m_activation.labels(name),
            )
        return inst

    def _fire(self, transition: SchedulableTransition) -> ActivationResult:
        firings, _, activation_hist = self._instruments_for(transition.name)
        token = (
            self.accountant.begin_firing(transition.name)
            if self.accountant is not None
            else None
        )
        started = time.perf_counter()
        try:
            result = transition.activate()
        except BaseException as exc:
            self.trace.record(
                "error",
                transition.name,
                exception=f"{type(exc).__name__}: {exc}",
            )
            if self.on_exception is not None:
                try:
                    self.on_exception(transition.name, exc)
                except Exception:  # pragma: no cover - recorder must not kill
                    pass
            raise
        finally:
            if token is not None:
                self.accountant.end_firing(token)
        elapsed = time.perf_counter() - started
        self._firings.inc()
        firings.inc()
        activation_hist.observe(elapsed)
        self.trace.record(
            "fire",
            transition.name,
            tuples_in=result.tuples_in,
            tuples_out=result.tuples_out,
            elapsed=elapsed,
        )
        return result

    # ------------------------------------------------------------------
    # synchronous driving
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One scheduler iteration: fire every enabled transition once.

        Transitions are visited in the order the firing policy dictates
        (default :class:`PriorityPolicy`: priority descending, ties broken
        by registration order); enablement is re-checked immediately
        before each firing because earlier firings may have consumed the
        inputs (or produced new ones).
        """
        if self._running.is_set():
            raise SchedulerError("cannot step() while threads are running")
        self.total_iterations += 1
        self._m_iterations.inc()
        ordered = self.policy.sweep_order(self.transitions())
        fired = 0
        for transition in ordered:
            if transition.enabled():
                self._fire(transition)
                fired += 1
            else:
                self._instruments_for(transition.name)[1].inc()
        return fired

    def run_until_quiescent(self, max_steps: int = 100_000) -> int:
        """Step until no transition is enabled; returns total firings.

        A continuous query network quiesces when all channels are drained,
        all baskets are below their thresholds, and all results delivered.

        Fairness under equal priorities: each step sweeps *every*
        transition (no transition is skipped because an earlier one
        fired), and the in-sweep tie-break is the policy's documented
        registration order — so equally-prioritized transitions cannot
        starve each other and the simulated and synchronous modes agree
        on the firing sequence (see :class:`PriorityPolicy`).
        """
        total = 0
        for _ in range(max_steps):
            fired = self.step()
            if fired == 0:
                return total
            total += fired
        raise SchedulerError(
            f"network did not quiesce within {max_steps} scheduler steps"
        )

    # ------------------------------------------------------------------
    # threaded driving
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one thread per transition (the paper's architecture)."""
        with self._lock:
            if self._running.is_set():
                raise SchedulerError("scheduler already running")
            self._running.set()
            for transition in self._transitions.values():
                self._spawn(transition)

    def _spawn(self, transition: SchedulableTransition) -> None:
        thread = threading.Thread(
            target=self._drive,
            args=(transition,),
            name=f"datacell-{transition.name}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def _drive(self, transition: SchedulableTransition) -> None:
        idle_counter = self._instruments_for(transition.name)[1]
        while self._running.is_set():
            with self._lock:
                alive = self._transitions.get(transition.name) is transition
            if not alive:
                return
            if transition.enabled():
                self._fire(transition)
            else:
                idle_counter.inc()
                time.sleep(self.poll_interval)

    def stop(self, timeout: float = 5.0) -> List[str]:
        """Stop all transition threads; join each with a bounded timeout.

        Returns the names of threads still alive after their join window
        (empty on a clean shutdown) so callers — the hermetic-test
        fixture in particular — can turn a wedged transition thread into
        a hard failure instead of an indefinite hang.
        """
        self._running.clear()
        leaked: List[str] = []
        for thread in self._threads:
            thread.join(timeout)
            if thread.is_alive():
                leaked.append(thread.name)
        self._threads = []
        return leaked

    @property
    def running(self) -> bool:
        return self._running.is_set()
