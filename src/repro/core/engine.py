"""The DataCell engine façade.

Positioned exactly where the paper puts the DataCell — "between the
SQL-to-MAL compiler and the MonetDB kernel": this class owns the catalog,
the MAL interpreter, and the scheduler, extends the SQL runtime with
baskets and continuous queries, and exposes the full user journey:

>>> cell = DataCell()
>>> cell.execute("create basket sensors (sensor int, temp double)")
>>> q = cell.submit_continuous(
...     "select s.sensor, s.temp from "
...     "[select * from sensors where sensors.temp > 30.0] as s")
>>> cell.insert("sensors", [(1, 45.0), (2, 20.0)])
>>> cell.run_until_quiescent()
3
>>> q.fetch()
[(1, 45.0)]
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from ..adapters.channels import Channel, InMemoryChannel
from ..analysis.diagnostics import raise_on_errors
from ..analysis.lockorder import LockOrderRecorder, global_recorder
from ..analysis.verifier import verify_circuit, verify_continuous
from ..durability.manager import DurabilityManager
from ..durability.wal import DurabilityConfig
from ..errors import BindError, DataCellError, SqlError
from ..kernel.catalog import Catalog, Table
from ..kernel.interpreter import MalInterpreter
from ..kernel.mal import ResultSet
from ..kernel.types import AtomType
from ..obs.dashboard import render_dashboard
from ..obs.flightrec import FlightRecorder
from ..obs.httpd import TelemetryServer
from ..obs.metrics import MetricsRegistry
from ..obs.resources import ResourceAccountant, ResourceBudget
from ..obs.spans import SpanRecorder
from ..obs.sysstreams import (
    AlertRule,
    SystemStreamsConfig,
    TelemetrySampler,
    is_system_name,
)
from ..obs.tracing import TraceLog
from ..sql.ast_nodes import (
    CreateBasket,
    CreateTable,
    Drop,
    Insert,
    Literal,
    Select,
    UnaryOp,
    UnionSelect,
    contains_basket_expr,
)
from ..sql.binder import type_name_to_atom
from ..sql.compiler import (
    MalContinuousPlan,
    compile_continuous,
    compile_select,
    compile_union,
)
from ..sql.optimizer import optimize
from ..sql.parser import parse_statement
from .basket import Basket, TIME_COLUMN
from .clock import Clock, WallClock
from .continuous import ContinuousQuery
from .emitter import CollectingClient, Emitter
from .factory import ConsumeMode, ContinuousPlan, Factory, InputBinding
from .receptor import Receptor
from .scheduler import Scheduler
from .windows import (
    IncrementalWindowAggregatePlan,
    ReEvalWindowAggregatePlan,
    WindowMode,
    WindowSpec,
)

__all__ = ["DataCell"]


class DataCell:
    """A data-stream engine on top of a relational column-store kernel."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        scheduler: Optional[Scheduler] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceLog] = None,
        spans: Optional[SpanRecorder] = None,
        durability: Optional[DurabilityConfig] = None,
        system_streams: Union[bool, SystemStreamsConfig, None] = None,
        resources: Optional[bool] = None,
        execution: str = "reeval",
        verify: bool = True,
        lock_order: Optional[LockOrderRecorder] = None,
    ):
        self.clock = clock or WallClock()
        self.catalog = Catalog()
        # static plan verification at registration (repro.analysis):
        # a bad plan fails fast with a plan-node-anchored diagnostic
        # instead of a mid-firing error in a factory thread
        self.verify = verify
        # lock-order recorder seam: explicit instance, or whatever the
        # simtest harness installed process-wide (None = disabled)
        recorder = lock_order if lock_order is not None else global_recorder()
        if recorder is not None:
            self.catalog.lock_observer = recorder
        self.lock_order = recorder
        # default execution mode for continuous queries: "reeval" runs
        # every firing over the full MAL program; "incremental" compiles
        # supported shapes to Z-set circuits (repro.incremental) and
        # falls back to re-eval per query, recording the reason in
        # ``incremental_fallbacks`` as (query name, reason) pairs.
        if execution not in ("reeval", "incremental"):
            raise DataCellError(
                f"execution must be 'reeval' or 'incremental', "
                f"got {execution!r}"
            )
        self.execution = execution
        self.incremental_fallbacks: List[Tuple[str, str]] = []
        # every component this cell creates publishes into one registry
        # and one trace ring, so stats()/render_dashboard() see the whole
        # engine; pass MetricsRegistry(enabled=False) to run dark
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else TraceLog()
        # the causal layer follows the metrics switch: a dark cell traces
        # nothing; pass an explicit SpanRecorder to control sampling
        self.spans = (
            spans
            if spans is not None
            else SpanRecorder(enabled=self.metrics.enabled)
        )
        # per-query resource accounting follows the metrics switch by
        # default; resources=False runs it dark (no hot-path hooks at
        # all), resources=True forces it on.  The accountant object
        # always exists so stats()/top() have one surface to ask.
        self.resources = ResourceAccountant(
            self,
            enabled=(
                self.metrics.enabled if resources is None else bool(resources)
            ),
            metrics=self.metrics,
        )
        self.interpreter = MalInterpreter(
            self.catalog, metrics=self.metrics, tracer=self.spans,
            accountant=self.resources,
        )
        self.scheduler = scheduler or Scheduler(
            metrics=self.metrics, trace=self.trace
        )
        if self.resources.enabled:
            self.scheduler.accountant = self.resources
        self.flight = FlightRecorder(self)
        self.scheduler.on_exception = self.flight.record_exception
        self._query_counter = 0
        self._queries: List[ContinuousQuery] = []
        # durability is opt-in: with no config the engine is pure
        # main-memory and every WAL hook is a single None check
        self.durability: Optional[DurabilityManager] = (
            DurabilityManager(self, durability)
            if durability is not None
            else None
        )
        # self-monitoring (opt-in): the sys.* streams and the HTTP door
        self.sys: Optional[TelemetrySampler] = None
        self.httpd: Optional[TelemetryServer] = None
        # the network front door (opt-in via serve())
        self.server: Optional[Any] = None
        if system_streams:
            self.enable_system_streams(
                system_streams
                if isinstance(system_streams, SystemStreamsConfig)
                else None
            )

    # ------------------------------------------------------------------
    # DDL / DML / one-time queries
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> Optional[Union[ResultSet, ContinuousQuery]]:
        """Execute one SQL statement.

        DDL returns ``None``; one-time SELECTs return a
        :class:`ResultSet`; continuous SELECTs (containing a basket
        expression) are registered and return a :class:`ContinuousQuery`.
        """
        stmt = parse_statement(sql)
        if isinstance(stmt, CreateTable):
            self.create_table(
                stmt.name,
                [(n, type_name_to_atom(t)) for n, t in stmt.columns],
            )
            return None
        if isinstance(stmt, CreateBasket):
            self.create_basket(
                stmt.name,
                [(n, type_name_to_atom(t)) for n, t in stmt.columns],
            )
            return None
        if isinstance(stmt, Drop):
            if is_system_name(stmt.name):
                raise SqlError(
                    f"cannot drop reserved system stream {stmt.name!r}"
                )
            self.catalog.drop(stmt.name)
            return None
        if isinstance(stmt, Insert):
            self._execute_insert(stmt)
            return None
        if isinstance(stmt, UnionSelect):
            compiled = compile_union(self.catalog, stmt)
            program, _ = optimize(compiled.program)
            return self.interpreter.run(program)
        assert isinstance(stmt, Select)
        if contains_basket_expr(stmt):
            return self._submit_select(stmt, sql)
        compiled = compile_select(self.catalog, stmt)
        program, _ = optimize(compiled.program)
        return self.interpreter.run(program)

    def query(self, sql: str) -> List[Tuple[Any, ...]]:
        """Run a one-time SELECT and return plain python rows."""
        result = self.execute(sql)
        if not isinstance(result, ResultSet):
            raise SqlError("query() expects a one-time SELECT")
        return result.rows()

    def explain(self, sql: str) -> str:
        """EXPLAIN / EXPLAIN ANALYZE.

        Given the *name* of a registered continuous query, renders its
        annotated plan tree — cumulative time, calls, and rows per
        operator, aggregated from interpreter opcode timings across every
        activation so far (the continuous EXPLAIN ANALYZE).  Given SQL
        text, compiles it (without running) and returns the optimized MAL
        program.
        """
        for query in self._queries:
            if query.name == sql:
                return query.explain_analyze()
        stmt = parse_statement(sql)
        if isinstance(stmt, UnionSelect):
            compiled = compile_union(self.catalog, stmt)
            protected: List[str] = []
        elif isinstance(stmt, Select):
            if contains_basket_expr(stmt):
                compiled = compile_continuous(self.catalog, stmt)
            else:
                compiled = compile_select(self.catalog, stmt)
            protected = [b.consumed_var for b in compiled.basket_inputs]
        else:
            raise SqlError("EXPLAIN applies to SELECT statements")
        program, report = optimize(compiled.program, protected=protected)
        header = (
            f"-- optimizer: {report.instructions_before} -> "
            f"{report.instructions_after} instructions "
            f"(cse={report.cse_merged}, dce={report.dce_removed})"
        )
        return header + "\n" + program.render()

    def _execute_insert(self, stmt: Insert) -> None:
        if is_system_name(stmt.table):
            raise SqlError(
                f"system stream {stmt.table!r} is read-only: its rows are "
                "produced by the telemetry sampler"
            )
        table = self.catalog.get(stmt.table)
        rows = [
            [_literal_of(expr) for expr in row] for row in stmt.rows
        ]
        if stmt.columns is not None:
            user = (
                [c.name for c in table.user_columns]
                if isinstance(table, Basket)
                else table.schema.names()
            )
            order = [c.lower() for c in stmt.columns]
            if sorted(order) != sorted(n.lower() for n in user):
                raise BindError(
                    f"INSERT column list must cover exactly {user}"
                )
            index = [order.index(n.lower()) for n in user]
            rows = [[row[i] for i in index] for row in rows]
        if isinstance(table, Basket):
            table.insert_rows(rows)
        else:
            table.append_rows(rows)

    # ------------------------------------------------------------------
    # schema management
    # ------------------------------------------------------------------
    def create_table(
        self, name: str, columns: Sequence[Tuple[str, AtomType]]
    ) -> Table:
        """Create a persistent (static) relational table."""
        self._reject_system_name(name)
        return self.catalog.create_table(name, columns)

    def create_basket(
        self, name: str, columns: Sequence[Tuple[str, AtomType]]
    ) -> Basket:
        """Create a stream basket and register it in the catalog."""
        self._reject_system_name(name)
        basket = Basket(
            name, columns, self.clock,
            metrics=self.metrics, tracer=self.spans,
        )
        if self.durability is not None:
            basket.wal_sink = self.durability
        self.catalog.register(basket)
        return basket

    def _reject_system_name(self, name: str) -> None:
        if is_system_name(name):
            raise SqlError(
                f"the sys. schema is reserved for system streams "
                f"(cannot create {name!r})"
            )

    def _create_system_basket(
        self,
        name: str,
        columns: Sequence[Tuple[str, AtomType]],
        retention: int,
    ) -> Basket:
        """Create one reserved ``sys.*`` basket (telemetry sampler only).

        System baskets never get a ``wal_sink`` — their rows are derived
        measurements, recomputed by any run — and are bounded by ring
        retention rather than the shedding watermark.
        """
        if self.catalog.has(name):
            raise DataCellError(f"system stream {name!r} already exists")
        basket = Basket(
            name, columns, self.clock,
            metrics=self.metrics, tracer=self.spans,
        )
        basket.is_system = True
        basket.retention = retention
        self.catalog.register(basket)
        return basket

    def basket(self, name: str) -> Basket:
        table = self.catalog.get(name)
        if not isinstance(table, Basket):
            raise DataCellError(f"{name!r} is a table, not a basket")
        return table

    def insert(self, name: str, rows: Sequence[Sequence[Any]]) -> int:
        """Append tuples to a basket (stamping time) or plain table."""
        table = self.catalog.get(name)
        if isinstance(table, Basket):
            if table.is_system:
                raise SqlError(
                    f"system stream {name!r} is read-only: its rows are "
                    "produced by the telemetry sampler"
                )
            return table.insert_rows(rows)
        return table.append_rows(rows)

    # ------------------------------------------------------------------
    # continuous queries
    # ------------------------------------------------------------------
    def submit_continuous(
        self,
        sql: str,
        name: Optional[str] = None,
        tenant: str = "default",
        execution: Optional[str] = None,
    ) -> ContinuousQuery:
        """Register a continuous SQL query; returns its handle.

        The query must contain a basket expression (``[select ...]``),
        which is what distinguishes continuous from one-time queries.
        ``tenant`` labels the query's resource account so tenant-scoped
        :class:`~repro.obs.resources.ResourceBudget` caps can aggregate
        over it.  ``execution`` overrides the engine-wide mode for this
        query (``"reeval"`` or ``"incremental"``).
        """
        stmt = parse_statement(sql)
        if not isinstance(stmt, Select):
            raise SqlError("submit_continuous expects a SELECT statement")
        return self._submit_select(stmt, sql, name, tenant, execution)

    def _submit_select(
        self,
        stmt: Select,
        sql: str,
        name: Optional[str] = None,
        tenant: str = "default",
        execution: Optional[str] = None,
    ) -> ContinuousQuery:
        execution = execution or self.execution
        if execution not in ("reeval", "incremental"):
            raise DataCellError(
                f"execution must be 'reeval' or 'incremental', "
                f"got {execution!r}"
            )
        if stmt.window is not None:
            return self._submit_window_select(stmt, name, tenant, execution)
        name = name or self._fresh_name("q")
        if execution == "incremental":
            from ..incremental.compile import IncrementalUnsupported

            try:
                return self._submit_incremental(stmt, sql, name, tenant)
            except IncrementalUnsupported as exc:
                # per-query fallback: the shape has no circuit — run it
                # on the re-eval path and record why
                self.incremental_fallbacks.append((name, str(exc)))
        compiled = compile_continuous(self.catalog, stmt)
        compiled.program, _ = optimize(
            compiled.program,
            protected=[b.consumed_var for b in compiled.basket_inputs],
        )
        # EXPLAIN ANALYZE renders the program under the query's name
        compiled.program.name = name
        if self.verify:
            raise_on_errors(
                verify_continuous(compiled, self.catalog),
                context=f"continuous query {name!r} failed verification",
            )
        columns = []
        for col_name, atom in zip(compiled.output_names, compiled.output_atoms):
            out_name = "ts" if col_name.lower() == TIME_COLUMN else col_name
            columns.append((out_name, atom))
        output = self.create_basket(f"{name}_out", columns)
        plan = MalContinuousPlan(compiled, self.interpreter, output.name)
        bindings = [
            InputBinding(
                self.basket(b.basket),
                ConsumeMode.PLAN,
                refire_on_consumption=b.result_constrained,
            )
            for b in compiled.basket_inputs
        ]
        factory = Factory(
            name, plan, bindings, [output],
            metrics=self.metrics, tracer=self.spans,
        )
        return self._register_query(name, sql, factory, output, tenant)

    def _submit_incremental(
        self, stmt: Select, sql: str, name: str, tenant: str
    ) -> ContinuousQuery:
        """Register a continuous query on the incremental (Z-set) path.

        Raises :class:`~repro.incremental.compile.IncrementalUnsupported`
        when the shape has no circuit; the caller falls back to re-eval.
        """
        from ..incremental.compile import compile_incremental

        plan = compile_incremental(
            self.catalog, stmt, self.interpreter, f"{name}_out"
        )
        for i, stage in enumerate(plan.stages):
            stage.program, _ = optimize(
                stage.program,
                protected=[b.consumed_var for b in stage.basket_inputs],
            )
            stage.program.name = (
                name if len(plan.stages) == 1 else f"{name}[{i}]"
            )
        if self.verify:
            raise_on_errors(
                verify_circuit(plan, self.catalog),
                context=f"incremental circuit {name!r} failed verification",
            )
        columns = []
        for col_name, atom in zip(plan.names, plan.atoms):
            out_name = "ts" if col_name.lower() == TIME_COLUMN else col_name
            columns.append((out_name, atom))
        output = self.create_basket(f"{name}_out", columns)
        output.weighted = plan.weighted
        # Multi-input circuits (delta joins) must fire when EITHER side
        # has fresh tuples: a required binding on each side would stall
        # the factory whenever one stream runs ahead of the other,
        # leaving single-sided residue unprocessed at quiescence.  An
        # empty side simply contributes an empty delta to the stage.
        either_side = len(plan.basket_inputs) > 1
        bindings = [
            InputBinding(
                self.basket(b.basket),
                ConsumeMode.PLAN,
                refire_on_consumption=b.result_constrained,
                optional=either_side,
            )
            for b in plan.basket_inputs
        ]
        factory = Factory(
            name, plan, bindings, [output],
            metrics=self.metrics, tracer=self.spans,
        )
        handle = self._register_query(name, sql, factory, output, tenant)
        handle.execution = "incremental"
        handle.weighted = plan.weighted
        return handle

    def _submit_window_select(
        self,
        stmt: Select,
        name: Optional[str],
        tenant: str = "default",
        execution: Optional[str] = None,
    ) -> ContinuousQuery:
        """Lower ``SELECT aggs FROM [select * from B] as x [GROUP BY g]
        WINDOW n [SLIDE m]`` onto the incremental window executor.

        This is the §3.1 goal made syntax: windows are realized by
        scheduling and plan choice, not by new kernel operators.
        """
        from ..sql.ast_nodes import (
            BasketExpr,
            ColumnRef,
            FuncCall,
            Star,
            TableSource,
        )

        def fail(reason: str) -> "SqlError":
            return SqlError(f"WINDOW queries: {reason}")

        if stmt.where or stmt.having or stmt.order_by or stmt.limit \
                or stmt.distinct:
            raise fail(
                "only aggregates, one stream, and GROUP BY are supported"
            )
        if len(stmt.sources) != 1 or not isinstance(
            stmt.sources[0], BasketExpr
        ):
            raise fail("FROM must be a single basket expression")
        inner = stmt.sources[0].select
        if (
            len(inner.sources) != 1
            or not isinstance(inner.sources[0], TableSource)
            or inner.where is not None
            or inner.limit is not None
            or len(inner.items) != 1
            or not isinstance(inner.items[0].expr, Star)
        ):
            raise fail(
                "the basket expression must be [select * from <basket>]"
            )
        basket = self.basket(inner.sources[0].name)
        group_column: Optional[str] = None
        if stmt.group_by:
            if len(stmt.group_by) != 1 or not isinstance(
                stmt.group_by[0], ColumnRef
            ):
                raise fail("GROUP BY must name a single stream column")
            group_column = stmt.group_by[0].name.lower()
        aggregates: List[str] = []
        value_column: Optional[str] = None
        for item in stmt.items:
            expr = item.expr
            if isinstance(expr, ColumnRef):
                if group_column and expr.name.lower() == group_column:
                    continue  # the group key is emitted automatically
                raise fail(
                    "select items must be aggregates (or the group key)"
                )
            if not isinstance(expr, FuncCall) or expr.name not in (
                "sum", "count", "avg", "min", "max",
            ):
                raise fail("select items must be aggregate calls")
            if expr.star:
                aggregates.append("count_star")
                continue
            if len(expr.args) != 1 or not isinstance(
                expr.args[0], ColumnRef
            ):
                raise fail("aggregate arguments must be stream columns")
            column = expr.args[0].name.lower()
            if value_column is None:
                value_column = column
            elif column != value_column:
                raise fail(
                    "all aggregates must target the same stream column"
                )
            aggregates.append(expr.name)
        if not aggregates:
            raise fail("at least one aggregate is required")
        if value_column is None:
            # count(*)-only query: any numeric column works (values are
            # never read); fall back to the implicit timestamp
            numeric = [
                c.name for c in basket.user_columns if c.atom.is_numeric
            ]
            value_column = numeric[0] if numeric else TIME_COLUMN
        mode = WindowMode.TIME if stmt.window_time else WindowMode.COUNT
        return self.submit_window_aggregate(
            basket.name,
            value_column,
            aggregates,
            WindowSpec(mode, stmt.window, stmt.window_slide),
            group_by=group_column,
            name=name,
            tenant=tenant,
            execution=execution,
        )

    def submit_plan(
        self,
        name: str,
        plan: ContinuousPlan,
        inputs: Sequence[Union[Basket, InputBinding, str]],
        output_columns: Sequence[Tuple[str, AtomType]],
        priority: int = 0,
        tenant: str = "default",
    ) -> ContinuousQuery:
        """Register a hand-built continuous plan (window plans, joins...).

        ``inputs`` may be baskets, bindings, or basket names; the output
        basket ``{name}_out`` is created with ``output_columns``.
        """
        bindings = []
        for item in inputs:
            if isinstance(item, InputBinding):
                bindings.append(item)
            elif isinstance(item, Basket):
                bindings.append(InputBinding(item))
            else:
                bindings.append(InputBinding(self.basket(item)))
        output = self.create_basket(f"{name}_out", output_columns)
        factory = Factory(
            name, plan, bindings, [output],
            priority=priority, metrics=self.metrics, tracer=self.spans,
        )
        return self._register_query(name, None, factory, output, tenant)

    def submit_window_aggregate(
        self,
        input_basket: str,
        value_column: str,
        aggregates: Sequence[str],
        spec: WindowSpec,
        group_by: Optional[str] = None,
        incremental: bool = True,
        name: Optional[str] = None,
        tenant: str = "default",
        execution: Optional[str] = None,
    ) -> ContinuousQuery:
        """Register a sliding/tumbling window aggregate over a stream.

        ``execution`` selects the route: ``"incremental"`` the Z-set
        delta plan (:class:`~repro.incremental.windows
        .DeltaWindowAggregatePlan`, retraction on expiry), ``"basic"``
        the basic-window route, ``"reeval"`` full re-evaluation (paper
        §3.1).  When ``execution`` is None the legacy ``incremental``
        flag picks basic vs re-eval — unless the engine itself runs in
        incremental mode, which selects the delta plan.
        """
        if execution is None:
            if self.execution == "incremental":
                execution = "incremental"
            else:
                execution = "basic" if incremental else "reeval"
        if execution == "incremental":
            from ..incremental.windows import DeltaWindowAggregatePlan

            plan_cls = DeltaWindowAggregatePlan
        elif execution == "basic":
            plan_cls = IncrementalWindowAggregatePlan
        elif execution == "reeval":
            plan_cls = ReEvalWindowAggregatePlan
        else:
            raise DataCellError(
                f"window execution must be 'incremental', 'basic' or "
                f"'reeval', got {execution!r}"
            )
        name = name or self._fresh_name("w")
        plan = plan_cls(
            input_basket,
            value_column,
            aggregates,
            spec,
            f"{name}_out",
            group_column=group_by,
        )
        if group_by is not None:
            group_atom = self.basket(input_basket).schema.atom(group_by)
            columns = [
                (n, group_atom if n == group_by.lower() else a)
                for n, a in plan.output_schema()
            ]
        else:
            columns = plan.output_schema()
        handle = self.submit_plan(
            name, plan, [input_basket], columns, tenant=tenant
        )
        if execution == "incremental":
            handle.execution = "incremental"
        return handle

    def _register_query(
        self,
        name: str,
        sql: Optional[str],
        factory: Factory,
        output: Basket,
        tenant: str = "default",
    ) -> ContinuousQuery:
        collector = CollectingClient()
        emitter = Emitter(
            f"{name}_emitter", output,
            metrics=self.metrics, tracer=self.spans,
        )
        if self.durability is not None:
            emitter.wal_sink = self.durability
            factory.wal_sink = self.durability
        emitter.subscribe(collector)
        self.scheduler.register(factory)
        self.scheduler.register(emitter)
        handle = ContinuousQuery(
            name, sql, factory, output, emitter, collector, self
        )
        self._queries.append(handle)
        if self.resources.enabled:
            factory.accountant = self.resources
            self.resources.bind(handle, tenant)
        return handle

    def remove_continuous(self, handle: ContinuousQuery) -> None:
        """Unregister a standing query (scheduler + shared readers)."""
        self.scheduler.unregister(handle.factory.name)
        self.scheduler.unregister(handle.emitter.name)
        self.resources.unbind(handle.name)
        handle.factory.close()
        if handle in self._queries:
            self._queries.remove(handle)
        if self.catalog.has(handle.output_basket.name):
            self.catalog.drop(handle.output_basket.name)

    def continuous_queries(self) -> List[ContinuousQuery]:
        return list(self._queries)

    # ------------------------------------------------------------------
    # periphery
    # ------------------------------------------------------------------
    def add_receptor(
        self,
        name: str,
        targets: Sequence[Union[str, Basket]],
        channel: Optional[Channel] = None,
        batch_size: int = 1024,
    ) -> Receptor:
        """Attach a receptor thread/transition feeding the target baskets.

        Returns the receptor; its channel (created if not given) is where
        producers push textual or structured tuples.
        """
        channel = channel or InMemoryChannel(f"{name}_channel")
        baskets = [
            t if isinstance(t, Basket) else self.basket(t) for t in targets
        ]
        receptor = Receptor(
            name, channel, baskets, batch_size,
            metrics=self.metrics, tracer=self.spans,
        )
        self.scheduler.register(receptor)
        return receptor

    def add_emitter(
        self,
        name: str,
        source: Union[str, Basket],
        include_time: bool = False,
    ) -> Emitter:
        """Attach an extra emitter on any basket."""
        basket = source if isinstance(source, Basket) else self.basket(source)
        emitter = Emitter(
            name, basket, include_time=include_time,
            metrics=self.metrics, tracer=self.spans,
        )
        if self.durability is not None:
            emitter.wal_sink = self.durability
        self.scheduler.register(emitter)
        return emitter

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def step(self) -> int:
        """One synchronous scheduler iteration."""
        return self.scheduler.step()

    def run_until_quiescent(self, max_steps: int = 100_000) -> int:
        """Drive synchronously until the network drains."""
        return self.scheduler.run_until_quiescent(max_steps)

    def start(self) -> None:
        """Start threaded mode: every component becomes a thread."""
        self.scheduler.start()
        if self.durability is not None:
            self.durability.start_checkpointer()

    def stop(self, timeout: float = 5.0) -> List[str]:
        """Stop threaded mode; returns names of threads that failed to
        join within ``timeout`` (empty on clean shutdown).

        Shutdown order matters and is fixed (see ``docs/server.md``):

        1. **server** — stop accepting, drain client output queues,
           close sockets, then unregister the ingest pump.  Whatever
           the pump applied before this point is WAL-logged; whatever
           was still queued is unacknowledged and simply dropped.
        2. **scheduler** — join factory/emitter/receptor threads, so no
           basket mutates after this returns.
        3. **durability** — stop the checkpointer and fsync the WAL
           tail; runs after the scheduler so the flushed log covers
           every applied firing.
        4. **httpd** — the telemetry endpoint goes last; it only reads.
        """
        if self.server is not None:
            self.trace.record("shutdown", "engine", stage="server")
            self.server.close(timeout)
            self.server = None
        self.trace.record("shutdown", "engine", stage="scheduler")
        leftovers = self.scheduler.stop(timeout)
        if self.durability is not None:
            self.trace.record("shutdown", "engine", stage="durability")
            self.durability.stop_checkpointer(timeout)
            self.durability.flush()
        if self.httpd is not None:
            self.trace.record("shutdown", "engine", stage="httpd")
            self.httpd.close(timeout)
            self.httpd = None
        return leftovers

    # ------------------------------------------------------------------
    # the network front door (repro.server)
    # ------------------------------------------------------------------
    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[Any] = None,
    ) -> Any:
        """Start (or return) the network front door.

        Binds an asyncio TCP listener (port ``0`` = any free port; see
        ``cell.server.address`` for the resolved one) speaking the
        :mod:`repro.server.protocol` frame format, with a WebSocket
        upgrade on the same port.  The engine should also be running in
        threaded mode (:meth:`start`) so ingest and queries fire.
        """
        if self.server is None:
            from ..server import DataCellServer

            self.server = DataCellServer(
                self, host=host, port=port, config=config
            ).start()
        return self.server

    # ------------------------------------------------------------------
    # self-monitoring surface (system streams, alerts, HTTP endpoint)
    # ------------------------------------------------------------------
    def enable_system_streams(
        self, config: Optional[SystemStreamsConfig] = None
    ) -> TelemetrySampler:
        """Turn on the ``sys.*`` streams (idempotent-hostile: once).

        Registers the :class:`TelemetrySampler` transition with the
        scheduler; from then on ``sys.metrics`` / ``sys.queries`` /
        ``sys.baskets`` / ``sys.events`` exist in the catalog and
        meta-queries over them are ordinary continuous queries.
        """
        if self.sys is not None:
            raise DataCellError("system streams are already enabled")
        self.sys = TelemetrySampler(self, config)
        self.scheduler.register(self.sys)
        return self.sys

    def disable_system_streams(self) -> None:
        """Unregister the sampler, cancel alerts, drop ``sys.*`` baskets."""
        if self.sys is None:
            return
        self.sys.close()
        self.sys = None

    def add_alert(
        self,
        name: str,
        sql: str,
        callback: Optional[Callable[[AlertRule, List[Tuple]], None]] = None,
    ) -> AlertRule:
        """Register an alert rule: a meta-query with firing semantics.

        ``sql`` is a continuous query (normally over ``sys.*`` streams)
        whose non-empty deliveries constitute a breach; the rule fires
        once per breach window (see :class:`AlertRule`) into ``callback``
        and ``sys.events``.
        """
        if self.sys is None:
            raise DataCellError(
                "enable system streams before adding alerts "
                "(enable_system_streams())"
            )
        if name in self.sys.alerts:
            raise DataCellError(f"alert {name!r} already exists")
        query = self.submit_continuous(sql, name=f"alert_{name}")
        return AlertRule(name, query, self.sys, callback, self.metrics)

    def serve_http(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> TelemetryServer:
        """Start (or return) the background HTTP telemetry endpoint.

        Port ``0`` binds any free port; see
        :attr:`TelemetryServer.url` for the resolved address.
        """
        if self.httpd is None:
            self.httpd = TelemetryServer(self, host=host, port=port).start()
        return self.httpd

    # ------------------------------------------------------------------
    # durability surface
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Write a consistent checkpoint now; returns its id.

        Raises :class:`DataCellError` when the cell was built without a
        :class:`~repro.durability.DurabilityConfig`.
        """
        if self.durability is None:
            raise DataCellError(
                "durability is not enabled on this cell "
                "(pass durability=DurabilityConfig(...))"
            )
        return self.durability.checkpoint()

    def recover(self) -> "RecoveryReport":
        """Restore state from the newest checkpoint + WAL suffix.

        The cell must already hold the same topology (baskets, queries,
        emitters under the same names) that existed when the log was
        written — recovery restores *state*, not structure.  Call before
        driving the scheduler.
        """
        if self.durability is None:
            raise DataCellError(
                "durability is not enabled on this cell "
                "(pass durability=DurabilityConfig(...))"
            )
        return self.durability.recover()

    # ------------------------------------------------------------------
    # observability surface
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """A structured snapshot of the whole engine's measurements.

        Shape::

            {"scheduler": {"iterations", "firings",
                           "transitions": {name: {"firings", "idle_polls",
                                                  "activation_seconds"}}},
             "baskets":   {name: {"depth", "high_water", "inserted",
                                  "consumed", "shed"}},
             "queries":   {name: {"delivered", "activations", "latency"}},
             "mal":       {opcode: {"calls", "seconds"}},
             "spans":     {"batches_seen", "sampled_batches", "finished",
                           "open_roots"}}

        Histogram entries carry ``count/sum/min/max/p50/p95/p99``.  Works
        in both driving modes; safe to call while threads run (values are
        individually consistent, not a global atomic cut).
        """
        m = self.metrics
        transitions = {}
        for t in self.scheduler.transitions():
            transitions[t.name] = {
                "firings": int(
                    m.value("datacell_transition_firings_total", (t.name,))
                    or 0
                ),
                "idle_polls": int(
                    m.value("datacell_transition_idle_polls_total", (t.name,))
                    or 0
                ),
                "activation_seconds": m.histogram_snapshot(
                    "datacell_transition_activation_seconds", (t.name,)
                ) or {},
            }
        baskets = {}
        for table in self.catalog.baskets():
            if not isinstance(table, Basket):  # pragma: no cover - defensive
                continue
            baskets[table.name] = {
                "depth": table.count,
                "high_water": table.high_water,
                "inserted": table.total_in,
                "consumed": table.total_out,
                "shed": table.total_shed,
            }
        queries = {}
        for q in self._queries:
            queries[q.name] = {
                "delivered": q.results_delivered,
                "activations": q.activations,
                "latency": m.histogram_snapshot(
                    "datacell_query_latency_seconds",
                    (q.output_basket.name,),
                ) or {},
            }
        out = {
            "scheduler": {
                "iterations": self.scheduler.total_iterations,
                "firings": self.scheduler.total_firings,
                "transitions": transitions,
            },
            "baskets": baskets,
            "queries": queries,
            "mal": self.interpreter.profile(),
            "spans": {
                "batches_seen": self.spans.batches_seen,
                "sampled_batches": self.spans.sampled_batches,
                "finished": len(self.spans),
                "open_roots": len(self.spans.open_roots()),
            },
        }
        if self.durability is not None:
            out["durability"] = self.durability.stats()
        if self.sys is not None:
            out["sys"] = {
                "samples": self.sys.samples_taken,
                "rows": self.sys.rows_emitted,
                "streams": {
                    name: b.count for name, b in self.sys.baskets.items()
                },
                "alerts": {
                    name: rule.firings
                    for name, rule in self.sys.alerts.items()
                },
            }
        if self.httpd is not None:
            out["http"] = {
                "url": self.httpd.url,
                "requests": self.httpd.requests_served,
            }
        if self.server is not None:
            out["server"] = self.server.stats()
        if self.resources.enabled:
            out["resources"] = self.resources.stats()
        return out

    def top(self, limit: int = 10) -> str:
        """A ``top``-style text table of queries ranked by CPU spent.

        Columns: firing-boundary CPU, plan CPU, per-opcode CPU, state
        memory, mean queue-wait, rows in/out, firings.  Returns a
        one-line notice when resource accounting is disabled.
        """
        from ..bench.reporting import format_table

        if not self.resources.enabled:
            return "(resource accounting disabled: resources=False)\n"
        headers = (
            "query", "tenant", "cpu_ms", "plan_ms", "opcode_ms",
            "mem_kb", "wait_ms", "rows_in", "rows_out", "firings",
        )
        rows = [
            (
                name, tenant,
                f"{cpu:.3f}", f"{plan:.3f}", f"{opcode:.3f}",
                str(mem_kb), f"{wait:.3f}",
                str(rows_in), str(rows_out), str(firings),
            )
            for (
                name, tenant, cpu, plan, opcode,
                mem_kb, wait, rows_in, rows_out, firings,
            ) in self.resources.top_rows(limit)
        ]
        return format_table("Top queries by CPU", headers, rows)

    def set_budget(
        self,
        name: str,
        query: Optional[str] = None,
        tenant: Optional[str] = None,
        cpu_delta: Optional[float] = None,
        memory_bytes: Optional[int] = None,
        queue_wait_delta: Optional[float] = None,
        callback: Optional[Callable[[ResourceBudget, dict], None]] = None,
    ) -> ResourceBudget:
        """Register a per-query or per-tenant resource budget.

        Caps are evaluated once per telemetry-sampler tick against the
        sample's deltas (CPU/queue-wait) or instantaneous footprint
        (memory); breaches fire once per breach window into
        ``sys.events`` (kind ``budget_breach``), the
        ``datacell_budget_breaches_total`` counter, and ``callback``.
        Requires resource accounting; system streams must be enabled for
        breaches to be *checked* (the sampler drives evaluation).
        """
        if not self.resources.enabled:
            raise DataCellError(
                "resource budgets need resource accounting "
                "(build the cell with resources=True or enabled metrics)"
            )
        return self.resources.add_budget(
            ResourceBudget(
                name,
                query=query,
                tenant=tenant,
                cpu_delta=cpu_delta,
                memory_bytes=memory_bytes,
                queue_wait_delta=queue_wait_delta,
                callback=callback,
            )
        )

    def remove_budget(self, name: str) -> None:
        self.resources.remove_budget(name)

    def render_dashboard(self, trace_events: int = 10) -> str:
        """The engine's live state as an aligned text dashboard."""
        return render_dashboard(
            self.stats(), trace=self.trace, trace_events=trace_events
        )

    def prometheus_text(self) -> str:
        """This cell's registry in Prometheus text exposition format."""
        return self.metrics.to_prometheus_text()

    def export_chrome_trace(self, path: str) -> None:
        """Write sampled spans as Chrome trace-event JSON (Perfetto)."""
        self.spans.export_chrome_trace(path)

    def dump_flight_record(self, path: str) -> dict:
        """Write the flight-recorder post-mortem JSON; returns the doc."""
        return self.flight.dump(path, reason="manual")

    # ------------------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        self._query_counter += 1
        return f"{prefix}{self._query_counter}"


def _literal_of(expr: Any) -> Any:
    """Extract a python value from an INSERT literal expression."""
    if isinstance(expr, Literal):
        return expr.value
    if (
        isinstance(expr, UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, Literal)
        and isinstance(expr.operand.value, (int, float))
    ):
        return -expr.operand.value
    raise BindError("INSERT VALUES must be literals")
