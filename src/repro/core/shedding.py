"""Load shedding (paper §1/§2.4: "possible load shedding requirements").

When a stream outruns the queries, something must give.  The DataCell
sheds at the basket: a basket with a ``capacity`` watermark drops tuples
on overflow according to a policy:

``oldest``
    keep the freshest data (default; right for monitoring queries where
    stale tuples lose value);
``newest``
    protect the backlog (right when per-tuple answers must not be
    reordered, e.g. billing);
``sample``
    drop uniformly at random so aggregates stay approximately unbiased.

:class:`LoadShedController` is the adaptive piece: it watches basket
depths each scheduler iteration and engages/releases capacity limits so
the network's total buffered volume stays under a budget — the
"dynamic environment changes" adaptation hook of §2.4.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import BasketError
from ..obs.metrics import MetricsRegistry
from .basket import Basket

__all__ = ["SHEDDING_POLICIES", "apply_shedding_policy", "LoadShedController"]

SHEDDING_POLICIES = ("oldest", "newest", "sample")


def apply_shedding_policy(
    basket: Basket,
    capacity: int,
    policy: str = "oldest",
    rng: Optional[random.Random] = None,
) -> int:
    """Shed ``basket`` down to ``capacity`` tuples using ``policy``.

    Returns the number of tuples dropped.  Unlike the basket's built-in
    watermark (which is oldest-only and runs on ingest), this helper is
    called by a controller between scheduler iterations.
    """
    if policy not in SHEDDING_POLICIES:
        raise BasketError(f"unknown shedding policy {policy!r}")
    if capacity < 0:
        raise BasketError("capacity cannot be negative")
    if basket.is_system:
        # sys.* streams are exempt from shedding by construction: they
        # are bounded by ring-buffer retention instead (sysstreams.py)
        return 0
    with basket.lock:
        overflow = basket.count - capacity
        if overflow <= 0:
            return 0
        count = basket.count
        if policy == "oldest":
            keep = np.arange(overflow, count, dtype=np.int64)
        elif policy == "newest":
            keep = np.arange(0, capacity, dtype=np.int64)
        else:  # sample
            rng = rng or random.Random(0)
            kept = sorted(rng.sample(range(count), capacity))
            keep = np.asarray(kept, dtype=np.int64)
        basket._rebuild_keeping(keep)
        basket.total_shed += overflow
        basket._m_shed.inc(overflow)
        basket._record_depth()
        return overflow


class LoadShedController:
    """Adaptive shedding: keep total buffered tuples under a budget.

    Each :meth:`tick` (call it once per scheduler iteration, or from a
    monitoring thread) measures the monitored baskets; when the total
    exceeds ``budget``, every basket over its fair share is shed with the
    configured policy.  Hysteresis (``release_ratio``) avoids flapping.
    """

    def __init__(
        self,
        baskets: Sequence[Basket],
        budget: int,
        policy: str = "oldest",
        release_ratio: float = 0.8,
        seed: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        name: str = "shed",
    ):
        if policy not in SHEDDING_POLICIES:
            raise BasketError(f"unknown shedding policy {policy!r}")
        if budget <= 0:
            raise BasketError("budget must be positive")
        if not baskets:
            raise BasketError("controller needs at least one basket")
        self.baskets: List[Basket] = list(baskets)
        self.budget = budget
        self.policy = policy
        self.release_ratio = release_ratio
        self._rng = random.Random(seed)
        self.engaged = False
        self.total_dropped = 0
        self.ticks = 0
        self.name = name
        # the controller is a metrics *consumer*: it reads basket depth
        # gauges from the registry the baskets publish into, rather than
        # polling private state — and publishes its own control signals
        self.metrics = (
            metrics if metrics is not None else self.baskets[0].metrics
        )
        self._m_dropped = self.metrics.counter(
            "datacell_shed_dropped_total",
            "Tuples dropped by the adaptive controller",
            ("controller",),
        ).labels(name)
        self._m_engaged = self.metrics.gauge(
            "datacell_shed_engaged",
            "1 while the controller is actively shedding",
            ("controller",),
        ).labels(name)
        self._m_ticks = self.metrics.counter(
            "datacell_shed_ticks_total",
            "Control loop iterations",
            ("controller",),
        ).labels(name)

    def _depth(self, basket: Basket) -> int:
        """Basket depth as published in the metrics registry.

        Falls back to the live count when the registry is disabled (the
        gauge then reads 0 regardless of reality).
        """
        value = self.metrics.value(
            "datacell_basket_depth", (basket.name,)
        )
        return basket.count if value is None else int(value)

    def buffered(self) -> int:
        return sum(self._depth(b) for b in self.baskets)

    def tick(self) -> int:
        """One control step; returns tuples dropped this step."""
        self.ticks += 1
        self._m_ticks.inc()
        total = self.buffered()
        if not self.engaged:
            if total <= self.budget:
                return 0
            self.engaged = True
            self._m_engaged.set(1)
        elif total <= self.budget * self.release_ratio:
            self.engaged = False
            self._m_engaged.set(0)
            return 0
        fair_share = max(1, self.budget // len(self.baskets))
        dropped = 0
        for basket in self.baskets:
            if self._depth(basket) > fair_share:
                dropped += apply_shedding_policy(
                    basket, fair_share, self.policy, self._rng
                )
        self.total_dropped += dropped
        self._m_dropped.inc(dropped)
        return dropped

    def stats(self) -> Dict[str, int]:
        return {
            "buffered": self.buffered(),
            "budget": self.budget,
            "dropped": self.total_dropped,
            "ticks": self.ticks,
            "engaged": int(self.engaged),
        }
