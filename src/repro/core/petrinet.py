"""The Petri-net processing model (paper §2.4).

The DataCell schedules work with Petri-net semantics: baskets are token
*places*, while receptors, factories and emitters are *transitions*.  A
transition is enabled when every input place holds tokens (at least the
configured threshold); firing consumes input tokens, performs processing,
and deposits result tokens in output places.

This module gives the abstraction two faces:

* a **pure token net** (:class:`MarkedPlace`) for reasoning and property
  tests — integer markings, no payloads;
* a **delegating net** where places report token counts from live baskets
  (:class:`Place` subclasses override :meth:`Place.tokens`) and transitions
  run arbitrary actions; this is what the DataCell scheduler instantiates.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulerError

__all__ = ["Place", "MarkedPlace", "Transition", "PetriNet"]


class Place:
    """A token place.  Subclasses define where tokens live."""

    def __init__(self, name: str):
        self.name = name

    def tokens(self) -> int:  # pragma: no cover - interface
        """Current number of tokens in this place."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, tokens={self.tokens()})"


class MarkedPlace(Place):
    """A place with an explicit integer marking (pure Petri-net semantics)."""

    def __init__(self, name: str, marking: int = 0):
        super().__init__(name)
        if marking < 0:
            raise SchedulerError("marking cannot be negative")
        self.marking = marking

    def tokens(self) -> int:
        return self.marking

    def add(self, n: int = 1) -> None:
        if n < 0:
            raise SchedulerError("cannot add a negative number of tokens")
        self.marking += n

    def remove(self, n: int = 1) -> None:
        if n > self.marking:
            raise SchedulerError(
                f"place {self.name!r} holds {self.marking} tokens, "
                f"cannot remove {n}"
            )
        self.marking -= n


class Transition:
    """A computation node: fires when all inputs meet their thresholds.

    ``action`` runs the work.  For pure token nets, the default action
    moves tokens: it removes ``threshold`` tokens from each
    :class:`MarkedPlace` input and adds one token to each output.  For
    DataCell transitions the action is the receptor/factory/emitter
    activation, and token movement is implicit in basket mutation.

    ``priority`` orders firing when several transitions are enabled
    (higher first) — the hook the paper's scheduler uses for query
    priorities.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[Tuple[Place, int]],
        outputs: Sequence[Place],
        action: Optional[Callable[[], Optional[int]]] = None,
        priority: int = 0,
    ):
        if not inputs:
            raise SchedulerError(
                f"transition {name!r} needs at least one input (paper §2.4: "
                "each transition has at least one input and one output)"
            )
        for place, threshold in inputs:
            if threshold < 1:
                raise SchedulerError("input threshold must be >= 1")
        self.name = name
        self.inputs: List[Tuple[Place, int]] = list(inputs)
        self.outputs: List[Place] = list(outputs)
        self.action = action
        self.priority = priority
        self.firings = 0

    def enabled(self) -> bool:
        """Petri-net enablement: every input holds >= threshold tokens."""
        return all(place.tokens() >= n for place, n in self.inputs)

    def fire(self) -> Optional[int]:
        """Fire once.  Raises if not enabled.

        Returns whatever the action returns (DataCell actions return the
        number of result tuples produced; pure nets return None).
        """
        if not self.enabled():
            raise SchedulerError(f"transition {self.name!r} is not enabled")
        self.firings += 1
        if self.action is not None:
            return self.action()
        # default pure-net behaviour
        for place, n in self.inputs:
            if not isinstance(place, MarkedPlace):
                raise SchedulerError(
                    "default firing only moves tokens of MarkedPlaces"
                )
            place.remove(n)
        for place in self.outputs:
            if not isinstance(place, MarkedPlace):
                raise SchedulerError(
                    "default firing only moves tokens of MarkedPlaces"
                )
            place.add(1)
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(f"{p.name}(>={n})" for p, n in self.inputs)
        outs = ", ".join(p.name for p in self.outputs)
        return f"Transition({self.name!r}: [{ins}] -> [{outs}])"


class PetriNet:
    """A set of places and transitions with a stepping engine.

    ``step`` fires each enabled transition at most once (priority order),
    which is one iteration of the paper's scheduler loop;
    ``run_until_quiescent`` iterates until no transition is enabled.
    """

    def __init__(self) -> None:
        self.places: Dict[str, Place] = {}
        self.transitions: Dict[str, Transition] = {}

    def add_place(self, place: Place) -> Place:
        if place.name in self.places:
            raise SchedulerError(f"duplicate place {place.name!r}")
        self.places[place.name] = place
        return place

    def add_transition(self, transition: Transition) -> Transition:
        if transition.name in self.transitions:
            raise SchedulerError(f"duplicate transition {transition.name!r}")
        for place, _ in transition.inputs:
            if self.places.get(place.name) is not place:
                raise SchedulerError(
                    f"input place {place.name!r} not part of this net"
                )
        for place in transition.outputs:
            if self.places.get(place.name) is not place:
                raise SchedulerError(
                    f"output place {place.name!r} not part of this net"
                )
        self.transitions[transition.name] = transition
        return transition

    def remove_transition(self, name: str) -> None:
        self.transitions.pop(name, None)

    def enabled_transitions(self) -> List[Transition]:
        """Enabled transitions, highest priority first.

        Ties are broken by insertion (registration) order — the same
        documented contract as the scheduler's
        :class:`~repro.core.scheduler.PriorityPolicy`, so pure-net
        reasoning and live-engine stepping agree on firing sequences.
        """
        enabled = [
            (i, t)
            for i, t in enumerate(self.transitions.values())
            if t.enabled()
        ]
        enabled.sort(key=lambda pair: (-pair[1].priority, pair[0]))
        return [t for _, t in enabled]

    def step(self) -> int:
        """One scheduler iteration: fire every enabled transition once.

        Enablement is re-evaluated before each individual firing, because a
        firing may consume the tokens another transition was waiting for.
        Returns the number of transitions fired.
        """
        fired = 0
        for transition in self.enabled_transitions():
            if transition.enabled():
                transition.fire()
                fired += 1
        return fired

    def run_until_quiescent(self, max_steps: int = 10_000) -> int:
        """Step until nothing is enabled; returns total firings.

        ``max_steps`` bounds livelock (a net where transitions keep
        re-enabling each other); hitting the bound raises.
        """
        total = 0
        for _ in range(max_steps):
            fired = self.step()
            if fired == 0:
                return total
            total += fired
        raise SchedulerError(
            f"net did not quiesce within {max_steps} steps "
            f"({total} firings so far)"
        )

    def marking(self) -> Dict[str, int]:
        """Snapshot of token counts — the net's computational state."""
        return {name: place.tokens() for name, place in self.places.items()}
