"""Factories — continuous queries as resumable co-routines (paper §2.3).

A factory contains the compiled continuous query plan.  It has at least one
input and one output basket; each activation reads the inputs, processes
them, writes qualifying tuples to the outputs, and consumes the input
tuples it has seen.  Execution state is saved between calls: the factory is
a python generator whose frame persists across activations, mirroring
MonetDB's factory co-routines, and whatever state the plan object carries
(window buffers, cursors) survives with it.

Algorithm 1 fidelity — every activation performs, in order::

    lock(inputs); lock(outputs)
    result = plan(inputs)           # any relational computation
    consume(inputs)                 # empty / partial / cursor advance
    append(outputs, result)
    unlock(...); suspend()

Locks are acquired in a global order (basket name) to stay deadlock-free
when factories share baskets.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from ..errors import DataCellError
from ..kernel.mal import ResultSet
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.spans import SpanRecorder
from .basket import Basket, BasketSnapshot

__all__ = [
    "ConsumeMode",
    "InputBinding",
    "PlanOutput",
    "ContinuousPlan",
    "CallablePlan",
    "Factory",
    "ActivationResult",
]


class ConsumeMode(enum.Enum):
    """What happens to input tuples after a factory has processed them."""

    ALL = "all"  # bulk empty — the Algorithm 1 default (separate baskets)
    PLAN = "plan"  # the plan's basket expression decides (predicate window)
    SHARED = "shared"  # per-reader cursor; removal at low-water mark (§2.5)
    PEEK = "peek"  # no consumption: basket read as a plain table (§2.6)


@dataclass
class InputBinding:
    """How a factory reads one input basket.

    ``last_seen_seq`` is the factory's high-water mark on this basket: for
    PLAN/PEEK modes (where tuples may legitimately stay behind), the
    factory only re-fires when tuples beyond the mark exist — this is the
    paper's "auxiliary baskets regulate when a transition runs" without the
    extra basket object.
    """

    basket: Basket
    mode: ConsumeMode = ConsumeMode.ALL
    min_tuples: int = 1
    last_seen_seq: int = -1
    optional: bool = False  # does not gate enablement (side inputs)
    # Result-set-constraint windows (inner LIMIT) leave qualifying tuples
    # behind on purpose; such bindings stay enabled while the previous
    # activation still consumed something.
    refire_on_consumption: bool = False
    last_consumed: int = 0


@dataclass
class PlanOutput:
    """What one plan execution produced.

    ``results`` maps output basket name → rows to append.  ``consumed``
    maps input basket name → snapshot positions the plan's basket
    expression referenced (only consulted for ``ConsumeMode.PLAN`` inputs).
    """

    results: Dict[str, ResultSet] = field(default_factory=dict)
    consumed: Dict[str, np.ndarray] = field(default_factory=dict)


class ContinuousPlan:
    """Interface implemented by compiled continuous-query plans."""

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        raise NotImplementedError  # pragma: no cover - interface

    def describe(self) -> str:
        return type(self).__name__

    # -- resource accounting hook --------------------------------------
    def nbytes(self) -> int:
        """Estimated bytes of state the plan carries across activations.

        The default contract mirrors :meth:`export_state`: a stateless
        plan holds nothing.  Stateful plans (window buffers, join
        caches) override this with an estimate of their buffered state;
        it is read at telemetry-sampling cadence, not on the hot path.
        """
        return 0

    # -- durability hooks ----------------------------------------------
    # A plan that carries saved state across activations (window
    # buffers, join caches) overrides these so checkpoints capture it.
    # The default contract is "stateless": export nothing, and refuse a
    # blob on import — silently dropping saved state would un-recover a
    # window mid-stream.
    def export_state(self) -> Optional[bytes]:
        return None

    def import_state(self, blob: Optional[bytes]) -> None:
        if blob is not None:
            raise DataCellError(
                f"plan {self.describe()!r} is stateless but a checkpoint "
                "carries saved state for it (plan/engine version mismatch?)"
            )


class CallablePlan(ContinuousPlan):
    """Adapter turning a python callable into a plan.

    The callable receives ``{basket_name: BasketSnapshot}`` and returns
    either a :class:`PlanOutput`, a ``{basket: ResultSet}`` dict, a single
    :class:`ResultSet` (routed to ``default_output``), or ``None``.
    """

    def __init__(
        self,
        fn: Callable[[Dict[str, BasketSnapshot]], Any],
        default_output: Optional[str] = None,
        name: Optional[str] = None,
    ):
        self._fn = fn
        self._default_output = default_output
        self._name = name or getattr(fn, "__name__", "callable_plan")

    def run(self, snapshots: Dict[str, BasketSnapshot]) -> PlanOutput:
        raw = self._fn(snapshots)
        if raw is None:
            return PlanOutput()
        if isinstance(raw, PlanOutput):
            return raw
        if isinstance(raw, ResultSet):
            if self._default_output is None:
                raise DataCellError(
                    f"plan {self._name!r} returned a bare ResultSet but has "
                    "no default output basket"
                )
            return PlanOutput(results={self._default_output: raw})
        if isinstance(raw, dict):
            return PlanOutput(results=raw)
        raise DataCellError(
            f"plan {self._name!r} returned unsupported type {type(raw)!r}"
        )

    def describe(self) -> str:
        return self._name


@dataclass
class ActivationResult:
    """Statistics of one factory activation.

    ``plan_seconds`` is the time spent inside ``plan.run`` alone;
    ``elapsed - plan_seconds`` is basket I/O (snapshot, consume, append).
    """

    fired: bool
    tuples_in: int = 0
    tuples_out: int = 0
    consumed: int = 0
    elapsed: float = 0.0
    plan_seconds: float = 0.0


class Factory:
    """A continuous query wrapped as a schedulable transition."""

    def __init__(
        self,
        name: str,
        plan: ContinuousPlan,
        inputs: Sequence[Union[InputBinding, Basket]],
        outputs: Sequence[Basket],
        priority: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanRecorder] = None,
    ):
        if not inputs:
            raise DataCellError(
                f"factory {name!r} needs at least one input basket"
            )
        self.name = name
        self.plan = plan
        self.inputs: List[InputBinding] = [
            b if isinstance(b, InputBinding) else InputBinding(b)
            for b in inputs
        ]
        self.outputs: List[Basket] = list(outputs)
        self.priority = priority
        self.activations = 0
        self.total_in = 0
        self.total_out = 0
        self.total_elapsed = 0.0
        self.metrics = metrics if metrics is not None else default_registry()
        self.tracer = tracer
        self._tracing = tracer is not None and tracer.enabled
        # resource-accounting hub (ResourceAccountant); set by the engine
        # when accounting is enabled.  The factory reports plan thread-CPU,
        # queue-wait, and rows/bytes flow to its bound account.
        self.accountant = None
        # durability hook (DurabilityManager); set by the engine when
        # durability is on.  Each productive activation is logged as a
        # firing boundary so recovery replays the same schedule.
        self.wal_sink = None
        self._m_in = self.metrics.counter(
            "datacell_factory_tuples_in_total",
            "Tuples read from input baskets",
            ("factory",),
        ).labels(name)
        self._m_out = self.metrics.counter(
            "datacell_factory_tuples_out_total",
            "Tuples emitted to output baskets",
            ("factory",),
        ).labels(name)
        self._m_plan = self.metrics.histogram(
            "datacell_factory_plan_seconds",
            "Time spent evaluating the continuous plan per activation",
            ("factory",),
        ).labels(name)
        self._m_io = self.metrics.histogram(
            "datacell_factory_io_seconds",
            "Activation time outside the plan: snapshot/consume/append",
            ("factory",),
        ).labels(name)
        for binding in self.inputs:
            if binding.mode is ConsumeMode.SHARED:
                binding.basket.register_reader(self.name)
        # The saved-state co-routine: created lazily on first activation,
        # then resumed forever (the paper: "the first time that the factory
        # is called, a thread is created ... the next time it is called it
        # continues from the point where it stopped").
        self._coroutine: Optional[Iterator[ActivationResult]] = None

    # ------------------------------------------------------------------
    def enabled(self) -> bool:
        """Petri-net firing condition: every input has enough tuples."""
        has_required = False
        any_optional_ready = False
        for binding in self.inputs:
            threshold = max(binding.min_tuples, binding.basket.min_count)
            if binding.mode is ConsumeMode.SHARED:
                ready = binding.basket.unseen_count(self.name) >= threshold
            elif binding.mode in (ConsumeMode.PLAN, ConsumeMode.PEEK):
                # fire only on tuples beyond the high-water mark, or the
                # transition would re-fire forever on leftovers
                fresh = (
                    binding.basket.frontier_seq() > binding.last_seen_seq
                )
                making_progress = (
                    binding.refire_on_consumption
                    and binding.last_consumed > 0
                )
                ready = binding.basket.count >= threshold and (
                    fresh or making_progress
                )
            else:
                ready = binding.basket.count >= threshold
            if binding.optional:
                any_optional_ready = any_optional_ready or ready
                continue
            has_required = True
            if not ready:
                return False
        if not has_required:
            # a factory whose inputs are all optional side-inputs still
            # needs *something* to chew on, or it would fire forever
            return any_optional_ready
        return True

    def activate(self) -> ActivationResult:
        """Resume the factory co-routine for one iteration of its loop."""
        if self._coroutine is None:
            self._coroutine = self._loop()
        result = next(self._coroutine)
        self.activations += 1
        self.total_in += result.tuples_in
        self.total_out += result.tuples_out
        self.total_elapsed += result.elapsed
        return result

    def close(self) -> None:
        """Tear down: drop shared-reader registrations."""
        for binding in self.inputs:
            if binding.mode is ConsumeMode.SHARED:
                try:
                    binding.basket.unregister_reader(self.name)
                except DataCellError:  # pragma: no cover - defensive
                    pass
        self._coroutine = None

    # ------------------------------------------------------------------
    # durability export/import
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Binding cursors + the plan's saved state, for a checkpoint.

        Called inside the checkpointer's all-baskets cut: plan state is
        only ever mutated while the factory holds its baskets' locks, so
        what we copy here is activation-boundary consistent.
        """
        blob = self.plan.export_state()
        return {
            "bindings": [
                [int(b.last_seen_seq), int(b.last_consumed)]
                for b in self.inputs
            ],
            "plan": blob.hex() if blob is not None else None,
        }

    def import_state(self, state: dict) -> None:
        """Restore what :meth:`export_state` captured (same topology)."""
        pairs = state.get("bindings", [])
        if len(pairs) != len(self.inputs):
            raise DataCellError(
                f"factory {self.name!r}: checkpoint has {len(pairs)} input "
                f"bindings, the live factory has {len(self.inputs)}"
            )
        for binding, (seen, consumed) in zip(self.inputs, pairs):
            binding.last_seen_seq = int(seen)
            binding.last_consumed = int(consumed)
        blob = state.get("plan")
        self.plan.import_state(bytes.fromhex(blob) if blob else None)

    # ------------------------------------------------------------------
    def _lock_order(self) -> List[Basket]:
        """All touched baskets, deduped, in global (name) lock order."""
        seen: Dict[int, Basket] = {}
        for binding in self.inputs:
            seen[id(binding.basket)] = binding.basket
        for basket in self.outputs:
            seen[id(basket)] = basket
        return sorted(seen.values(), key=lambda b: b.name.lower())

    def _loop(self) -> Iterator[ActivationResult]:
        """The infinite factory loop of Algorithm 1.

        ``yield`` is the ``suspend()`` call: control returns to the
        scheduler with all locks released, and the next activation resumes
        right after it.
        """
        while True:
            started = time.perf_counter()
            account = (
                self.accountant.account_for(self.name)
                if self.accountant is not None
                else None
            )
            queue_wait = 0.0
            waited = 0
            rows_fresh = 0
            bytes_in = 0
            bytes_out = 0
            plan_cpu = 0.0
            now_mono = time.monotonic() if account is not None else 0.0
            ordered = self._lock_order()
            acquired = []
            try:
                for basket in ordered:
                    basket.lock.acquire()
                    acquired.append(basket)
            except BaseException:
                # an observed lock may refuse the acquisition (strict
                # lock-order recorder); don't leak the ones already held
                for basket in reversed(acquired):
                    basket.lock.release()
                raise
            try:
                snapshots: Dict[str, BasketSnapshot] = {}
                origin_mono: Optional[float] = None
                origin_token = 0
                for binding in self.inputs:
                    prev_seen = binding.last_seen_seq
                    if binding.mode is ConsumeMode.SHARED:
                        snap = binding.basket.read_new(self.name)
                    else:
                        snap = binding.basket.snapshot()
                    if snap.count:
                        binding.last_seen_seq = max(
                            binding.last_seen_seq, int(snap.seqs.max())
                        )
                        if binding.basket._stamping:
                            oldest = float(snap.monos.min())
                            if origin_mono is None or oldest < origin_mono:
                                origin_mono = oldest
                        if self._tracing and not origin_token:
                            origin_token = snap.first_token()
                        if account is not None:
                            # queue-wait/flow charge each tuple once: on
                            # first observation by this query (fresh seqs),
                            # so re-snapshotted PLAN-mode leftovers do not
                            # inflate the account.  The common SHARED-mode
                            # case (everything in view is new) skips the
                            # mask entirely.
                            if prev_seen < int(snap.seqs[0]):
                                fresh = None
                                n_fresh = snap.count
                            else:
                                fresh = snap.seqs > prev_seen
                                n_fresh = int(np.count_nonzero(fresh))
                            if n_fresh:
                                rows_fresh += n_fresh
                                source = binding.basket
                                bytes_in += n_fresh * source.row_nbytes()
                                if source._stamping:
                                    monos = (
                                        snap.monos if fresh is None
                                        else snap.monos[fresh]
                                    )
                                    waits = now_mono - monos
                                    np.maximum(waits, 0.0, out=waits)
                                    queue_wait += float(waits.sum())
                                    waited += n_fresh
                    snapshots[binding.basket.name.lower()] = snap
                tuples_in = sum(s.count for s in snapshots.values())
                fspan = (
                    self.tracer.begin_stage(
                        self.name, "factory", origin_token,
                        tuples_in=tuples_in,
                    )
                    if self._tracing and origin_token
                    else None
                )
                plan_started = time.perf_counter()
                plan_cpu_started = (
                    time.thread_time() if account is not None else 0.0
                )
                if fspan is not None:
                    # publish this activation as the thread's current
                    # stage so the MAL interpreter can hang opcode spans
                    # off it without parameter plumbing
                    with self.tracer.stage(fspan):
                        output = self.plan.run(snapshots)
                else:
                    output = self.plan.run(snapshots)
                if account is not None:
                    plan_cpu = time.thread_time() - plan_cpu_started
                plan_seconds = time.perf_counter() - plan_started
                consumed = self._consume(snapshots, output)
                tuples_out = self._emit(output, origin_mono, origin_token)
                if self.wal_sink is not None and (tuples_in or tuples_out):
                    self.wal_sink.log_firing(self.name)
                if account is not None:
                    for rs in output.results.values():
                        bytes_out += sum(b.nbytes() for b in rs.bats)
                if fspan is not None:
                    self.tracer.end_stage(
                        fspan, handoff=True, tuples_out=tuples_out
                    )
            finally:
                for basket in reversed(ordered):
                    basket.lock.release()
            elapsed = time.perf_counter() - started
            self._m_in.inc(tuples_in)
            self._m_out.inc(tuples_out)
            self._m_plan.observe(plan_seconds)
            self._m_io.observe(elapsed - plan_seconds)
            if account is not None:
                self.accountant.record_activation(
                    account,
                    plan_cpu=plan_cpu,
                    queue_wait=queue_wait,
                    waited_tuples=waited,
                    rows_in=rows_fresh,
                    rows_out=tuples_out,
                    bytes_in=bytes_in,
                    bytes_out=bytes_out,
                )
            yield ActivationResult(
                fired=True,
                tuples_in=tuples_in,
                tuples_out=tuples_out,
                consumed=consumed,
                elapsed=elapsed,
                plan_seconds=plan_seconds,
            )

    def _consume(
        self,
        snapshots: Dict[str, BasketSnapshot],
        output: PlanOutput,
    ) -> int:
        """Apply each input's consumption mode after the plan ran."""
        removed = 0
        for binding in self.inputs:
            key = binding.basket.name.lower()
            snap = snapshots[key]
            if binding.mode is ConsumeMode.ALL:
                removed += binding.basket.consume_seqs(snap.seqs)
            elif binding.mode is ConsumeMode.PLAN:
                positions = output.consumed.get(key)
                binding.last_consumed = 0
                if positions is not None and len(positions):
                    taken = binding.basket.consume_seqs(
                        snap.seqs[np.asarray(positions, dtype=np.int64)]
                    )
                    binding.last_consumed = taken
                    removed += taken
            elif binding.mode is ConsumeMode.SHARED:
                if snap.count:
                    binding.basket.advance_reader(
                        self.name, int(snap.seqs.max())
                    )
                removed += binding.basket.gc_shared()
            # PEEK consumes nothing
        return removed

    def _emit(
        self,
        output: PlanOutput,
        origin_mono: Optional[float] = None,
        origin_token: int = 0,
    ) -> int:
        """Append plan results to the output baskets.

        ``origin_mono`` (the earliest monotonic arrival stamp among this
        activation's inputs) is propagated so downstream emitters measure
        true insert→emit latency across factory chains; ``origin_token``
        carries the sampled trace token the same way.
        """
        produced = 0
        by_name = {b.name.lower(): b for b in self.outputs}
        for name, result in output.results.items():
            basket = by_name.get(name.lower())
            if basket is None:
                raise DataCellError(
                    f"factory {self.name!r} produced rows for unknown "
                    f"output basket {name!r}"
                )
            produced += basket.append_result(
                result, mono=origin_mono, trace_token=origin_token
            )
        return produced

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ", ".join(b.basket.name for b in self.inputs)
        outs = ", ".join(b.name for b in self.outputs)
        return f"Factory({self.name!r}: [{ins}] -> [{outs}])"
