"""Baskets — the key data structure of the DataCell (paper §2.2).

A basket holds a portion of a stream as a temporary main-memory table.  It
aligns with SQL'03 table semantics as much as possible; the prime
differences are the retention period (a tuple is removed once consumed by
all relevant continuous queries) and the implicit ``dc_time`` column
stamping each tuple's arrival time.

Implementation notes
--------------------
* A basket *is* a catalog :class:`~repro.kernel.catalog.Table` (the paper
  stores baskets as ordinary BATs), extended with:

  - the implicit ``dc_time`` timestamp column;
  - a hidden, monotonically increasing per-tuple sequence number used to
    give tuples a stable identity across consume cycles;
  - consumption primitives (:meth:`consume_all`, :meth:`consume_positions`);
  - per-reader cursors implementing the *shared baskets* strategy, where a
    tuple stays in the basket until every registered reader has seen it.

* There is deliberately **no arrival order guarantee** beyond what the
  caller imposes: the paper treats a basket as a multi-set and considers
  arrival order a semantic issue.  Sequence numbers reflect ingest order at
  this node, which window operators may use, but nothing reorders tuples.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import BasketError
from ..kernel.bat import BAT
from ..kernel.catalog import ColumnDef, Schema, Table
from ..kernel.mal import ResultSet
from ..kernel.types import AtomType
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.spans import SpanRecorder
from .clock import Clock, WallClock

__all__ = ["Basket", "BasketSnapshot", "TIME_COLUMN"]

TIME_COLUMN = "dc_time"


class BasketSnapshot:
    """An immutable view of a basket's content at activation time.

    Columns are the basket's BATs re-based to a dense 0..n-1 head, so
    candidate lists produced by plans are directly usable as positions when
    telling the basket which tuples were consumed.  ``seqs`` carries the
    stable per-tuple sequence numbers for the same positions.
    """

    def __init__(
        self,
        names: Sequence[str],
        bats: Sequence[BAT],
        seqs: np.ndarray,
        monos: Optional[np.ndarray] = None,
        tokens: Optional[np.ndarray] = None,
    ):
        self.names = list(names)
        self.bats = list(bats)
        self.seqs = seqs
        self._monos = monos
        self.tokens = tokens

    def first_token(self) -> int:
        """The first sampled trace token among the snapshot's tuples.

        Span causality plumbing: factories/emitters continue the trace
        of the oldest sampled tuple they process.  ``0`` when nothing in
        view is part of a sampled batch (or tokens are not tracked).
        """
        if self.tokens is None or not len(self.tokens):
            return 0
        nonzero = self.tokens[self.tokens != 0]
        return int(nonzero[0]) if nonzero.size else 0

    @property
    def monos(self) -> np.ndarray:
        """Hidden monotonic arrival stamps (same positions as ``seqs``).

        The end-to-end latency plumbing — never user-visible.  Baskets
        with stamping disabled (no-op metrics) produce snapshots without
        stamps; those materialize as "now" lazily, only if read.
        """
        if self._monos is None:
            self._monos = np.full(len(self.seqs), time.monotonic())
        return self._monos

    @property
    def count(self) -> int:
        return self.bats[0].count if self.bats else 0

    def __len__(self) -> int:
        return self.count

    def column(self, name: str) -> BAT:
        try:
            return self.bats[self.names.index(name.lower())]
        except ValueError:
            raise BasketError(f"snapshot has no column {name!r}") from None

    def as_result(self) -> ResultSet:
        return ResultSet(self.names, self.bats)

    def env(self, prefix: str) -> Dict[str, BAT]:
        """Bind columns into a MAL environment as ``prefix.column``."""
        return {f"{prefix}.{n}": b for n, b in zip(self.names, self.bats)}


class Basket(Table):
    """A stream buffer with consumption semantics (see module docstring).

    ``weighted`` marks weighted-delta (Z-set) mode: the last user column
    is ``dc_weight`` and each row is an insert (+1) or retract (−1) of
    the rest of the row — the output representation of incremental
    circuit plans (:mod:`repro.incremental`).  The flag is advisory
    metadata for consumers (``fetch_integrated``, tooling); storage and
    consumption semantics are unchanged.
    """

    weighted = False

    def __init__(
        self,
        name: str,
        columns: Sequence[Tuple[str, AtomType]],
        clock: Optional[Clock] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanRecorder] = None,
    ):
        if any(col[0].lower() in (TIME_COLUMN, "dc_seq") for col in columns):
            raise BasketError(
                f"column names {TIME_COLUMN!r}/'dc_seq' are reserved"
            )
        defs = [ColumnDef(n, a) for n, a in columns]
        defs.append(ColumnDef(TIME_COLUMN, AtomType.TIMESTAMP))
        super().__init__(name, Schema(defs), is_basket=True)
        self.clock = clock or WallClock()
        self._seq = BAT(AtomType.LNG)
        # hidden monotonic arrival stamps, aligned with ``_seq``: latency
        # measurement must survive wall-clock jumps, so ``dc_time`` (wall)
        # is user-facing and this column feeds the histograms
        self._mono = BAT(AtomType.DBL)
        self._next_seq = 0
        self.min_count = 1  # scheduler firing threshold (paper §2.4)
        self.capacity: Optional[int] = None  # load-shedding high watermark
        # system streams (repro.obs.sysstreams): reserved sys.* baskets
        # are exempt from WAL capture, checkpoints, and load shedding;
        # instead ``retention`` bounds them as a ring buffer — oldest
        # rows beyond it are trimmed silently, never counted as shed
        self.is_system = False
        self.retention: Optional[int] = None
        self.total_trimmed = 0
        # durability hook: when a DurabilityManager is attached, every
        # ingested batch is write-ahead logged at this boundary (before
        # load shedding, which replay re-applies deterministically)
        self.wal_sink = None
        self._readers: Dict[str, int] = {}
        # statistics
        self.total_in = 0
        self.total_out = 0
        self.total_shed = 0
        self.high_water = 0
        self.metrics = metrics if metrics is not None else default_registry()
        # latency stamping is skipped entirely in no-op mode: nothing
        # reads the stamps when every histogram is a null instrument
        self._stamping = self.metrics.enabled
        # trace tokens ride along only when a span recorder is attached:
        # the column marks which tuples belong to a sampled batch, so
        # causality survives basket hops exactly like the origin stamp
        self._token_tracking = tracer is not None and tracer.enabled
        self._tokens = BAT(AtomType.LNG)
        self._row_nbytes: Optional[int] = None  # row_nbytes() cache
        self._m_in = self.metrics.counter(
            "datacell_basket_inserted_total",
            "Tuples inserted into the basket",
            ("basket",),
        ).labels(name)
        self._m_out = self.metrics.counter(
            "datacell_basket_consumed_total",
            "Tuples removed from the basket by consumption",
            ("basket",),
        ).labels(name)
        self._m_shed = self.metrics.counter(
            "datacell_basket_shed_total",
            "Tuples dropped by load shedding",
            ("basket",),
        ).labels(name)
        self._m_depth = self.metrics.gauge(
            "datacell_basket_depth",
            "Tuples currently buffered",
            ("basket",),
        ).labels(name)
        self._m_hwm = self.metrics.gauge(
            "datacell_basket_high_water",
            "Maximum depth ever observed",
            ("basket",),
        ).labels(name)

    def _record_depth(self) -> None:
        """Refresh depth/high-water instruments (call under ``self.lock``)."""
        depth = self.count
        if depth > self.high_water:
            self.high_water = depth
        self._m_depth.set(depth)
        self._m_hwm.set_max(depth)

    # ------------------------------------------------------------------
    # schema helpers
    # ------------------------------------------------------------------
    @property
    def user_columns(self) -> List[ColumnDef]:
        """Schema without the implicit timestamp column."""
        return [c for c in self.schema if c.name != TIME_COLUMN]

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def insert_rows(
        self,
        rows: Iterable[Sequence[Any]],
        timestamp: Optional[float] = None,
        trace_token: int = 0,
    ) -> int:
        """Append user-arity tuples, stamping arrival time and sequence.

        Returns the number of tuples appended (after load shedding, if a
        ``capacity`` watermark is set).
        """
        rows = list(rows)
        if not rows:
            return 0
        stamp = self.clock.now() if timestamp is None else float(timestamp)
        user_cols = self.user_columns
        arity = len(user_cols)
        for row in rows:
            if len(row) != arity:
                raise BasketError(
                    f"basket {self.name!r}: row arity {len(row)} != {arity}"
                )
        with self.lock:
            # columnar ingest: transpose once, append one array per column
            columns = list(zip(*rows))
            for col, values in zip(user_cols, columns):
                self.bat(col.name).append_many(values)
            n = len(rows)
            self.bat(TIME_COLUMN).append_array(np.full(n, stamp))
            if self._stamping:
                self._mono.append_array(np.full(n, time.monotonic()))
            if self._token_tracking:
                self._tokens.append_array(
                    np.full(n, trace_token, dtype=np.int64)
                )
            self._seq.append_array(
                np.arange(self._next_seq, self._next_seq + n, dtype=np.int64)
            )
            self._next_seq += n
            self.total_in += n
            self._m_in.inc(n)
            if self.wal_sink is not None:
                self._log_ingest(n, stamp)
            shed = self._shed_if_over_capacity()
            self._trim_to_retention()
            self._record_depth()
        return len(rows) - shed

    def insert_columns(
        self,
        columns: Dict[str, np.ndarray],
        timestamp: Optional[float] = None,
        trace_token: int = 0,
    ) -> int:
        """Columnar bulk ingest (receptor fast path).

        ``columns`` covers the user columns only; ``dc_time`` and sequence
        numbers are filled in here.
        """
        stamp = self.clock.now() if timestamp is None else float(timestamp)
        user_names = {c.name.lower() for c in self.user_columns}
        provided = {k.lower() for k in columns}
        if provided != user_names:
            raise BasketError(
                f"bulk insert must cover exactly the user columns "
                f"{sorted(user_names)}, got {sorted(provided)}"
            )
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise BasketError("bulk insert arrays differ in length")
        n = lengths.pop()
        with self.lock:
            for name, values in columns.items():
                self.bat(name).append_array(np.asarray(values))
            self.bat(TIME_COLUMN).append_array(np.full(n, stamp))
            if self._stamping:
                self._mono.append_array(np.full(n, time.monotonic()))
            if self._token_tracking:
                self._tokens.append_array(
                    np.full(n, trace_token, dtype=np.int64)
                )
            self._seq.append_array(
                np.arange(self._next_seq, self._next_seq + n, dtype=np.int64)
            )
            self._next_seq += n
            self.total_in += n
            self._m_in.inc(n)
            if self.wal_sink is not None:
                self._log_ingest(n, stamp)
            shed = self._shed_if_over_capacity()
            self._trim_to_retention()
            self._record_depth()
        return n - shed

    def _log_ingest(self, n: int, stamp: float) -> None:
        """WAL the batch just appended (call under ``self.lock``).

        Reads the freshly appended tails so the logged arrays carry the
        coerced storage representation, and runs before shedding so the
        log is the pre-shed ground truth (replay re-sheds identically).
        Only *ingested* batches are logged — factory output appended via
        :meth:`append_result` is derived state, recomputed by replay.
        """
        if n <= 0:
            return
        self.wal_sink.log_insert(
            self.name,
            stamp,
            [(c.name.lower(), c.atom) for c in self.user_columns],
            [self.bat(c.name).tail[-n:] for c in self.user_columns],
        )

    def _shed_if_over_capacity(self) -> int:
        """Drop oldest tuples beyond the capacity watermark (load shedding)."""
        if self.capacity is None or self.count <= self.capacity:
            return 0
        overflow = self.count - self.capacity
        self._rebuild_keeping(np.arange(overflow, self.count, dtype=np.int64))
        self.total_shed += overflow
        self._m_shed.inc(overflow)
        return overflow

    def _trim_to_retention(self) -> int:
        """Ring-buffer retention (call under ``self.lock``): drop oldest
        rows beyond ``retention`` without counting them as shed — this is
        the bounded-history semantics of ``sys.*`` streams, not a load
        response."""
        if self.retention is None or self.count <= self.retention:
            return 0
        overflow = self.count - self.retention
        self._rebuild_keeping(np.arange(overflow, self.count, dtype=np.int64))
        self.total_trimmed += overflow
        return overflow

    # ------------------------------------------------------------------
    # snapshots & consumption
    # ------------------------------------------------------------------
    def snapshot(self, since_seq: Optional[int] = None) -> BasketSnapshot:
        """Current content (optionally only tuples with seq > ``since_seq``).

        Caller should hold the basket lock for a consistent multi-column
        view; factories do (Algorithm 1 locks before reading).
        """
        with self.lock:
            seqs = self._seq.tail.copy()
            if since_seq is None:
                positions = np.arange(len(seqs), dtype=np.int64)
            else:
                positions = np.flatnonzero(seqs > since_seq).astype(np.int64)
            names = [c.name.lower() for c in self.schema]
            bats = [
                self.bat(c.name).take_positions(positions, hseqbase=0)
                for c in self.schema
            ]
            monos = (
                self._mono.tail[positions].copy() if self._stamping else None
            )
            tokens = (
                self._tokens.tail[positions].copy()
                if self._token_tracking
                else None
            )
            return BasketSnapshot(names, bats, seqs[positions], monos, tokens)

    def consume_all(self) -> int:
        """Remove every tuple (the bulk ``basket.empty`` of Algorithm 1)."""
        with self.lock:
            removed = self.count
            self._rebuild_keeping(np.empty(0, dtype=np.int64))
            self.total_out += removed
            self._m_out.inc(removed)
            self._record_depth()
            return removed

    def consume_seqs(self, seqs: np.ndarray) -> int:
        """Remove the tuples with the given sequence numbers.

        This is the basket-expression side effect (§2.6): only referenced
        tuples are removed, leaving a partially emptied basket behind.
        """
        if len(seqs) == 0:
            return 0
        with self.lock:
            current = self._seq.tail
            keep_mask = ~np.isin(current, np.asarray(seqs, dtype=np.int64))
            keep = np.flatnonzero(keep_mask).astype(np.int64)
            removed = self.count - len(keep)
            self._rebuild_keeping(keep)
            self.total_out += removed
            self._m_out.inc(removed)
            self._record_depth()
            return removed

    def _rebuild_keeping(self, positions: np.ndarray) -> None:
        """Swap in a new BAT generation holding only ``positions``."""
        new_bats = {}
        for col in self.schema:
            old = self.bat(col.name)
            new_bats[col.name.lower()] = old.take_positions(
                positions, hseqbase=0
            )
        self._seq = self._seq.take_positions(positions, hseqbase=0)
        if self._stamping:
            self._mono = self._mono.take_positions(positions, hseqbase=0)
        if self._token_tracking:
            self._tokens = self._tokens.take_positions(positions, hseqbase=0)
        self.replace_bats(new_bats)

    def truncate(self) -> int:
        """Table-compatible truncate that also clears sequence numbers."""
        with self.lock:
            removed = self.count
            self._rebuild_keeping(np.empty(0, dtype=np.int64))
            self.total_out += removed
            self._m_out.inc(removed)
            self._record_depth()
            return removed

    def frontier_seq(self) -> int:
        """The highest sequence number ever assigned (-1 when empty)."""
        with self.lock:
            return self._next_seq - 1

    def nbytes(self) -> int:
        """Estimated bytes buffered: every schema column's BAT plus the
        hidden sequence / arrival-stamp / trace-token BATs actually in
        use.  O(columns), inherits the per-BAT estimate contract."""
        with self.lock:
            total = sum(self.bat(c.name).nbytes() for c in self.schema)
            total += self._seq.nbytes()
            if self._stamping:
                total += self._mono.nbytes()
            if self._token_tracking:
                total += self._tokens.nbytes()
            return total

    def row_nbytes(self) -> int:
        """Estimated bytes per buffered tuple — the ``nbytes()`` contract
        divided out.  Column dtypes and the hidden-BAT flags are fixed at
        construction, so the width is computed once and cached; the
        resource accountant charges ``rows * row_nbytes()`` per batch
        without walking columns on the hot path."""
        width = self._row_nbytes
        if width is None:
            with self.lock:
                width = sum(
                    self.bat(c.name).element_nbytes() for c in self.schema
                )
                width += self._seq.element_nbytes()
                if self._stamping:
                    width += self._mono.element_nbytes()
                if self._token_tracking:
                    width += self._tokens.element_nbytes()
            self._row_nbytes = width
        return width

    def state_digest(self) -> str:
        """A stable hash of the basket's observable state.

        Covers buffered rows (all columns including ``dc_time``), their
        sequence numbers, the next-sequence frontier, and every reader
        cursor — everything that determines future scheduling decisions.
        Two baskets with equal digests are indistinguishable to the
        engine, which is how the simulation harness asserts that a
        ``(seed, policy, fault plan)`` episode is bit-reproducible.
        Hidden monotonic stamps are deliberately excluded: they are real
        wall-time and would differ across otherwise identical runs.

        Stability contract (the durability subsystem depends on it):
        the digest is a pure function of ``(next_seq, seq column,
        reader cursors, every schema column tail including dc_time)``
        and of nothing else — not monotonic stamps, not trace tokens,
        not the in/out/shed statistics counters, not BAT capacity or
        generation.  Exporting a basket's state and importing it into a
        same-schema basket therefore reproduces the digest exactly,
        which is how recovery tests assert post-recovery state equals
        the pre-crash checkpoint.  Changing what the digest covers
        invalidates checkpoint-equality comparisons across versions;
        extend it only with state that genuinely alters future engine
        behaviour, and update ``docs/durability.md`` when you do.
        """
        import hashlib

        with self.lock:
            parts: List[str] = [
                repr(self._next_seq),
                repr(self._seq.tail.tolist()),
                repr(sorted(self._readers.items())),
            ]
            for col in self.schema:
                parts.append(col.name.lower())
                parts.append(repr(self.bat(col.name).tail.tolist()))
        return hashlib.sha256("|".join(parts).encode()).hexdigest()

    # ------------------------------------------------------------------
    # durability export/import (checkpoint cut <-> recovery restore)
    # ------------------------------------------------------------------
    def export_state(self):
        """Copy everything :meth:`state_digest` covers, for a checkpoint.

        The checkpointer calls this while holding every basket lock (the
        engine-wide cut); the returned arrays are copies, so disk I/O
        can happen after the locks are released.
        """
        from ..durability.checkpoint import BasketState

        with self.lock:
            return BasketState(
                columns=[(c.name.lower(), c.atom) for c in self.schema],
                arrays=[self.bat(c.name).tail.copy() for c in self.schema],
                seqs=self._seq.tail.copy(),
                next_seq=self._next_seq,
                readers=dict(self._readers),
                total_in=self.total_in,
                total_out=self.total_out,
                total_shed=self.total_shed,
            )

    def import_state(self, state) -> None:
        """Replace this basket's content with a checkpointed state.

        The basket must have been created with the same schema (recovery
        restores state into a rebuilt topology, it does not create
        schema).  Hidden monotonic stamps and trace tokens are reborn
        "now"/unsampled: both are explicitly outside the digest's
        stability contract.
        """
        expected = [(c.name.lower(), c.atom) for c in self.schema]
        if list(state.columns) != expected:
            raise BasketError(
                f"basket {self.name!r}: checkpoint schema "
                f"{state.columns} != live schema {expected}"
            )
        with self.lock:
            new_bats: Dict[str, BAT] = {}
            for (col_name, atom), array in zip(state.columns, state.arrays):
                bat = BAT(atom)
                bat.append_array(np.asarray(array))
                new_bats[col_name] = bat
            self.replace_bats(new_bats)
            seq_bat = BAT(AtomType.LNG)
            seq_bat.append_array(np.asarray(state.seqs, dtype=np.int64))
            self._seq = seq_bat
            n = self._seq.count
            if self._stamping:
                self._mono = BAT(AtomType.DBL)
                self._mono.append_array(np.full(n, time.monotonic()))
            if self._token_tracking:
                self._tokens = BAT(AtomType.LNG)
                self._tokens.append_array(np.zeros(n, dtype=np.int64))
            self._next_seq = int(state.next_seq)
            self._readers = dict(state.readers)
            self.total_in = int(state.total_in)
            self.total_out = int(state.total_out)
            self.total_shed = int(state.total_shed)
            self._record_depth()

    # ------------------------------------------------------------------
    # shared-baskets reader protocol (paper §2.5, second strategy)
    # ------------------------------------------------------------------
    def register_reader(self, reader: str) -> None:
        """Register a factory as a shared reader of this basket.

        A new reader sees everything currently buffered plus all future
        tuples; tuples already consumed before registration are gone (a
        newly arriving query joins the live stream, paper §1).
        """
        with self.lock:
            if reader in self._readers:
                raise BasketError(
                    f"reader {reader!r} already registered on {self.name!r}"
                )
            if self.count:
                self._readers[reader] = int(self._seq.tail[0]) - 1
            else:
                self._readers[reader] = self._next_seq - 1

    def unregister_reader(self, reader: str) -> None:
        with self.lock:
            self._readers.pop(reader, None)
            self.gc_shared()

    def readers(self) -> List[str]:
        return list(self._readers)

    def read_new(self, reader: str) -> BasketSnapshot:
        """Tuples this reader has not yet seen (does NOT advance the cursor)."""
        with self.lock:
            if reader not in self._readers:
                raise BasketError(
                    f"reader {reader!r} not registered on {self.name!r}"
                )
            return self.snapshot(since_seq=self._readers[reader])

    def advance_reader(self, reader: str, upto_seq: int) -> None:
        """Mark tuples up to ``upto_seq`` as seen by ``reader``."""
        with self.lock:
            if reader not in self._readers:
                raise BasketError(
                    f"reader {reader!r} not registered on {self.name!r}"
                )
            self._readers[reader] = max(self._readers[reader], int(upto_seq))

    def unseen_count(self, reader: str) -> int:
        """How many buffered tuples the reader has not seen yet."""
        with self.lock:
            if reader not in self._readers:
                raise BasketError(
                    f"reader {reader!r} not registered on {self.name!r}"
                )
            cursor = self._readers[reader]
            return int(np.count_nonzero(self._seq.tail > cursor))

    def gc_shared(self) -> int:
        """Drop tuples every registered reader has seen (low-water mark).

        Implements "the shared baskets strategy removes the tuples from a
        shared input basket only once all relevant factories have seen it".
        Returns the number of tuples physically removed.
        """
        with self.lock:
            if not self._readers or self.count == 0:
                return 0
            low_water = min(self._readers.values())
            keep = np.flatnonzero(self._seq.tail > low_water).astype(np.int64)
            removed = self.count - len(keep)
            if removed:
                self._rebuild_keeping(keep)
                self.total_out += removed
                self._m_out.inc(removed)
                self._record_depth()
            return removed

    # ------------------------------------------------------------------
    def append_result(
        self,
        result: ResultSet,
        timestamp: Optional[float] = None,
        mono: Optional[float] = None,
        trace_token: int = 0,
    ) -> int:
        """Append a factory's result set (user columns) to this basket.

        ``mono`` is the monotonic *origin* stamp to credit the appended
        tuples with: factories pass the earliest arrival stamp of the
        inputs that produced this result, so insert→emit latency survives
        through intermediate baskets.  ``None`` stamps "now" (tuples born
        here).  ``trace_token`` likewise forwards the sampled trace token
        of the inputs so span causality survives basket hops.
        """
        rows_added = result.count
        if rows_added == 0:
            return 0
        user_cols = self.user_columns
        provides_time = len(result.names) == len(user_cols) + 1
        expected = len(user_cols) + (1 if provides_time else 0)
        if len(result.names) != expected:
            raise BasketError(
                f"result arity {len(result.names)} does not match basket "
                f"{self.name!r} ({len(user_cols)} user columns)"
            )
        stamp = self.clock.now() if timestamp is None else float(timestamp)
        with self.lock:
            for col, bat in zip(self.schema, result.bats):
                self.bat(col.name).append_bat(bat)
            if not provides_time:
                self.bat(TIME_COLUMN).append_array(
                    np.full(rows_added, stamp)
                )
            if self._stamping:
                mono_stamp = (
                    time.monotonic() if mono is None else float(mono)
                )
                self._mono.append_array(np.full(rows_added, mono_stamp))
            if self._token_tracking:
                self._tokens.append_array(
                    np.full(rows_added, trace_token, dtype=np.int64)
                )
            self._seq.append_array(
                np.arange(
                    self._next_seq, self._next_seq + rows_added, dtype=np.int64
                )
            )
            self._next_seq += rows_added
            self.total_in += rows_added
            self._m_in.inc(rows_added)
            self._shed_if_over_capacity()
            self._trim_to_retention()
            self._record_depth()
        return rows_added

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Basket({self.name!r}, rows={self.count}, in={self.total_in}, "
            f"out={self.total_out}, readers={len(self._readers)})"
        )
