"""Receptors — the ingest edge of the DataCell (paper §2.1).

A receptor continuously picks up incoming events from a communication
channel, validates their structure against the target basket's schema, and
forwards the content into one or more baskets.  In threaded mode each
receptor is its own thread; in synchronous mode the scheduler activates it
like any other Petri-net transition (its input place is the channel).
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence

from ..adapters.channels import Channel, parse_tuple_text
from ..errors import AdapterError
from ..kernel.types import parse_atom
from ..obs.metrics import MetricsRegistry, default_registry
from ..obs.spans import SpanRecorder
from .basket import Basket
from .factory import ActivationResult

__all__ = ["Receptor"]


class Receptor:
    """Moves events from a channel into target baskets.

    ``targets`` may name several baskets: that is the *separate baskets*
    strategy's replication point — every incoming tuple is copied into the
    private basket of each interested query.  All targets must share the
    same user schema.

    Invalid events (wrong arity, unparsable fields) are counted and
    skipped rather than stopping the stream; a stream engine must outlive
    malformed input.
    """

    def __init__(
        self,
        name: str,
        channel: Channel,
        targets: Sequence[Basket],
        batch_size: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanRecorder] = None,
        priority: int = 10,
    ):
        if not targets:
            raise AdapterError(f"receptor {name!r} needs at least one target")
        first = [
            (c.name.lower(), c.atom) for c in targets[0].user_columns
        ]
        for basket in targets[1:]:
            other = [(c.name.lower(), c.atom) for c in basket.user_columns]
            if other != first:
                raise AdapterError(
                    f"receptor {name!r}: target baskets have differing "
                    "schemas"
                )
        self.name = name
        self.channel = channel
        self.targets: List[Basket] = list(targets)
        self.batch_size = batch_size
        self.priority = priority  # receptors drain ahead of queries by default
        self.total_events = 0
        self.total_invalid = 0
        self.activations = 0
        self.metrics = metrics if metrics is not None else default_registry()
        self.tracer = tracer
        self._tracing = tracer is not None and tracer.enabled
        self._m_events = self.metrics.counter(
            "datacell_receptor_events_total",
            "Valid events ingested from the channel",
            ("receptor",),
        ).labels(name)
        self._m_invalid = self.metrics.counter(
            "datacell_receptor_invalid_total",
            "Malformed events counted and skipped",
            ("receptor",),
        ).labels(name)

    # ------------------------------------------------------------------
    def enabled(self) -> bool:
        """Fires when the channel has events waiting (its input place)."""
        return self.channel.pending() > 0

    def activate(self) -> ActivationResult:
        """Drain up to ``batch_size`` events into the target baskets."""
        started = time.perf_counter()
        events = self.channel.poll(self.batch_size)
        rows = []
        for event in events:
            row = self._validate(event)
            if row is not None:
                rows.append(row)
        if rows:
            token = 0
            span = None
            if self._tracing:
                # one root span per appended batch; the receptor's own
                # work is the trace's first child stage
                token = self.tracer.begin_batch(
                    receptor=self.name, rows=len(rows)
                )
                span = self.tracer.begin_stage(
                    self.name, "receptor", token, rows=len(rows)
                )
            for basket in self.targets:
                basket.insert_rows(rows, trace_token=token)
            if span is not None:
                self.tracer.end_stage(span, handoff=True)
        self.activations += 1
        self.total_events += len(rows)
        self._m_events.inc(len(rows))
        return ActivationResult(
            fired=True,
            tuples_in=len(events),
            tuples_out=len(rows) * len(self.targets),
            elapsed=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def _validate(self, event: Any) -> Optional[List[Any]]:
        """Parse/validate one event; None (and a counter bump) if bad."""
        columns = self.targets[0].user_columns
        try:
            if isinstance(event, str):
                fields = parse_tuple_text(event)
                if len(fields) != len(columns):
                    raise AdapterError(
                        f"arity {len(fields)} != {len(columns)}"
                    )
                return [
                    parse_atom(col.atom, field)
                    for col, field in zip(columns, fields)
                ]
            fields = list(event)
            if len(fields) != len(columns):
                raise AdapterError(f"arity {len(fields)} != {len(columns)}")
            return fields
        except Exception:
            self.total_invalid += 1
            self._m_invalid.inc()
            return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        outs = ", ".join(b.name for b in self.targets)
        return f"Receptor({self.name!r} -> [{outs}])"
