"""The DataCell core: baskets, factories, scheduler, strategies, windows."""

from .basket import Basket, BasketSnapshot, TIME_COLUMN
from .clock import Clock, LogicalClock, VirtualClock, WallClock
from .continuous import ContinuousQuery
from .emitter import CollectingClient, Emitter
from .engine import DataCell
from .factory import (
    ActivationResult,
    CallablePlan,
    ConsumeMode,
    ContinuousPlan,
    Factory,
    InputBinding,
    PlanOutput,
)
from .petrinet import MarkedPlace, PetriNet, Place, Transition
from .receptor import Receptor
from .scheduler import FiringPolicy, PriorityPolicy, Scheduler
from .shedding import LoadShedController, apply_shedding_policy
from .topology import NetworkTopology, build_topology
from .windows import (
    IncrementalWindowAggregatePlan,
    ReEvalWindowAggregatePlan,
    SlidingWindowJoinPlan,
    WindowMode,
    WindowSpec,
)

__all__ = [
    "Basket",
    "BasketSnapshot",
    "TIME_COLUMN",
    "Clock",
    "LogicalClock",
    "VirtualClock",
    "WallClock",
    "ContinuousQuery",
    "CollectingClient",
    "Emitter",
    "DataCell",
    "ActivationResult",
    "CallablePlan",
    "ConsumeMode",
    "ContinuousPlan",
    "Factory",
    "InputBinding",
    "PlanOutput",
    "MarkedPlace",
    "PetriNet",
    "Place",
    "Transition",
    "Receptor",
    "Scheduler",
    "FiringPolicy",
    "PriorityPolicy",
    "LoadShedController",
    "apply_shedding_policy",
    "NetworkTopology",
    "build_topology",
    "WindowSpec",
    "WindowMode",
    "IncrementalWindowAggregatePlan",
    "ReEvalWindowAggregatePlan",
    "SlidingWindowJoinPlan",
]
