"""Topology introspection: the scheduler's network as an explicit Petri net.

The paper models the DataCell as a Petri net (baskets = places,
receptors/factories/emitters = transitions).  This module recovers that
net from a live :class:`~repro.core.scheduler.Scheduler` — for debugging,
documentation, and the structural assertions in tests — and renders it as
Graphviz DOT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from .emitter import Emitter
from .factory import Factory
from .receptor import Receptor
from .scheduler import Scheduler
from .strategies import ReplicatorTransition

__all__ = ["NetworkTopology", "build_topology"]


@dataclass
class NetworkTopology:
    """Places, transitions and arcs of the running query network."""

    places: List[str] = field(default_factory=list)  # basket/channel names
    transitions: List[Tuple[str, str]] = field(default_factory=list)
    # arcs: (source node, target node); nodes are place or transition names
    arcs: List[Tuple[str, str]] = field(default_factory=list)

    def successors(self, node: str) -> List[str]:
        return sorted(t for s, t in self.arcs if s == node)

    def predecessors(self, node: str) -> List[str]:
        return sorted(s for s, t in self.arcs if t == node)

    def downstream_of(self, node: str) -> Set[str]:
        """Every node reachable from ``node`` (the data's future)."""
        seen: Set[str] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for nxt in self.successors(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def to_dot(self) -> str:
        """Graphviz DOT: places as ellipses, transitions as boxes."""
        lines = ["digraph datacell {", "  rankdir=LR;"]
        for place in self.places:
            lines.append(f'  "{place}" [shape=ellipse];')
        for name, kind in self.transitions:
            lines.append(f'  "{name}" [shape=box, label="{name}\\n({kind})"];')
        for src, dst in self.arcs:
            lines.append(f'  "{src}" -> "{dst}";')
        lines.append("}")
        return "\n".join(lines)


def build_topology(scheduler: Scheduler) -> NetworkTopology:
    """Recover the Petri net from the scheduler's registered transitions."""
    topo = NetworkTopology()
    places: Set[str] = set()

    def add_place(name: str) -> None:
        if name not in places:
            places.add(name)
            topo.places.append(name)

    for transition in scheduler.transitions():
        name = transition.name
        if isinstance(transition, Receptor):
            topo.transitions.append((name, "receptor"))
            channel = getattr(transition.channel, "name", "channel")
            add_place(f"channel:{channel}")
            topo.arcs.append((f"channel:{channel}", name))
            for basket in transition.targets:
                add_place(basket.name)
                topo.arcs.append((name, basket.name))
        elif isinstance(transition, Factory):
            topo.transitions.append((name, "factory"))
            for binding in transition.inputs:
                add_place(binding.basket.name)
                topo.arcs.append((binding.basket.name, name))
            for basket in transition.outputs:
                add_place(basket.name)
                topo.arcs.append((name, basket.name))
        elif isinstance(transition, Emitter):
            topo.transitions.append((name, "emitter"))
            add_place(transition.source.name)
            topo.arcs.append((transition.source.name, name))
            sink = f"clients:{name}"
            add_place(sink)
            topo.arcs.append((name, sink))
        elif isinstance(transition, ReplicatorTransition):
            topo.transitions.append((name, "replicator"))
            add_place(transition.source.name)
            topo.arcs.append((transition.source.name, name))
            for basket in transition.targets:
                add_place(basket.name)
                topo.arcs.append((name, basket.name))
        else:  # unknown custom transition: node only
            topo.transitions.append((name, type(transition).__name__))
    return topo
