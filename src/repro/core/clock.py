"""Clocks stamping the implicit timestamp column of every basket.

The paper attaches a timestamp column to each stream table "reflecting the
time that this tuple entered the system".  Benchmarks and tests need this to
be deterministic, so the engine accepts either a :class:`WallClock` (real
time) or a :class:`LogicalClock` (manually advanced ticks).
"""

from __future__ import annotations

import threading
import time

__all__ = ["Clock", "WallClock", "MonotonicClock", "LogicalClock"]


class Clock:
    """Interface: anything with a ``now() -> float`` (seconds)."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Real time (``time.time``) — user-facing timestamps.

    Wall time can jump (NTP slew, DST, manual adjustment), so latency
    measurements must never subtract two wall stamps; the engine stamps a
    hidden ``time.monotonic()`` value alongside ``dc_time`` for that (see
    ``Basket`` and ``docs/observability.md``).
    """

    def now(self) -> float:
        return time.time()


class MonotonicClock(Clock):
    """Monotonic time (``time.monotonic``) — jump-free interval stamping.

    Use as a basket clock when ``dc_time`` itself should be safe to
    subtract (the stamps are then meaningless as wall-clock times).
    """

    def now(self) -> float:
        return time.monotonic()


class LogicalClock(Clock):
    """A deterministic clock advanced explicitly by the test/benchmark.

    Thread-safe; ``advance`` returns the new time so drivers can interleave
    stamping with window boundaries precisely.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not move backwards)."""
        with self._lock:
            if timestamp < self._now:
                raise ValueError("time cannot go backwards")
            self._now = float(timestamp)
