"""Clocks stamping the implicit timestamp column of every basket.

The paper attaches a timestamp column to each stream table "reflecting the
time that this tuple entered the system".  Benchmarks and tests need this to
be deterministic, so the engine accepts either a :class:`WallClock` (real
time) or a :class:`LogicalClock` (manually advanced ticks).
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Callable, List, Tuple

__all__ = [
    "Clock",
    "WallClock",
    "MonotonicClock",
    "LogicalClock",
    "VirtualClock",
]


class Clock:
    """Interface: anything with a ``now() -> float`` (seconds)."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Real time (``time.time``) — user-facing timestamps.

    Wall time can jump (NTP slew, DST, manual adjustment), so latency
    measurements must never subtract two wall stamps; the engine stamps a
    hidden ``time.monotonic()`` value alongside ``dc_time`` for that (see
    ``Basket`` and ``docs/observability.md``).
    """

    def now(self) -> float:
        return time.time()


class MonotonicClock(Clock):
    """Monotonic time (``time.monotonic``) — jump-free interval stamping.

    Use as a basket clock when ``dc_time`` itself should be safe to
    subtract (the stamps are then meaningless as wall-clock times).
    """

    def now(self) -> float:
        return time.monotonic()


class LogicalClock(Clock):
    """A deterministic clock advanced explicitly by the test/benchmark.

    Thread-safe; ``advance`` returns the new time so drivers can interleave
    stamping with window boundaries precisely.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not move backwards)."""
        with self._lock:
            if timestamp < self._now:
                raise ValueError("time cannot go backwards")
            self._now = float(timestamp)


class VirtualClock(LogicalClock):
    """Simulated time: a :class:`LogicalClock` plus deterministic timers.

    The simulation harness (``repro.simtest``) runs window and timeout
    logic entirely in virtual time: baskets stamp ``dc_time`` from this
    clock, delayed fault batches are released against it, and scripted
    input arrives at scheduled instants.  Timers registered with
    :meth:`schedule` fire *during* :meth:`advance`/:meth:`set`, in strict
    ``(deadline, registration order)`` order, so two runs of the same
    episode observe bit-identical timestamp sequences.

    Callbacks run outside the clock lock (they may re-schedule or read
    ``now()``); time is already moved to the callback's deadline when it
    runs, mirroring how a real timer wheel delivers expirations.
    """

    def __init__(self, start: float = 0.0):
        super().__init__(start)
        self._timers: List[Tuple[float, int, Callable[[], None]]] = []
        self._timer_seq = 0

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Register ``callback`` to run when virtual time reaches ``at``."""
        with self._lock:
            if at < self._now:
                raise ValueError("cannot schedule a timer in the past")
            heapq.heappush(self._timers, (float(at), self._timer_seq, callback))
            self._timer_seq += 1

    def next_timer(self) -> float:
        """Deadline of the earliest pending timer (+inf when none)."""
        with self._lock:
            return self._timers[0][0] if self._timers else float("inf")

    def pending_timers(self) -> int:
        with self._lock:
            return len(self._timers)

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        with self._lock:
            target = self._now + seconds
        self.set(target)
        return self.now()

    def set(self, timestamp: float) -> None:
        """Jump forward, firing every timer due on the way, in order."""
        target = float(timestamp)
        while True:
            with self._lock:
                if target < self._now:
                    raise ValueError("time cannot go backwards")
                if self._timers and self._timers[0][0] <= target:
                    deadline, _, callback = heapq.heappop(self._timers)
                    self._now = max(self._now, deadline)
                else:
                    self._now = target
                    return
            callback()
