"""Diagnostics for the static plan verifier.

A :class:`Diagnostic` pins a finding to a MAL instruction *and* to the
logical plan node that emitted it, so the error a user sees at
registration time reads like ``continuous select > where: ...`` rather
than a bare variable name.  :class:`PlanVerificationError` carries the
full diagnostic list and renders them one per line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, TYPE_CHECKING

from ..errors import SqlError

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.mal import Program

__all__ = [
    "Diagnostic",
    "PlanVerificationError",
    "node_path",
    "raise_on_errors",
]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding, anchored to an instruction and plan node."""

    rule: str
    message: str
    severity: str = ERROR
    instr_index: Optional[int] = None
    instr_text: Optional[str] = None
    node_id: Optional[int] = None
    node_path: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def render(self) -> str:
        where = []
        if self.node_path:
            where.append(self.node_path)
        if self.instr_index is not None:
            where.append(f"instr #{self.instr_index}")
        prefix = f"[{self.rule}] " + (" @ ".join(where) + ": " if where else "")
        text = f"{prefix}{self.message}"
        if self.instr_text:
            text += f"\n    {self.instr_text}"
        return text

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "instr_index": self.instr_index,
            "instr_text": self.instr_text,
            "node_id": self.node_id,
            "node_path": self.node_path,
        }


def node_path(program: "Program", node_id: Optional[int]) -> Optional[str]:
    """Render ``root > ... > node`` labels for a plan-node id."""
    if node_id is None or not getattr(program, "nodes", None):
        return None
    node = program.nodes.get(node_id)
    if node is None:
        return None
    labels: List[str] = []
    seen = set()
    while node is not None and node.node_id not in seen:
        seen.add(node.node_id)
        labels.append(node.label)
        parent = getattr(node, "parent", None)
        node = program.nodes.get(parent) if parent is not None else None
    return " > ".join(reversed(labels))


class PlanVerificationError(SqlError):
    """A compiled plan failed static verification at registration time."""

    def __init__(
        self, diagnostics: Sequence[Diagnostic], context: str = ""
    ) -> None:
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        errors = [d for d in self.diagnostics if d.is_error]
        head = context or "plan verification failed"
        lines = [f"{head} ({len(errors)} error(s)):"]
        lines.extend("  " + d.render().replace("\n", "\n  ") for d in errors)
        super().__init__("\n".join(lines))


def raise_on_errors(
    diagnostics: Sequence[Diagnostic], context: str = ""
) -> None:
    """Raise :class:`PlanVerificationError` if any diagnostic is an error."""
    if any(d.is_error for d in diagnostics):
        raise PlanVerificationError(diagnostics, context=context)


@dataclass
class DiagnosticSink:
    """Mutable collector the verifier threads through its checks."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def report(
        self,
        rule: str,
        message: str,
        *,
        severity: str = ERROR,
        instr_index: Optional[int] = None,
        instr_text: Optional[str] = None,
        node_id: Optional[int] = None,
        path: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                message=message,
                severity=severity,
                instr_index=instr_index,
                instr_text=instr_text,
                node_id=node_id,
                node_path=path,
            )
        )
