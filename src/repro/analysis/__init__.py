"""Static analysis for DataCell: plan verification and engine lint.

Three layers, one goal — fail at *registration* (or in CI), not hours
into a run when a factory fires:

* :mod:`repro.analysis.verifier` — a MAL program verifier checking
  def-before-use, single assignment, opcode arity and abstract type
  propagation against the kernel signature catalog, schema compatibility
  at factory/emitter boundaries, candidate-list invariants, dead
  instructions, and incremental-circuit structure.
* :mod:`repro.analysis.lint` — an AST-based engine-invariant linter
  (``python -m repro.analysis.lint``): wall-clock and global-random
  bans outside the approved seams, bare lock acquisition and lock-order
  discipline, reserved ``sys.*`` name guards.
* :mod:`repro.analysis.lockorder` — a runtime lock-order recorder that
  turns deadlock *potential* (an acquisition-graph cycle) into a test
  failure even when the interleaving never deadlocks.

See ``docs/static_analysis.md`` for the rule catalog and suppression
syntax.
"""

from .diagnostics import Diagnostic, PlanVerificationError, raise_on_errors
from .lockorder import (
    LockOrderError,
    LockOrderRecorder,
    global_recorder,
    set_global_recorder,
)
from .verifier import verify_circuit, verify_continuous, verify_program

__all__ = [
    "Diagnostic",
    "PlanVerificationError",
    "raise_on_errors",
    "verify_program",
    "verify_continuous",
    "verify_circuit",
    "LockOrderRecorder",
    "LockOrderError",
    "global_recorder",
    "set_global_recorder",
]
