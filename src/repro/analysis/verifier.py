"""Static MAL program verifier.

Checks a compiled program *before registration* for everything that
would otherwise surface mid-firing as a ``KeyError``/``MalError``/
``TypeMismatchError`` inside a factory thread:

* duplicate/shadowed inputs, single assignment, def-before-use;
* unknown opcodes (cross-checked against the interpreter registry);
* arity — argument count bounds and result count — per signature;
* parameter-kind checks (which subsume the candidate-list invariants:
  ``algebra.projection`` takes ``(cands, bat)`` in that order,
  ``algebra.compose``/``firstn`` take candidate lists, ...);
* abstract atom-type propagation mirroring the kernel exactly, with
  clashes reported where the kernel would raise;
* schema compatibility at the emitter boundary (the program's output
  ``ResultSet`` columns vs the declared output basket schema);
* dead instructions (warning) — cross-checked in tests against the
  optimizer's DCE so the two analyses can't drift apart.

All diagnostics are anchored to the instruction *and* the logical plan
node (``continuous select > where``) via :func:`diagnostics.node_path`.

:func:`verify_continuous` wraps this for a :class:`CompiledQuery` (atoms
of free inputs resolved from catalog basket schemas), and
:func:`verify_circuit` adds the incremental-circuit structure checks
(weight-column discipline, retraction pairing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .diagnostics import (
    Diagnostic,
    DiagnosticSink,
    ERROR,
    WARNING,
    node_path,
)
from .signatures import (
    SIGNATURES,
    AbstractValue,
    Kind,
    UNKNOWN,
    accepts,
    literal_atom,
)
from ..kernel.mal import Const, Instr, Program, Var
from ..kernel.types import AtomType, common_type
from ..errors import TypeMismatchError

__all__ = ["verify_program", "verify_continuous", "verify_circuit"]


@dataclass
class _Context:
    """What the signature ``infer`` callbacks may consult."""

    catalog: object = None


def _const_value(arg: Const) -> AbstractValue:
    return AbstractValue(
        Kind.SCALAR,
        atom=literal_atom(arg.value),
        const=arg.value,
        has_const=True,
    )


def _effectful(ins: Instr) -> bool:
    """Instructions that must survive DCE (mirror the optimizer)."""
    return ins.module == "basket"


def _needed_instructions(
    program: Program, protected: Sequence[str]
) -> Set[int]:
    """Backward liveness — same walk as the optimizer's DCE."""
    live: Set[str] = set(protected)
    if program.output:
        live.add(program.output)
    needed: Set[int] = set()
    for index in range(len(program.instructions) - 1, -1, -1):
        ins = program.instructions[index]
        if _effectful(ins) or any(r in live for r in ins.results):
            needed.add(index)
            for arg in ins.args:
                if isinstance(arg, Var):
                    live.add(arg.name)
    return needed


def verify_program(
    program: Program,
    catalog: object = None,
    expected_output: Optional[Sequence[Tuple[str, Optional[AtomType]]]] = None,
    protected: Sequence[str] = (),
    input_values: Optional[Dict[str, AbstractValue]] = None,
    check_dead: bool = True,
) -> List[Diagnostic]:
    """Verify one MAL program; returns all diagnostics (errors first).

    ``input_values`` maps free input names to what is known about them
    (e.g. basket column atoms); unnamed inputs verify as unknown.
    ``expected_output`` declares the (name, atom) columns the emitter
    boundary expects the output ``ResultSet`` to carry.  ``protected``
    names extra roots that must stay live (consumed-marker variables).
    """
    sink = DiagnosticSink()
    ctx = _Context(catalog=catalog)
    env: Dict[str, AbstractValue] = {}

    seen_inputs: Set[str] = set()
    for name in program.inputs:
        if name in seen_inputs:
            sink.report(
                "duplicate-input",
                f"input {name!r} declared twice",
            )
        seen_inputs.add(name)
        env[name] = (input_values or {}).get(name, UNKNOWN)

    for index, ins in enumerate(program.instructions):
        path = node_path(program, ins.node)

        def report(
            message: str,
            rule: str = "type-check",
            severity: str = ERROR,
            _index: int = index,
            _ins: Instr = ins,
            _path: Optional[str] = path,
        ) -> None:
            sink.report(
                rule,
                message,
                severity=severity,
                instr_index=_index,
                instr_text=_render(_ins),
                node_id=_ins.node,
                path=_path,
            )

        # -- def-before-use ------------------------------------------------
        args: List[Optional[AbstractValue]] = []
        defined = True
        for arg in ins.args:
            if isinstance(arg, Const):
                args.append(_const_value(arg))
            elif arg.name in env:
                args.append(env[arg.name])
            else:
                report(
                    f"variable {arg.name!r} used before assignment",
                    rule="undefined-variable",
                )
                args.append(UNKNOWN)
                defined = False

        # -- single assignment ---------------------------------------------
        for result in ins.results:
            if result in env:
                report(
                    f"variable {result!r} assigned more than once",
                    rule="reassignment",
                )

        # -- opcode / arity / kinds ----------------------------------------
        opcode = f"{ins.module}.{ins.fn}"
        sig = SIGNATURES.get(opcode)
        if sig is None:
            report(
                f"unknown MAL primitive {opcode!r} "
                f"(would fail at first firing)",
                rule="unknown-opcode",
            )
            for result in ins.results:
                env[result] = UNKNOWN
            continue

        n_args = len(ins.args)
        max_arity = sig.max_arity
        if n_args < sig.min_arity or (
            max_arity is not None and n_args > max_arity
        ):
            expected = (
                f"{sig.min_arity}+"
                if max_arity is None
                else (
                    str(max_arity)
                    if sig.min_arity == max_arity
                    else f"{sig.min_arity}..{max_arity}"
                )
            )
            report(
                f"{opcode} expects {expected} argument(s), got {n_args}",
                rule="arity",
            )
            for result in ins.results:
                env[result] = UNKNOWN
            continue

        for pos, value in enumerate(args):
            spec = (
                sig.params[pos]
                if pos < len(sig.params)
                else (sig.varargs or "any")
            )
            if value is not None and not accepts(spec, value):
                report(
                    f"{opcode} argument {pos} expects "
                    f"{spec.rstrip('?')}, got {value.kind.value}",
                    rule="bad-argument",
                )

        if len(ins.results) != sig.results:
            report(
                f"{opcode} produces {sig.results} result(s), "
                f"instruction assigns {len(ins.results)}",
                rule="result-arity",
            )

        # -- abstract evaluation -------------------------------------------
        produced: Tuple[AbstractValue, ...]
        if sig.infer is not None and defined:
            padded = list(args)
            while len(padded) < len(sig.params):
                padded.append(None)
            try:
                out = sig.infer(ctx, padded, report)
            except Exception:  # infer bugs must never block registration
                out = None
            if out is None:
                produced = tuple(UNKNOWN for _ in ins.results)
            elif isinstance(out, tuple):
                produced = out
            else:
                produced = (out,)
        else:
            produced = tuple(UNKNOWN for _ in ins.results)
        for result, value in zip(ins.results, produced):
            env[result] = value
        for result in ins.results[len(produced):]:
            env[result] = UNKNOWN

    # -- output ------------------------------------------------------------
    if program.output and program.output not in env:
        sink.report(
            "undefined-output",
            f"program output {program.output!r} is never assigned",
        )
    for name in protected:
        if name not in env:
            sink.report(
                "undefined-output",
                f"protected variable {name!r} is never assigned",
            )

    # -- emitter boundary ----------------------------------------------------
    if expected_output is not None and program.output in env:
        _check_emitter_boundary(
            env[program.output], expected_output, sink
        )

    # -- dead instructions ---------------------------------------------------
    if check_dead:
        needed = _needed_instructions(program, protected)
        for index, ins in enumerate(program.instructions):
            if _effectful(ins) or not ins.results:
                continue
            if index not in needed:
                sink.report(
                    "dead-instruction",
                    f"result(s) {', '.join(ins.results)} are never used "
                    f"(optimizer DCE would remove this)",
                    severity=WARNING,
                    instr_index=index,
                    instr_text=_render(ins),
                    node_id=ins.node,
                    path=node_path(program, ins.node),
                )

    sink.diagnostics.sort(key=lambda d: (not d.is_error, d.instr_index or 0))
    return sink.diagnostics


def _check_emitter_boundary(
    output: AbstractValue,
    expected: Sequence[Tuple[str, Optional[AtomType]]],
    sink: DiagnosticSink,
) -> None:
    if output.kind not in (Kind.RESULT, Kind.ANY):
        sink.report(
            "emitter-boundary",
            f"program output is a {output.kind.value}, expected a "
            f"result set",
        )
        return
    if output.columns is None:
        return
    if len(output.columns) != len(expected):
        sink.report(
            "emitter-boundary",
            f"program produces {len(output.columns)} column(s) but the "
            f"output schema declares {len(expected)}",
        )
        return
    for pos, ((got_name, got_atom), (want_name, want_atom)) in enumerate(
        zip(output.columns, expected)
    ):
        if got_atom is None or want_atom is None:
            continue
        if got_atom is not want_atom:
            sink.report(
                "emitter-boundary",
                f"output column {pos} ({want_name!r}) declared "
                f"{want_atom.name} but the plan computes {got_atom.name} "
                f"(append_bat would reject the column mid-firing)",
            )


def _render(ins: Instr) -> str:
    args = ", ".join(repr(a) for a in ins.args)
    results = ", ".join(ins.results)
    head = f"{results} := " if results else ""
    return f"{head}{ins.module}.{ins.fn}({args})"


# ----------------------------------------------------------------------
# continuous queries and incremental circuits
# ----------------------------------------------------------------------
def _basket_input_values(
    compiled, catalog
) -> Tuple[Dict[str, AbstractValue], List[str]]:
    """Abstract values for a continuous plan's free inputs.

    Free inputs are named ``{alias}.{column}`` and bound to basket
    column snapshots at firing time, so their atoms come from the
    catalog's basket schemas.  Consumed-marker variables are protected
    candidate lists.
    """
    values: Dict[str, AbstractValue] = {}
    protected: List[str] = []
    for basket_input in getattr(compiled, "basket_inputs", ()):
        protected.append(basket_input.consumed_var)
        if catalog is None:
            continue
        try:
            table = catalog.get(basket_input.basket)
        except Exception:
            continue
        for col in table.schema:
            values[f"{basket_input.alias}.{col.name.lower()}"] = (
                AbstractValue(Kind.BAT, atom=col.atom)
            )
    return values, protected


def verify_continuous(
    compiled,
    catalog=None,
    expected_output: Optional[Sequence[Tuple[str, Optional[AtomType]]]] = None,
) -> List[Diagnostic]:
    """Verify a :class:`repro.sql.compiler.CompiledQuery`.

    ``expected_output`` defaults to the compiled query's own declared
    output columns — exactly what the engine creates the output basket
    from, so a mismatch here is the mid-firing ``append_bat`` failure.
    """
    if expected_output is None:
        expected_output = list(
            zip(compiled.output_names, compiled.output_atoms)
        )
    values, protected = _basket_input_values(compiled, catalog)
    return verify_program(
        compiled.program,
        catalog=catalog,
        expected_output=expected_output,
        protected=protected,
        input_values=values,
    )


def verify_circuit(plan, catalog=None) -> List[Diagnostic]:
    """Structure checks for an incremental (Z-set) circuit plan.

    Beyond verifying each stage's MAL program, enforces the weight
    discipline: a weighted circuit (aggregate/join) must carry the
    ``dc_weight`` column as its last output with LNG atom and own a
    retraction-capable operator (the integrate/delay pair lives inside
    ``IncrementalGroupAggregate``/``IncrementalJoin`` state); a pure
    lift circuit must *not* emit weights it cannot maintain.
    """
    from ..incremental.zset import WEIGHT_COLUMN

    sink = DiagnosticSink()
    diagnostics: List[Diagnostic] = []

    kind = getattr(plan, "kind", None)
    if kind not in ("lift", "aggregate", "join"):
        sink.report(
            "circuit-structure", f"unknown circuit kind {kind!r}"
        )
        return sink.diagnostics

    for stage_index, stage in enumerate(getattr(plan, "stages", ())):
        expected = list(zip(stage.output_names, stage.output_atoms))
        for diag in verify_continuous(stage, catalog, expected):
            diagnostics.append(
                Diagnostic(
                    rule=diag.rule,
                    message=f"stage {stage_index}: {diag.message}",
                    severity=diag.severity,
                    instr_index=diag.instr_index,
                    instr_text=diag.instr_text,
                    node_id=diag.node_id,
                    node_path=diag.node_path,
                )
            )

    names = list(getattr(plan, "names", ()))
    atoms = list(getattr(plan, "atoms", ()))
    if plan.weighted:
        if not names or names[-1] != WEIGHT_COLUMN:
            sink.report(
                "circuit-structure",
                f"weighted {kind} circuit must emit {WEIGHT_COLUMN!r} "
                f"as its last column, got {names!r}",
            )
        elif atoms and atoms[-1] is not AtomType.LNG:
            sink.report(
                "circuit-structure",
                f"{WEIGHT_COLUMN!r} column must be LNG, "
                f"got {atoms[-1].name}",
            )
        if kind == "aggregate" and getattr(plan, "agg", None) is None:
            sink.report(
                "circuit-structure",
                "aggregate circuit is missing its retraction operator "
                "(IncrementalGroupAggregate integrate/delay state)",
            )
        if kind == "join" and getattr(plan, "join", None) is None:
            sink.report(
                "circuit-structure",
                "join circuit is missing its retraction operator "
                "(IncrementalJoin integrated state)",
            )
    else:
        if WEIGHT_COLUMN in names:
            sink.report(
                "circuit-structure",
                f"lift circuit emits {WEIGHT_COLUMN!r} but has no "
                f"retraction operator downstream — weights would be "
                f"dropped",
            )

    if kind == "aggregate" and getattr(plan, "agg", None) is not None:
        _check_aggregate_shape(plan, sink)
    if kind == "join" and getattr(plan, "join", None) is not None:
        _check_join_shape(plan, sink)

    diagnostics.extend(sink.diagnostics)
    diagnostics.sort(key=lambda d: (not d.is_error, d.instr_index or 0))
    return diagnostics


def _check_aggregate_shape(plan, sink: DiagnosticSink) -> None:
    item_plan = list(getattr(plan, "item_plan", ()))
    n_keys = getattr(plan, "n_group_keys", 0)
    n_aggs = len(getattr(plan.agg, "aggregates", ()))
    if len(item_plan) != len(plan.names) - 1:
        sink.report(
            "circuit-structure",
            f"aggregate circuit emits {len(plan.names) - 1} value "
            f"column(s) but plans {len(item_plan)}",
        )
    for source, index in item_plan:
        if source == "key" and not 0 <= index < n_keys:
            sink.report(
                "circuit-structure",
                f"aggregate circuit references group key {index} "
                f"(have {n_keys})",
            )
        elif source == "agg" and not 0 <= index < n_aggs:
            sink.report(
                "circuit-structure",
                f"aggregate circuit references aggregate {index} "
                f"(have {n_aggs})",
            )
    for stage in getattr(plan, "stages", ()):
        width = len(stage.output_names)
        if width != n_keys + len(getattr(plan.agg, "aggregates", ())):
            # lift stage emits (*keys, *values) rows for the operator
            if width < n_keys:
                sink.report(
                    "circuit-structure",
                    f"lift stage emits {width} column(s) but the "
                    f"operator needs {n_keys} group key(s)",
                )


def _check_join_shape(plan, sink: DiagnosticSink) -> None:
    stages = list(getattr(plan, "stages", ()))
    if len(stages) != 2:
        sink.report(
            "circuit-structure",
            f"join circuit needs 2 lift stages, got {len(stages)}",
        )
        return
    left_width = len(stages[0].output_names)
    right_width = len(stages[1].output_names)
    row_width = left_width + right_width - 1
    for pos in getattr(plan, "out_positions", ()):
        if not 0 <= pos < row_width:
            sink.report(
                "circuit-structure",
                f"join circuit projects position {pos} out of a "
                f"{row_width}-column joined row",
            )
    left_key = stages[0].output_atoms[0] if stages[0].output_atoms else None
    right_key = stages[1].output_atoms[0] if stages[1].output_atoms else None
    if left_key is not None and right_key is not None:
        try:
            common_type(left_key, right_key)
        except TypeMismatchError:
            sink.report(
                "circuit-structure",
                f"join keys have incompatible atoms "
                f"{left_key.name} and {right_key.name}",
            )
